//===- bench/bench_table6_difftest.cpp -------------------------------------===//
//
// Regenerates Table 6 ("Results on testing of JVMs") plus the
// preliminary study of §1: differential testing of
//
//   * the synthetic "JRE" library corpus (the paper's 21,736 JRE7
//     classfiles; 1.7% discrepancy rate),
//   * the seeding classfiles (paper: 3.0%),
//   * GenClasses and TestClasses of every algorithm,
//
// reporting all-invoked / all-rejected-at-the-same-stage /
// |Discrepancies| / |Distinct_Discrepancies| / diff, under per-JVM
// environments (Definition 1). A second section re-runs the
// classfuzz[stbr] test suite under a *shared* environment
// (Definition 2), the defect-indicative subset.
//
// Expected shape: the library corpus diff rate is low single digits;
// mutated suites reach an order of magnitude higher;
// TestClasses_classfuzz[stbr] reveals the most distinct discrepancies.
//
//===----------------------------------------------------------------------===//

#include "../bench/BenchUtil.h"
#include "difftest/DiffTest.h"

#include <cstdio>

using namespace classfuzz;
using namespace classfuzz::bench;

namespace {

struct Column {
  std::string Name;
  DiffStats Gen;
  DiffStats Test;
  bool HasTestRow = true;
};

void printRow(const char *Label, const std::vector<Column> &Columns,
              size_t DiffStats::*Member, bool TestSection) {
  std::printf("%-26s", Label);
  for (const Column &C : Columns) {
    const DiffStats &S = TestSection ? C.Test : C.Gen;
    if (TestSection && !C.HasTestRow)
      std::printf("%14s", "-");
    else
      std::printf("%14zu", S.*Member);
  }
  std::printf("\n");
}

} // namespace

int main() {
  std::printf("Table 6: Results on testing of JVMs "
              "(per-JVM environments, scale=%.2f)\n\n",
              scale());

  std::vector<Column> Columns;

  // --- Preliminary study: the synthetic JRE library corpus ---------------
  {
    std::fprintf(stderr, "library corpus...\n");
    Column C;
    C.Name = "JRE-lib";
    C.HasTestRow = false;
    Rng R(CampaignRngSeed);
    size_t LibSize = static_cast<size_t>(2000 * scale());
    auto Lib = generateLibraryCorpus(R, LibSize);
    ClassPath Corpus;
    for (const SeedClass &S : Lib) {
      Corpus.add(S.Name, S.Data);
      for (const auto &[N, D] : S.Helpers)
        Corpus.add(N, D);
    }
    auto Tester = DifferentialTester::withAllProfiles(
        Corpus, EnvironmentMode::PerJvm);
    for (const SeedClass &S : Lib)
      C.Gen.add(Tester.testClass(S.Name));
    Columns.push_back(std::move(C));
  }

  // --- Seeding classfiles --------------------------------------------------
  std::vector<SeedClass> Seeds;
  {
    std::fprintf(stderr, "seed corpus...\n");
    Column C;
    C.Name = "seeds";
    C.HasTestRow = false;
    Rng R(CampaignRngSeed);
    Seeds = generateSeedCorpus(R, numSeeds());
    ClassPath Corpus;
    for (const SeedClass &S : Seeds) {
      Corpus.add(S.Name, S.Data);
      for (const auto &[N, D] : S.Helpers)
        Corpus.add(N, D);
    }
    auto Tester = DifferentialTester::withAllProfiles(
        Corpus, EnvironmentMode::PerJvm);
    for (const SeedClass &S : Seeds)
      C.Gen.add(Tester.testClass(S.Name));
    Columns.push_back(std::move(C));
  }

  // --- The six algorithms --------------------------------------------------
  DiffStats SharedEnvStBrTests; // Definition 2 section, filled below.
  for (FuzzAlgorithm Algo : AllAlgorithms) {
    std::fprintf(stderr, "campaign + difftest: %s...\n",
                 fuzzAlgorithmName(Algo));
    Column C;
    C.Name = fuzzAlgorithmName(Algo);
    CampaignResult R = runPaperCampaign(Algo);
    ClassPath Corpus = R.corpusClassPath();
    auto Tester = DifferentialTester::withAllProfiles(
        Corpus, EnvironmentMode::PerJvm);
    auto SharedTester = DifferentialTester::withAllProfiles(
        Corpus, EnvironmentMode::Shared, "jre8");

    std::vector<char> IsTest(R.GenClasses.size(), 0);
    for (size_t I : R.TestClassIndices)
      IsTest[I] = 1;
    for (size_t I = 0; I != R.GenClasses.size(); ++I) {
      DiffOutcome O = Tester.testClass(R.GenClasses[I].Name);
      C.Gen.add(O);
      if (IsTest[I]) {
        C.Test.add(O);
        if (Algo == FuzzAlgorithm::ClassfuzzStBr)
          SharedEnvStBrTests.add(
              SharedTester.testClass(R.GenClasses[I].Name));
      }
    }
    if (Algo == FuzzAlgorithm::Randfuzz)
      C.Test = C.Gen; // randfuzz keeps everything.
    Columns.push_back(std::move(C));
  }

  // --- Print -----------------------------------------------------------------
  std::printf("%-26s", "");
  for (const Column &C : Columns)
    std::printf("%14s", C.Name.c_str());
  std::printf("\n");
  rule(26 + 14 * static_cast<int>(Columns.size()));

  std::printf("GenClasses\n");
  printRow("  classes", Columns, &DiffStats::Total, false);
  printRow("  all invoked", Columns, &DiffStats::AllInvoked, false);
  printRow("  all rejected same stage", Columns,
           &DiffStats::AllRejectedSameStage, false);
  printRow("  |Discrepancies|", Columns, &DiffStats::Discrepancies,
           false);
  std::printf("%-26s", "  |Distinct_Discrepancies|");
  for (const Column &C : Columns)
    std::printf("%14zu", C.Gen.DistinctDiscrepancies.size());
  std::printf("\n");
  std::printf("%-26s", "  diff");
  for (const Column &C : Columns)
    std::printf("%13.1f%%", C.Gen.diffRatePercent());
  std::printf("\n\n");

  std::printf("TestClasses\n");
  printRow("  classes", Columns, &DiffStats::Total, true);
  printRow("  all invoked", Columns, &DiffStats::AllInvoked, true);
  printRow("  all rejected same stage", Columns,
           &DiffStats::AllRejectedSameStage, true);
  printRow("  |Discrepancies|", Columns, &DiffStats::Discrepancies,
           true);
  std::printf("%-26s", "  |Distinct_Discrepancies|");
  for (const Column &C : Columns) {
    if (C.HasTestRow)
      std::printf("%14zu", C.Test.DistinctDiscrepancies.size());
    else
      std::printf("%14s", "-");
  }
  std::printf("\n");
  std::printf("%-26s", "  diff");
  for (const Column &C : Columns) {
    if (C.HasTestRow)
      std::printf("%13.1f%%", C.Test.diffRatePercent());
    else
      std::printf("%14s", "-");
  }
  std::printf("\n");

  // Definition 2: shared environment removes compatibility effects.
  std::printf("\nShared-environment (Definition 2) re-run of "
              "TestClasses_classfuzz[stbr]:\n");
  std::printf("  classes: %zu, discrepancies: %zu (%.1f%%), distinct: "
              "%zu  -- defect-indicative subset\n",
              SharedEnvStBrTests.Total, SharedEnvStBrTests.Discrepancies,
              SharedEnvStBrTests.diffRatePercent(),
              SharedEnvStBrTests.DistinctDiscrepancies.size());

  // Headline: the paper's 1.7% -> 11.9% enhancement.
  std::printf("\nHeadline: library-corpus diff %.1f%% vs "
              "TestClasses_classfuzz[stbr] diff %.1f%% "
              "(paper: 1.7%% -> 11.9%%)\n",
              Columns[0].Gen.diffRatePercent(),
              Columns[2].Test.diffRatePercent());
  return 0;
}
