//===- bench/bench_analysis.cpp - Static triage vs reference execution ---===//
//
// Part of classfuzz-cpp (PLDI 2016 classfuzz reproduction).
//
//===----------------------------------------------------------------------===//
//
// The point of the execution-free analyzer (DESIGN.md §11) is that
// triaging a class -- predicting the startup phase the reference VM
// would observe -- costs a fraction of actually running it. This bench
// pins that claim over the seed corpus:
//
//   * triage     StaticAnalyzer::predictStartupOutcome (the cheap
//                load/link simulation campaign filtering wants)
//   * execute    the campaign's per-mutant reference step: Vm::run on
//                the reference profile with coverage recording plus
//                trace extraction (Campaign.cpp's coverageOf)
//
// gates that triage is >= 5x faster than execution, and verifies the
// predict-vs-observe contract holds on every class. The full lint
// pipeline (analyzeClass: every pass plus the prediction) is timed
// over seeds-plus-mutants and reported for context, ungated -- it does
// strictly more work than the VM (all findings, not first failure).
//
//===----------------------------------------------------------------------===//

#include "analysis/StaticAnalyzer.h"
#include "coverage/Tracefile.h"
#include "jvm/Phase.h"
#include "jvm/Policy.h"
#include "jvm/Vm.h"
#include "mutation/Engine.h"
#include "mutation/Mutator.h"
#include "runtime/RuntimeLib.h"
#include "runtime/SeedCorpus.h"

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

using namespace classfuzz;

namespace {

constexpr double RequiredSpeedup = 5.0;
constexpr size_t NumSeeds = 128;

struct Workload {
  std::string Name;
  Bytes Data;
};

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

/// The campaign's reference-VM step for one class: coverage-recorded
/// run plus trace extraction, against a copy-on-write environment.
int executeOne(const JvmPolicy &Policy, const ClassPath &Env,
               const Workload &W, size_t &TraceStmts) {
  CoverageRecorder Recorder;
  ClassPath RunEnv = Env;
  RunEnv.add(W.Name, W.Data);
  Vm Jvm(Policy, RunEnv, &Recorder);
  int Observed = encodePhase(Jvm.run(W.Name));
  TraceStmts += Recorder.takeTrace().stmtCount();
  return Observed;
}

} // namespace

int main() {
  JvmPolicy Policy = referenceJvmPolicy();
  ClassPath Env = runtimeLibraryFor(Policy);

  Rng R(20160613);
  auto Seeds = generateSeedCorpus(R, NumSeeds);
  std::vector<std::string> Known = Env.names();
  std::vector<Workload> SeedClasses;
  std::vector<Workload> Mutants;
  for (const SeedClass &S : Seeds) {
    for (const auto &[Name, Data] : S.Helpers)
      Env.add(Name, Data);
    SeedClasses.push_back({S.Name, S.Data});
    for (size_t MuIdx = 0; MuIdx < mutatorRegistry().size(); MuIdx += 17) {
      MutationContext Ctx{R, Known};
      MutationOutcome O = mutateClass(S.Data, MuIdx, Ctx);
      if (O.Produced)
        Mutants.push_back({O.ClassName, std::move(O.Data)});
    }
  }
  Env.freeze();
  std::printf("workload: %zu seed classes, %zu mutants\n",
              SeedClasses.size(), Mutants.size());

  // -- triage: prediction only, over the seed corpus ---------------------
  // The campaign holds one analyzer across the whole run, so its
  // environment caches (parsed runtime library, chain memos) are warm
  // for all but the first few mutants. Time a cold pass (includes the
  // one-time cache fill), then gate on the steady-state pass -- each
  // prediction still re-parses, re-format-checks, and re-verifies the
  // class under triage; only the immutable environment is cached.
  StaticAnalyzer Analyzer(Env, Policy);
  std::vector<StartupPrediction> Predictions(SeedClasses.size());
  auto ColdStart = std::chrono::steady_clock::now();
  for (size_t I = 0; I != SeedClasses.size(); ++I)
    Predictions[I] = Analyzer.predictStartupOutcome(SeedClasses[I].Name,
                                                    SeedClasses[I].Data);
  double ColdSeconds = secondsSince(ColdStart);
  auto TriageStart = std::chrono::steady_clock::now();
  for (size_t I = 0; I != SeedClasses.size(); ++I)
    Predictions[I] = Analyzer.predictStartupOutcome(SeedClasses[I].Name,
                                                    SeedClasses[I].Data);
  double TriageSeconds = secondsSince(TriageStart);

  // -- execute: the reference-VM step over the same corpus ---------------
  size_t Mismatches = 0;
  size_t TraceStmts = 0;
  auto ExecuteStart = std::chrono::steady_clock::now();
  for (size_t I = 0; I != SeedClasses.size(); ++I) {
    int Observed = executeOne(Policy, Env, SeedClasses[I], TraceStmts);
    if (!Predictions[I].isCompatibleWith(Observed)) {
      ++Mismatches;
      std::fprintf(stderr, "predict-vs-observe mismatch on %s: %s vs %d\n",
                   SeedClasses[I].Name.c_str(),
                   predictedOutcomeName(Predictions[I].Outcome), Observed);
    }
  }
  double ExecuteSeconds = secondsSince(ExecuteStart);

  // -- context: full lint pipeline over seeds + mutants (ungated) --------
  size_t TotalFindings = 0;
  size_t MutantMismatches = 0;
  std::vector<StartupPrediction> MutantPredictions(Mutants.size());
  auto AnalyzeStart = std::chrono::steady_clock::now();
  for (size_t I = 0; I != Mutants.size(); ++I) {
    AnalysisReport Report =
        Analyzer.analyzeClass(Mutants[I].Name, Mutants[I].Data);
    TotalFindings += Report.Diagnostics.size();
    MutantPredictions[I] = Report.Prediction;
  }
  double AnalyzeSeconds = secondsSince(AnalyzeStart);
  size_t MutantTraceStmts = 0;
  for (size_t I = 0; I != Mutants.size(); ++I) {
    int Observed = executeOne(Policy, Env, Mutants[I], MutantTraceStmts);
    if (!MutantPredictions[I].isCompatibleWith(Observed)) {
      ++MutantMismatches;
      std::fprintf(stderr, "predict-vs-observe mismatch on %s: %s vs %d\n",
                   Mutants[I].Name.c_str(),
                   predictedOutcomeName(MutantPredictions[I].Outcome),
                   Observed);
    }
  }

  size_t N = SeedClasses.size();
  double Speedup = TriageSeconds > 0 ? ExecuteSeconds / TriageSeconds : 0;
  std::printf("triage   %8.3f ms total  %7.1f us/class  (%.0f classes/sec; "
              "cold first pass %.1f us/class)\n",
              TriageSeconds * 1e3, TriageSeconds / N * 1e6,
              N / TriageSeconds, ColdSeconds / N * 1e6);
  std::printf("execute  %8.3f ms total  %7.1f us/class  (%.0f classes/sec, "
              "%zu covered stmts)\n",
              ExecuteSeconds * 1e3, ExecuteSeconds / N * 1e6,
              N / ExecuteSeconds, TraceStmts);
  std::printf("speedup  %.1fx (gate: >= %.0fx)\n", Speedup, RequiredSpeedup);
  if (!Mutants.empty())
    std::printf("full analyzeClass on %zu mutants: %.3f ms total, "
                "%.1f us/class, %zu findings (ungated)\n",
                Mutants.size(), AnalyzeSeconds * 1e3,
                AnalyzeSeconds / Mutants.size() * 1e6, TotalFindings);

  if (Mismatches + MutantMismatches) {
    std::fprintf(stderr, "FAIL: %zu predict-vs-observe mismatches\n",
                 Mismatches + MutantMismatches);
    return 1;
  }
  if (Speedup < RequiredSpeedup) {
    std::fprintf(stderr,
                 "FAIL: static triage only %.1fx faster than execution "
                 "(gate %.0fx)\n",
                 Speedup, RequiredSpeedup);
    return 1;
  }
  std::puts("OK");
  return 0;
}
