//===- bench/bench_table5_mutators.cpp -------------------------------------===//
//
// Regenerates Table 5 ("Top ten mutators"): runs the classfuzz[stbr]
// campaign and prints the ten mutators with the highest success rates
// (among meaningfully-selected ones) together with their selection
// frequencies, in the paper's format. Also prints Table 2-style
// before/after examples for representative mutators.
//
// Expected shape: member-rewriting mutators (replace-all-methods,
// add-exceptions, set-superclass, rename-method) rank high; their
// frequencies exceed the uniform 1/129 baseline.
//
//===----------------------------------------------------------------------===//

#include "../bench/BenchUtil.h"
#include "mutation/Engine.h"
#include "mutation/Mutator.h"

#include <algorithm>
#include <cstdio>

using namespace classfuzz;
using namespace classfuzz::bench;

int main() {
  std::printf("Table 5: Top ten mutators (classfuzz[stbr], scale=%.2f)\n\n",
              scale());
  CampaignResult R =
      runPaperCampaign(FuzzAlgorithm::ClassfuzzStBr);

  const auto &Registry = mutatorRegistry();
  size_t TotalSelections = 0;
  for (size_t N : R.MutatorSelected)
    TotalSelections += N;

  // Rank by success rate among mutators selected at least 3 times
  // (single-shot flukes would otherwise crowd the top).
  std::vector<size_t> Order;
  for (size_t I = 0; I != Registry.size(); ++I)
    if (R.MutatorSelected[I] >= 3)
      Order.push_back(I);
  std::stable_sort(Order.begin(), Order.end(), [&](size_t A, size_t B) {
    double RateA = static_cast<double>(R.MutatorSucceeded[A]) /
                   static_cast<double>(R.MutatorSelected[A]);
    double RateB = static_cast<double>(R.MutatorSucceeded[B]) /
                   static_cast<double>(R.MutatorSelected[B]);
    return RateA > RateB;
  });

  std::printf("%-14s %-58s %10s %10s\n", "What to mutate", "Mutator",
              "Succ rate", "Frequency");
  rule(96);
  for (size_t Rank = 0; Rank < Order.size() && Rank < 10; ++Rank) {
    size_t I = Order[Rank];
    double Rate = static_cast<double>(R.MutatorSucceeded[I]) /
                  static_cast<double>(R.MutatorSelected[I]);
    double Freq = static_cast<double>(R.MutatorSelected[I]) /
                  static_cast<double>(TotalSelections);
    std::printf("%-14s %-58s %10.3f %10.3f\n",
                Registry[I].Category.c_str(),
                Registry[I].Description.substr(0, 58).c_str(), Rate,
                Freq);
  }

  std::printf("\nUniform-selection baseline frequency: %.4f (1/129)\n",
              1.0 / 129.0);

  // Table 2-style examples: apply representative mutators to a seed and
  // show the Jimple-level diff of the relevant line.
  std::printf("\nTable 2-style examples (JIR before -> after):\n");
  rule(96);
  Rng ExampleRng(7);
  std::vector<std::string> Known = {"java/lang/Thread",
                                    "java/security/PrivilegedAction"};
  MutationContext Ctx{ExampleRng, Known};
  for (const char *Id :
       {"class.set-super-thread", "iface.add-privileged-action",
        "method.rename-to-clinit", "throws.add-inaccessible",
        "param.main-prepend-object"}) {
    for (size_t I = 0; I != Registry.size(); ++I) {
      if (Registry[I].Id != Id)
        continue;
      // A fresh simple seed per example.
      auto Seed = [&] {
        Rng SeedRng(1);
        auto Seeds = generateSeedCorpus(SeedRng, 1);
        return Seeds[0];
      }();
      auto Before = lowerClassBytes(Seed.Data);
      if (!Before)
        break;
      JirClass J = Before.take();
      std::string Header = printJir(J).substr(0, 72);
      if (Registry[I].Apply(J, Ctx) != MutationResult::Inapplicable) {
        std::printf("* %s\n    before: %s...\n    after:  %s...\n",
                    Registry[I].Description.c_str(), Header.c_str(),
                    printJir(J).substr(0, 72).c_str());
      }
      break;
    }
  }
  return 0;
}
