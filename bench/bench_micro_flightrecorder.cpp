//===- bench/bench_micro_flightrecorder.cpp --------------------------------===//
//
// Microbenchmarks of the flight recorder (DESIGN.md §9). The contract
// is asymmetric: record() when disabled is exactly one relaxed atomic
// load (the campaign hot loop pays this on every iteration whether or
// not --incidents is given), and record() when enabled stays in the
// tens-of-nanoseconds range so arming the recorder does not perturb
// the trajectory's timing-sensitive neighbors.
//
//===----------------------------------------------------------------------===//

#include "telemetry/FlightRecorder.h"

#include <benchmark/benchmark.h>

#include <thread>
#include <vector>

using namespace classfuzz;
namespace tel = classfuzz::telemetry;

namespace {

/// The disabled fast path: one relaxed load, no lane lookup, no store.
void BM_RecordDisabled(benchmark::State &State) {
  tel::FlightRecorder &FR = tel::flightRecorder();
  FR.disable();
  uint64_t I = 0;
  for (auto _ : State)
    FR.record(tel::FlightKind::Iteration, ++I, 7, 3);
}
BENCHMARK(BM_RecordDisabled);

/// The armed path: sequence fetch_add, cached-lane lookup, five
/// relaxed stores plus the seqlock stamp pair.
void BM_RecordEnabled(benchmark::State &State) {
  tel::FlightRecorder &FR = tel::flightRecorder();
  FR.enable(1024);
  uint64_t I = 0;
  for (auto _ : State)
    FR.record(tel::FlightKind::Iteration, ++I, 7, 3);
  FR.disable();
}
BENCHMARK(BM_RecordEnabled);

/// Armed path under contention: every thread hammers its own lane, so
/// the only shared cache line is the global sequence counter.
void BM_RecordEnabledContended(benchmark::State &State) {
  tel::FlightRecorder &FR = tel::flightRecorder();
  if (State.thread_index() == 0)
    FR.enable(1024);
  uint64_t I = 0;
  for (auto _ : State)
    FR.record(tel::FlightKind::Iteration, ++I, 7, 3);
  if (State.thread_index() == 0)
    FR.disable();
}
BENCHMARK(BM_RecordEnabledContended)->Threads(4);

/// snapshot() with live writers: the merge pays sort + seqlock retries
/// but never blocks the recording threads.
void BM_SnapshotWhileRecording(benchmark::State &State) {
  tel::FlightRecorder &FR = tel::flightRecorder();
  FR.enable(1024);
  std::atomic<bool> Stop{false};
  std::thread Writer([&FR, &Stop] {
    for (uint64_t I = 0; !Stop.load(std::memory_order_relaxed); ++I)
      FR.record(tel::FlightKind::Iteration, I);
  });
  for (auto _ : State) {
    auto Events = FR.snapshot(64);
    benchmark::DoNotOptimize(Events.data());
  }
  Stop.store(true, std::memory_order_relaxed);
  Writer.join();
  FR.disable();
}
BENCHMARK(BM_SnapshotWhileRecording)->Unit(benchmark::kMicrosecond);

/// renderJsonl on a realistic incident tail (64 events).
void BM_RenderJsonlTail(benchmark::State &State) {
  std::vector<tel::FlightEvent> Events;
  for (uint64_t I = 0; I != 64; ++I)
    Events.push_back({I, 0, tel::FlightKind::Iteration, I, 7, 3});
  for (auto _ : State) {
    std::string Out = tel::FlightRecorder::renderJsonl(Events);
    benchmark::DoNotOptimize(Out.data());
  }
}
BENCHMARK(BM_RenderJsonlTail)->Unit(benchmark::kMicrosecond);

} // namespace

BENCHMARK_MAIN();
