//===- bench/bench_table4_generation.cpp -----------------------------------===//
//
// Regenerates Table 4 ("Results on classfile generation"): for each of
// classfuzz[stbr]/[st]/[tr], uniquefuzz, greedyfuzz, and randfuzz --
// #iterations, |GenClasses|, |TestClasses|, succ rate, and average time
// per generated / per test class. Also prints the Finding 1 analysis
// (unique coverage statistics of GenClasses per algorithm).
//
// Expected shape (not absolute numbers): randfuzz generates an order of
// magnitude more classfiles; classfuzz[stbr] accepts the most
// representative tests among the directed algorithms; greedyfuzz accepts
// very few; randfuzz's per-class time is far below the directed
// algorithms' (no coverage collection).
//
// The δ-diversity section compares discrepancy yield per 1k iterations:
// [dd-coarse]/[dd-fine] count distinct discrepancy categories over
// every produced mutant (their acceptance already ran all profiles),
// [stbr] over its TestClasses run through the differential stage (the
// paper's pipeline). The [dd-fine] >= [stbr] comparison is a CI gate:
// the process exits non-zero when guided differential acceptance loses
// to reference-coverage acceptance on the fixed-seed corpus.
//
//===----------------------------------------------------------------------===//

#include "../bench/BenchUtil.h"

#include "difftest/DiffTest.h"

#include <algorithm>
#include <cstdio>
#include <vector>

using namespace classfuzz;
using namespace classfuzz::bench;

int main() {
  std::printf("Table 4: Results on classfile generation "
              "(scale=%.2f, seeds=%zu)\n\n",
              scale(), numSeeds());

  std::vector<CampaignResult> Results;
  for (FuzzAlgorithm Algo : AllAlgorithms) {
    std::fprintf(stderr, "running %s...\n", fuzzAlgorithmName(Algo));
    Results.push_back(runPaperCampaign(Algo));
  }

  std::printf("%-28s", "");
  for (const CampaignResult &R : Results)
    std::printf("%16s", fuzzAlgorithmName(R.Algo));
  std::printf("\n");
  rule(28 + 16 * 6);

  std::printf("%-28s", "#iterations");
  for (const CampaignResult &R : Results)
    std::printf("%16zu", R.Iterations);
  std::printf("\n");

  std::printf("%-28s", "|GenClasses|");
  for (const CampaignResult &R : Results)
    std::printf("%16zu", R.numGenerated());
  std::printf("\n");

  std::printf("%-28s", "|TestClasses|");
  for (const CampaignResult &R : Results)
    std::printf("%16zu", R.numTests());
  std::printf("\n");

  std::printf("%-28s", "succ");
  for (const CampaignResult &R : Results)
    std::printf("%15.1f%%", R.successRatePercent());
  std::printf("\n");

  std::printf("%-28s", "avg time/generated (ms)");
  for (const CampaignResult &R : Results)
    std::printf("%16.3f", R.numGenerated()
                              ? 1e3 * R.ElapsedSeconds / R.numGenerated()
                              : 0.0);
  std::printf("\n");

  std::printf("%-28s", "avg time/test class (ms)");
  for (const CampaignResult &R : Results)
    std::printf("%16.3f",
                R.numTests() ? 1e3 * R.ElapsedSeconds / R.numTests()
                             : 0.0);
  std::printf("\n");

  std::printf("\nFinding 1 analysis: unique coverage statistics among "
              "GenClasses\n");
  rule(28 + 16 * 6);
  std::printf("%-28s", "unique (stmt,br) stats");
  for (const CampaignResult &R : Results)
    std::printf("%16zu", R.uniqueCoverageStats());
  std::printf("\n");

  // Finding 2 headline: MCMC's contribution over uniform selection.
  const CampaignResult &StBr = Results[0];
  const CampaignResult &Unique = Results[3];
  if (Unique.numTests() > 0) {
    double Gain = 100.0 *
                  (static_cast<double>(StBr.numTests()) -
                   static_cast<double>(Unique.numTests())) /
                  static_cast<double>(Unique.numTests());
    std::printf("\nMCMC sampling gain over uniquefuzz: %+.0f%% "
                "representative classfiles (paper: +43%%)\n",
                Gain);
  }

  // ---- δ-diversity yield: distinct discrepancies per 1k iterations ----
  //
  // Single fixed-seed trials so both contenders see the identical seed
  // corpus. The [stbr] baseline follows the paper's pipeline: its
  // TestClasses go through the five-profile differential stage and the
  // distinct encoded sequences are counted. The dd campaigns already
  // differential-tested every produced mutant during acceptance, so
  // their census is read straight off the result.
  std::printf("\nDelta-diversity yield (fixed seed %llu, single trial)\n",
              static_cast<unsigned long long>(CampaignRngSeed));
  rule(28 + 16 * 3);

  std::fprintf(stderr, "running classfuzz[stbr] (fixed seed)...\n");
  CampaignResult StBrFixed =
      runFixedSeedCampaign(FuzzAlgorithm::ClassfuzzStBr);
  DiffStats StBrStats;
  {
    auto Tester = DifferentialTester::withAllProfiles(
        StBrFixed.corpusClassPath(), EnvironmentMode::PerJvm);
    for (size_t I : StBrFixed.TestClassIndices)
      StBrStats.add(Tester.testClass(StBrFixed.GenClasses[I].Name));
  }
  size_t StBrDistinct = StBrStats.DistinctDiscrepancies.size();

  std::vector<CampaignResult> DdResults;
  for (FuzzAlgorithm Algo : DdAlgorithms) {
    std::fprintf(stderr, "running %s (fixed seed)...\n",
                 fuzzAlgorithmName(Algo));
    DdResults.push_back(runFixedSeedCampaign(Algo));
  }

  auto per1k = [](size_t Distinct, size_t Iterations) {
    return Iterations ? 1e3 * static_cast<double>(Distinct) /
                            static_cast<double>(Iterations)
                      : 0.0;
  };

  std::printf("%-28s%16s%16s%16s\n", "", "classfuzz[stbr]",
              fuzzAlgorithmName(DdResults[0].Algo),
              fuzzAlgorithmName(DdResults[1].Algo));
  std::printf("%-28s%16zu%16zu%16zu\n", "distinct discrepancies",
              StBrDistinct, DdResults[0].ddDistinctDiscrepancies(),
              DdResults[1].ddDistinctDiscrepancies());
  std::printf("%-28s%16.2f%16.2f%16.2f\n", "per 1k iterations",
              per1k(StBrDistinct, StBrFixed.Iterations),
              per1k(DdResults[0].ddDistinctDiscrepancies(),
                    DdResults[0].Iterations),
              per1k(DdResults[1].ddDistinctDiscrepancies(),
                    DdResults[1].Iterations));

  // CI gate: guided differential acceptance must not lose to the
  // reference-coverage baseline on discrepancy-category yield.
  double StBrYield = per1k(StBrDistinct, StBrFixed.Iterations);
  double DdFineYield = per1k(DdResults[1].ddDistinctDiscrepancies(),
                             DdResults[1].Iterations);
  if (DdFineYield < StBrYield) {
    std::printf("\nFAIL: [dd-fine] yield %.2f/1k < [stbr] yield %.2f/1k\n",
                DdFineYield, StBrYield);
    return 1;
  }
  std::printf("\nPASS: [dd-fine] yield %.2f/1k >= [stbr] yield %.2f/1k\n",
              DdFineYield, StBrYield);

  // ---- Typed mutation: analyzer-steered pool vs the untyped baseline ----
  //
  // Same fixed-seed dd-fine protocol, with the typed mutator family and
  // the deep-phase MCMC reward switched on. The steering claim is that
  // type-aware near-misses get *past* loading/linking more often (deep
  // reach: completed normally or died at initialization/runtime) while
  // costing nothing in discrepancy yield. A third run adds the
  // analyzer-gated pre-filter at full audit, checking its skip rate and
  // that no audited skip contradicts the reference VM.
  // Distinct-category counts are coarse below ~700 iterations (a
  // handful of categories decides the comparison), so this section
  // keeps a floor on its budget even when CLASSFUZZ_BENCH_SCALE shrinks
  // the table runs, and re-runs the untyped baseline at the same
  // budget so the arms stay paired.
  const size_t TypedIterations = std::max<size_t>(directedIterations(), 700);

  std::fprintf(stderr, "running dd-fine untyped baseline (fixed seed)...\n");
  CampaignConfig UntypedConfig = configFor(FuzzAlgorithm::ClassfuzzDdFine);
  UntypedConfig.Iterations = TypedIterations;
  CampaignResult Untyped = runCampaign(UntypedConfig);

  std::fprintf(stderr, "running dd-fine+typed (fixed seed)...\n");
  CampaignConfig TypedConfig = UntypedConfig;
  TypedConfig.TypedMutators = true;
  TypedConfig.DeepRewardWeight = 0.5;
  CampaignResult Typed = runCampaign(TypedConfig);

  std::fprintf(stderr, "running dd-fine+typed+prefilter (fixed seed)...\n");
  CampaignConfig PrefilterConfig = TypedConfig;
  PrefilterConfig.Prefilter = true;
  PrefilterConfig.PrefilterAudit = 1.0;
  CampaignResult Filtered = runCampaign(PrefilterConfig);

  auto deepFraction = [](const CampaignResult &R) {
    size_t Deep = 0, Executed = 0;
    for (const GeneratedClass &G : R.GenClasses) {
      if (G.RefPhase < 0)
        continue; // Prefilter-skipped: never executed.
      ++Executed;
      Deep += G.RefPhase == 0 || G.RefPhase >= 3;
    }
    return Executed ? static_cast<double>(Deep) /
                          static_cast<double>(Executed)
                    : 0.0;
  };

  std::printf("\nTyped mutation (dd-fine, fixed seed %llu)\n",
              static_cast<unsigned long long>(CampaignRngSeed));
  rule(28 + 16 * 3);
  std::printf("%-28s%16s%16s%16s\n", "", "untyped", "typed",
              "typed+filter");
  std::printf("%-28s%16zu%16zu%16zu\n", "|GenClasses|",
              Untyped.numGenerated(), Typed.numGenerated(),
              Filtered.numGenerated());
  std::printf("%-28s%15.1f%%%15.1f%%%15.1f%%\n", "deep-phase reach",
              100.0 * deepFraction(Untyped), 100.0 * deepFraction(Typed),
              100.0 * deepFraction(Filtered));
  std::printf("%-28s%16.2f%16.2f%16.2f\n", "discrepancies per 1k",
              per1k(Untyped.ddDistinctDiscrepancies(), Untyped.Iterations),
              per1k(Typed.ddDistinctDiscrepancies(), Typed.Iterations),
              per1k(Filtered.ddDistinctDiscrepancies(),
                    Filtered.Iterations));
  double SkipRate =
      Filtered.numGenerated()
          ? static_cast<double>(Filtered.PrefilterSkipped) /
                static_cast<double>(Filtered.numGenerated())
          : 0.0;
  std::printf("%-28s%16s%16s%15.1f%%\n", "prefilter skip rate", "-", "-",
              100.0 * SkipRate);
  std::printf("%-28s%16s%16s%16llu\n", "prefilter mispredicts", "-", "-",
              static_cast<unsigned long long>(Filtered.PrefilterMispredicts));

  // CI gates: the typed pool must push more mutants past loading and
  // linking without losing discrepancy yield, and the pre-filter must
  // earn its keep (>= 20% skipped) without a single audited mispredict.
  if (deepFraction(Typed) <= deepFraction(Untyped)) {
    std::printf("\nFAIL: typed deep reach %.1f%% <= untyped %.1f%%\n",
                100.0 * deepFraction(Typed), 100.0 * deepFraction(Untyped));
    return 1;
  }
  double UntypedYield =
      per1k(Untyped.ddDistinctDiscrepancies(), Untyped.Iterations);
  double TypedYield =
      per1k(Typed.ddDistinctDiscrepancies(), Typed.Iterations);
  if (TypedYield < UntypedYield) {
    std::printf("\nFAIL: typed yield %.2f/1k < untyped yield %.2f/1k\n",
                TypedYield, UntypedYield);
    return 1;
  }
  if (SkipRate < 0.20) {
    std::printf("\nFAIL: prefilter skipped only %.1f%% (< 20%%)\n",
                100.0 * SkipRate);
    return 1;
  }
  if (Filtered.PrefilterMispredicts != 0) {
    std::printf("\nFAIL: %llu audited prefilter mispredicts\n",
                static_cast<unsigned long long>(
                    Filtered.PrefilterMispredicts));
    return 1;
  }
  std::printf("\nPASS: typed deep reach %.1f%% > untyped %.1f%%, yield "
              "%.2f/1k >= %.2f/1k, prefilter skipped %.1f%% with 0 "
              "mispredicts\n",
              100.0 * deepFraction(Typed), 100.0 * deepFraction(Untyped),
              TypedYield, UntypedYield, 100.0 * SkipRate);
  return 0;
}
