//===- bench/bench_table4_generation.cpp -----------------------------------===//
//
// Regenerates Table 4 ("Results on classfile generation"): for each of
// classfuzz[stbr]/[st]/[tr], uniquefuzz, greedyfuzz, and randfuzz --
// #iterations, |GenClasses|, |TestClasses|, succ rate, and average time
// per generated / per test class. Also prints the Finding 1 analysis
// (unique coverage statistics of GenClasses per algorithm).
//
// Expected shape (not absolute numbers): randfuzz generates an order of
// magnitude more classfiles; classfuzz[stbr] accepts the most
// representative tests among the directed algorithms; greedyfuzz accepts
// very few; randfuzz's per-class time is far below the directed
// algorithms' (no coverage collection).
//
//===----------------------------------------------------------------------===//

#include "../bench/BenchUtil.h"

#include <cstdio>
#include <vector>

using namespace classfuzz;
using namespace classfuzz::bench;

int main() {
  std::printf("Table 4: Results on classfile generation "
              "(scale=%.2f, seeds=%zu)\n\n",
              scale(), numSeeds());

  std::vector<CampaignResult> Results;
  for (FuzzAlgorithm Algo : AllAlgorithms) {
    std::fprintf(stderr, "running %s...\n", fuzzAlgorithmName(Algo));
    Results.push_back(runPaperCampaign(Algo));
  }

  std::printf("%-28s", "");
  for (const CampaignResult &R : Results)
    std::printf("%16s", fuzzAlgorithmName(R.Algo));
  std::printf("\n");
  rule(28 + 16 * 6);

  std::printf("%-28s", "#iterations");
  for (const CampaignResult &R : Results)
    std::printf("%16zu", R.Iterations);
  std::printf("\n");

  std::printf("%-28s", "|GenClasses|");
  for (const CampaignResult &R : Results)
    std::printf("%16zu", R.numGenerated());
  std::printf("\n");

  std::printf("%-28s", "|TestClasses|");
  for (const CampaignResult &R : Results)
    std::printf("%16zu", R.numTests());
  std::printf("\n");

  std::printf("%-28s", "succ");
  for (const CampaignResult &R : Results)
    std::printf("%15.1f%%", R.successRatePercent());
  std::printf("\n");

  std::printf("%-28s", "avg time/generated (ms)");
  for (const CampaignResult &R : Results)
    std::printf("%16.3f", R.numGenerated()
                              ? 1e3 * R.ElapsedSeconds / R.numGenerated()
                              : 0.0);
  std::printf("\n");

  std::printf("%-28s", "avg time/test class (ms)");
  for (const CampaignResult &R : Results)
    std::printf("%16.3f",
                R.numTests() ? 1e3 * R.ElapsedSeconds / R.numTests()
                             : 0.0);
  std::printf("\n");

  std::printf("\nFinding 1 analysis: unique coverage statistics among "
              "GenClasses\n");
  rule(28 + 16 * 6);
  std::printf("%-28s", "unique (stmt,br) stats");
  for (const CampaignResult &R : Results)
    std::printf("%16zu", R.uniqueCoverageStats());
  std::printf("\n");

  // Finding 2 headline: MCMC's contribution over uniform selection.
  const CampaignResult &StBr = Results[0];
  const CampaignResult &Unique = Results[3];
  if (Unique.numTests() > 0) {
    double Gain = 100.0 *
                  (static_cast<double>(StBr.numTests()) -
                   static_cast<double>(Unique.numTests())) /
                  static_cast<double>(Unique.numTests());
    std::printf("\nMCMC sampling gain over uniquefuzz: %+.0f%% "
                "representative classfiles (paper: +43%%)\n",
                Gain);
  }
  return 0;
}
