//===- bench/bench_fig4_mutator_distribution.cpp ---------------------------===//
//
// Regenerates Figure 4 ("Correlation between the success rates of
// mutators and their selection frequencies"): three series over the
// mutators sorted in descending order of their classfuzz[stbr] success
// rates --
//   (a) success rates for TestClasses_classfuzz[stbr],
//   (b) selection frequencies for classfuzz[stbr],
//   (c) selection frequencies for uniquefuzz (uniform selection).
//
// Expected shape: (b) decreases along the (a) ordering (MCMC follows the
// success ranking); (c) is flat apart from noise.
//
//===----------------------------------------------------------------------===//

#include "../bench/BenchUtil.h"
#include "mutation/Mutator.h"

#include <algorithm>
#include <cstdio>

using namespace classfuzz;
using namespace classfuzz::bench;

int main() {
  std::printf("Figure 4: mutator success rates vs selection frequencies "
              "(scale=%.2f)\n\n",
              scale());
  CampaignResult StBr =
      runPaperCampaign(FuzzAlgorithm::ClassfuzzStBr);
  CampaignResult Unique =
      runPaperCampaign(FuzzAlgorithm::Uniquefuzz);

  const size_t N = mutatorRegistry().size();
  auto rate = [](const CampaignResult &R, size_t I) {
    return R.MutatorSelected[I] == 0
               ? 0.0
               : static_cast<double>(R.MutatorSucceeded[I]) /
                     static_cast<double>(R.MutatorSelected[I]);
  };
  size_t StBrTotal = 0, UniqueTotal = 0;
  for (size_t I = 0; I != N; ++I) {
    StBrTotal += StBr.MutatorSelected[I];
    UniqueTotal += Unique.MutatorSelected[I];
  }

  // Sort mutators by classfuzz[stbr] success rate, descending (the
  // x-axis shared by all three subfigures).
  std::vector<size_t> Order(N);
  for (size_t I = 0; I != N; ++I)
    Order[I] = I;
  std::stable_sort(Order.begin(), Order.end(), [&](size_t A, size_t B) {
    return rate(StBr, A) > rate(StBr, B);
  });

  std::printf("%4s %-34s %8s %12s %12s\n", "x", "mutator",
              "(a)succ", "(b)freq-stbr", "(c)freq-uniq");
  rule(76);
  for (size_t X = 0; X != N; ++X) {
    size_t I = Order[X];
    std::printf("%4zu %-34s %8.3f %12.4f %12.4f\n", X,
                mutatorRegistry()[I].Id.substr(0, 34).c_str(),
                rate(StBr, I),
                static_cast<double>(StBr.MutatorSelected[I]) /
                    static_cast<double>(StBrTotal),
                static_cast<double>(Unique.MutatorSelected[I]) /
                    static_cast<double>(UniqueTotal));
  }

  // Summary statistic: frequency mass of the top-quartile mutators.
  size_t Quartile = N / 4;
  size_t StBrTop = 0, UniqueTop = 0;
  for (size_t X = 0; X != Quartile; ++X) {
    StBrTop += StBr.MutatorSelected[Order[X]];
    UniqueTop += Unique.MutatorSelected[Order[X]];
  }
  std::printf("\nSelection mass on the top success-rate quartile:\n");
  std::printf("  classfuzz[stbr]: %5.1f%%  (MCMC concentrates here)\n",
              100.0 * StBrTop / static_cast<double>(StBrTotal));
  std::printf("  uniquefuzz:      %5.1f%%  (uniform baseline ~25%%)\n",
              100.0 * UniqueTop / static_cast<double>(UniqueTotal));
  return 0;
}
