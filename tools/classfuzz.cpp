//===- tools/classfuzz.cpp - Command-line driver -------------------------===//
//
// The classfuzz command-line tool:
//
//   classfuzz fuzz    [--algo A] [--iterations N | --time-budget S]
//                     [--seeds N] [--rng N] [--out DIR]
//       run a fuzzing campaign, differentially test the accepted
//       classfiles on all five JVM profiles, write report.md (and the
//       discrepancy-triggering .class files when --out is given)
//
//   classfuzz run     FILE.class [--env jre5|jre7|jre8|jre9]
//       execute one classfile on all five JVM profiles
//
//   classfuzz inspect FILE.class
//       javap-style + Jimple-style dumps
//
//   classfuzz reduce  FILE.class [--out FILE]
//       hierarchical delta debugging preserving the file's discrepancy
//
//   classfuzz mutators
//       list the 129 mutation operators
//
//===----------------------------------------------------------------------===//

#include "classfile/ClassReader.h"
#include "classfile/Printer.h"
#include "difftest/Report.h"
#include "fuzzing/Campaign.h"
#include "jir/Jir.h"
#include "mutation/Mutator.h"
#include "reducer/Reducer.h"
#include "runtime/RuntimeLib.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

using namespace classfuzz;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  classfuzz fuzz    [--algo stbr|st|tr|unique|greedy|rand]\n"
      "                    [--iterations N | --time-budget SECONDS]\n"
      "                    [--seeds N | --seed-dir DIR] [--rng N]\n"
      "                    [--jobs N] [--out DIR]\n"
      "  classfuzz run     FILE.class [--env jre5|jre7|jre8|jre9]\n"
      "  classfuzz inspect FILE.class\n"
      "  classfuzz reduce  FILE.class [--out FILE]\n"
      "  classfuzz mutators\n");
  return 2;
}

/// Simple flag map: --key value pairs plus positional arguments.
struct Args {
  std::vector<std::string> Positional;
  std::map<std::string, std::string> Flags;

  static Args parse(int Argc, char **Argv, int From) {
    Args Out;
    for (int I = From; I < Argc; ++I) {
      std::string A = Argv[I];
      if (A.rfind("--", 0) == 0) {
        std::string Value;
        if (I + 1 < Argc && Argv[I + 1][0] != '-')
          Value = Argv[++I];
        Out.Flags[A.substr(2)] = Value;
      } else {
        Out.Positional.push_back(A);
      }
    }
    return Out;
  }

  std::string get(const std::string &Key,
                  const std::string &Default = "") const {
    auto It = Flags.find(Key);
    return It == Flags.end() ? Default : It->second;
  }
  bool has(const std::string &Key) const { return Flags.count(Key); }
};

Result<Bytes> readFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return makeError("cannot open " + Path);
  Bytes Data((std::istreambuf_iterator<char>(In)),
             std::istreambuf_iterator<char>());
  return Data;
}

bool writeFile(const std::string &Path, const Bytes &Data) {
  std::ofstream Out(Path, std::ios::binary);
  if (!Out)
    return false;
  Out.write(reinterpret_cast<const char *>(Data.data()),
            static_cast<std::streamsize>(Data.size()));
  return static_cast<bool>(Out);
}

FuzzAlgorithm algoFromName(const std::string &Name) {
  if (Name == "st")
    return FuzzAlgorithm::ClassfuzzSt;
  if (Name == "tr")
    return FuzzAlgorithm::ClassfuzzTr;
  if (Name == "unique")
    return FuzzAlgorithm::Uniquefuzz;
  if (Name == "greedy")
    return FuzzAlgorithm::Greedyfuzz;
  if (Name == "rand")
    return FuzzAlgorithm::Randfuzz;
  return FuzzAlgorithm::ClassfuzzStBr;
}

/// Loads every *.class file of \p Dir as a seed (non-recursive).
std::vector<SeedClass> loadSeedDir(const std::string &Dir) {
  std::vector<SeedClass> Out;
  namespace fs = std::filesystem;
  std::error_code Ec;
  for (const auto &Entry : fs::directory_iterator(Dir, Ec)) {
    if (Ec)
      break;
    if (Entry.path().extension() != ".class")
      continue;
    auto Data = readFile(Entry.path().string());
    if (!Data)
      continue;
    auto CF = parseClassFile(*Data);
    if (!CF) {
      std::fprintf(stderr, "skipping %s: %s\n",
                   Entry.path().string().c_str(), CF.error().c_str());
      continue;
    }
    SeedClass Seed;
    Seed.Name = CF->ThisClass;
    Seed.Data = Data.take();
    Out.push_back(std::move(Seed));
  }
  return Out;
}

int cmdFuzz(const Args &A) {
  CampaignConfig Config;
  Config.Algo = algoFromName(A.get("algo", "stbr"));
  if (A.has("time-budget"))
    Config.TimeBudgetSeconds = std::atof(A.get("time-budget").c_str());
  else
    Config.Iterations =
        static_cast<size_t>(std::atol(A.get("iterations", "2000").c_str()));
  Config.NumSeeds =
      static_cast<size_t>(std::atol(A.get("seeds", "64").c_str()));
  Config.RngSeed =
      static_cast<uint64_t>(std::atoll(A.get("rng", "1").c_str()));
  // Worker threads for the campaign pipeline; results are identical
  // across --jobs values for a fixed --rng seed.
  Config.Jobs = static_cast<size_t>(
      std::max<long>(1, std::atol(A.get("jobs", "1").c_str())));
  if (A.has("seed-dir")) {
    Config.ExternalSeeds = loadSeedDir(A.get("seed-dir"));
    if (Config.ExternalSeeds.empty()) {
      std::fprintf(stderr, "no usable .class seeds in %s\n",
                   A.get("seed-dir").c_str());
      return 1;
    }
    std::fprintf(stderr, "loaded %zu seeds from %s\n",
                 Config.ExternalSeeds.size(), A.get("seed-dir").c_str());
  }

  std::fprintf(stderr, "running %s (%s)...\n",
               fuzzAlgorithmName(Config.Algo),
               Config.TimeBudgetSeconds > 0 ? "time budget"
                                            : "iteration budget");
  CampaignResult R = runCampaign(Config);
  std::printf("%s: %zu iterations, %zu generated, %zu representative "
              "tests (succ %.1f%%) in %.2fs\n",
              fuzzAlgorithmName(R.Algo), R.Iterations, R.numGenerated(),
              R.numTests(), R.successRatePercent(), R.ElapsedSeconds);

  std::fprintf(stderr, "differential testing %zu test classfiles...\n",
               R.numTests());
  auto Tester = DifferentialTester::withAllProfiles(
      R.corpusClassPath(), EnvironmentMode::PerJvm);

  DiffStats Stats;
  std::vector<DiscrepancyRecord> Records;
  std::vector<size_t> DiscrepancyIndices;
  for (size_t I : R.TestClassIndices) {
    const GeneratedClass &G = R.GenClasses[I];
    DiffOutcome O = Tester.testClass(G.Name);
    Stats.add(O);
    if (O.isDiscrepancy()) {
      Records.push_back(
          {G.Name, O, mutatorRegistry()[G.MutatorIndex].Description});
      DiscrepancyIndices.push_back(I);
    }
  }

  std::string Report =
      renderDiscrepancyReport(Tester.policies(), Records, Stats);
  std::string OutDir = A.get("out");
  if (OutDir.empty()) {
    std::fputs(Report.c_str(), stdout);
    return 0;
  }
  if (!writeFile(OutDir + "/report.md",
                 Bytes(Report.begin(), Report.end()))) {
    std::fprintf(stderr, "cannot write %s/report.md (does the directory "
                         "exist?)\n",
                 OutDir.c_str());
    return 1;
  }
  for (size_t I : DiscrepancyIndices) {
    const GeneratedClass &G = R.GenClasses[I];
    std::string Path = OutDir + "/" + G.Name + ".class";
    // Class names may carry package slashes; flatten for the filesystem.
    for (size_t P = OutDir.size() + 1; P < Path.size(); ++P)
      if (Path[P] == '/')
        Path[P] = '_';
    if (!writeFile(Path, G.Data))
      std::fprintf(stderr, "cannot write %s\n", Path.c_str());
  }
  std::printf("wrote %s/report.md and %zu discrepancy classfiles\n",
              OutDir.c_str(), DiscrepancyIndices.size());
  return 0;
}

int cmdRun(const Args &A) {
  if (A.Positional.empty())
    return usage();
  auto Data = readFile(A.Positional[0]);
  if (!Data) {
    std::fprintf(stderr, "%s\n", Data.error().c_str());
    return 1;
  }
  auto CF = parseClassFile(*Data);
  if (!CF) {
    std::fprintf(stderr, "parse error: %s\n", CF.error().c_str());
    return 1;
  }
  ClassPath Corpus;
  Corpus.add(CF->ThisClass, *Data);
  std::string Env = A.get("env");
  auto Tester = Env.empty()
                    ? DifferentialTester::withAllProfiles(
                          Corpus, EnvironmentMode::PerJvm)
                    : DifferentialTester::withAllProfiles(
                          Corpus, EnvironmentMode::Shared, Env);
  DiffOutcome O = Tester.testClass(CF->ThisClass);
  std::printf("encoded \"%s\"%s\n", O.encodedString().c_str(),
              O.isDiscrepancy() ? "  ** DISCREPANCY **" : "");
  for (size_t I = 0; I != O.Results.size(); ++I) {
    std::printf("  %-22s %s\n", Tester.policies()[I].Name.c_str(),
                O.Results[I].toString().c_str());
    for (const std::string &Line : O.Results[I].Output)
      std::printf("      > %s\n", Line.c_str());
  }
  return 0;
}

int cmdInspect(const Args &A) {
  if (A.Positional.empty())
    return usage();
  auto Data = readFile(A.Positional[0]);
  if (!Data) {
    std::fprintf(stderr, "%s\n", Data.error().c_str());
    return 1;
  }
  auto CF = parseClassFile(*Data);
  if (!CF) {
    std::fprintf(stderr, "parse error: %s\n", CF.error().c_str());
    return 1;
  }
  std::fputs(printClassFile(*CF).c_str(), stdout);
  auto J = lowerToJir(*CF);
  if (J)
    std::fputs(printJir(*J).c_str(), stdout);
  return 0;
}

int cmdReduce(const Args &A) {
  if (A.Positional.empty())
    return usage();
  auto Data = readFile(A.Positional[0]);
  if (!Data) {
    std::fprintf(stderr, "%s\n", Data.error().c_str());
    return 1;
  }
  auto CF = parseClassFile(*Data);
  if (!CF) {
    std::fprintf(stderr, "parse error: %s\n", CF.error().c_str());
    return 1;
  }
  auto Tester = DifferentialTester::withAllProfiles(
      ClassPath(), EnvironmentMode::PerJvm);
  std::string Target =
      Tester.testClass(CF->ThisClass, *Data).encodedString();
  bool Constant = true;
  for (char C : Target)
    Constant &= C == Target[0];
  if (Constant) {
    std::fprintf(stderr,
                 "%s triggers no discrepancy (encoded \"%s\"); nothing "
                 "to preserve\n",
                 A.Positional[0].c_str(), Target.c_str());
    return 1;
  }
  std::printf("preserving discrepancy category \"%s\"\n", Target.c_str());
  ReductionOracle Oracle = [&](const std::string &Name,
                               const Bytes &Candidate) {
    return Tester.testClass(Name, Candidate).encodedString() == Target;
  };
  ReductionStats Stats;
  auto Reduced = reduceClassfile(*Data, Oracle, &Stats);
  if (!Reduced) {
    std::fprintf(stderr, "reduction failed: %s\n",
                 Reduced.error().c_str());
    return 1;
  }
  std::printf("reduced %zu -> %zu bytes (%zu oracle queries)\n",
              Data->size(), Reduced->size(), Stats.OracleQueries);
  std::string OutPath = A.get("out", A.Positional[0] + ".reduced");
  if (!writeFile(OutPath, *Reduced)) {
    std::fprintf(stderr, "cannot write %s\n", OutPath.c_str());
    return 1;
  }
  std::printf("wrote %s\n", OutPath.c_str());
  return 0;
}

int cmdMutators() {
  std::printf("%zu mutators (%s):\n\n", mutatorRegistry().size(),
              "123 syntactic + 6 statement-level");
  for (const Mutator &Mu : mutatorRegistry())
    std::printf("%-34s %-14s %s\n", Mu.Id.c_str(), Mu.Category.c_str(),
                Mu.Description.c_str());
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage();
  std::string Cmd = Argv[1];
  Args A = Args::parse(Argc, Argv, 2);
  if (Cmd == "fuzz")
    return cmdFuzz(A);
  if (Cmd == "run")
    return cmdRun(A);
  if (Cmd == "inspect")
    return cmdInspect(A);
  if (Cmd == "reduce")
    return cmdReduce(A);
  if (Cmd == "mutators")
    return cmdMutators();
  return usage();
}
