//===- tools/classfuzz.cpp - Command-line driver -------------------------===//
//
// The classfuzz command-line tool:
//
//   classfuzz fuzz    [--algo A] [--iterations N | --time-budget S]
//                     [--seeds N] [--rng N] [--out DIR]
//                     [--incidents DIR] [--reduce] [--reduce-jobs N]
//       run a fuzzing campaign, differentially test the accepted
//       classfiles on all five JVM profiles, write report.md (and the
//       discrepancy-triggering .class files when --out is given);
//       --incidents dumps a self-contained replayable bundle per
//       discrepancy or VM abort (DESIGN.md §9)
//
//   classfuzz replay  BUNDLE_DIR
//       re-derive an incident bundle's mutant from lineage.json and
//       re-run the differential test, checking both against the bundle
//
//   classfuzz run     FILE.class [--env jre5|jre7|jre8|jre9]
//       execute one classfile on all five JVM profiles
//
//   classfuzz analyze FILE.class... [--print] [--env jre5|...]
//       execution-free static triage: run every lint pass over each
//       classfile and predict the reference JVM's startup outcome;
//       default output is one JSON line per class (stable bytes),
//       --print renders an annotated javap-style dump instead
//
//   classfuzz inspect FILE.class
//       javap-style + Jimple-style dumps
//
//   classfuzz reduce  FILE.class [--out FILE] [--reduce-jobs N]
//       chunked hierarchical delta debugging preserving the file's
//       discrepancy; output bytes are identical for any --reduce-jobs
//
//   classfuzz mutators
//       list the 129 mutation operators
//
//   classfuzz report  TIMESERIES.jsonl [--stats FILE] [--frontier FILE]
//                     [--out FILE] [--progress-dash]
//       render the campaign observability artifacts (--timeseries,
//       --frontier, --stats-json) into a self-contained single-file
//       HTML report, or tail the time series live in the terminal
//       with --progress-dash (DESIGN.md §15)
//
// Every subcommand declares its flags in an ArgParser table: unknown
// flags are rejected with a diagnostic and --help is generated from the
// same table. The telemetry flags --stats-json, --trace-events, and
// --trace-perfetto (fuzz/run/reduce) enable the observation-only
// metrics layer of DESIGN.md §8-9.
//
//===----------------------------------------------------------------------===//

#include "analysis/StaticAnalyzer.h"
#include "classfile/ClassReader.h"
#include "classfile/Printer.h"
#include "difftest/Incident.h"
#include "difftest/Report.h"
#include "fuzzing/Campaign.h"
#include "fuzzing/Provenance.h"
#include "jir/Jir.h"
#include "jvm/ExecTier.h"
#include "jvm/Phase.h"
#include "mutation/Mutator.h"
#include "reducer/Reducer.h"
#include "runtime/RuntimeLib.h"
#include "support/ArgParser.h"
#include "support/Json.h"
#include "telemetry/CampaignReport.h"
#include "telemetry/FlightRecorder.h"
#include "telemetry/PerfettoTrace.h"
#include "telemetry/Telemetry.h"
#include "telemetry/TimeSeries.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

using namespace classfuzz;

namespace {

int usage(std::FILE *To) {
  std::fprintf(
      To,
      "usage:\n"
      "  classfuzz fuzz    [--algo stbr|st|tr|dd-coarse|dd-fine|unique|"
      "greedy|rand]\n"
      "                    [--criterion st|stbr|tr|dd-coarse|dd-fine]\n"
      "                    [--iterations N | --time-budget SECONDS]\n"
      "                    [--seeds N | --seed-dir DIR] [--rng N]\n"
      "                    [--corpus-scale N]\n"
      "                    [--seed-sched uniform|rare|cluster]\n"
      "                    [--jobs N] [--out DIR] [--progress SECONDS]\n"
      "                    [--tier switch|threaded|baseline] [--tier-diff]\n"
      "                    [--incidents DIR] [--flightrec N] [--reduce]\n"
      "                    [--reduce-jobs N]\n"
      "                    [--timeseries FILE] [--sample-every K]\n"
      "                    [--sample-filter PREFIXES] [--frontier FILE]\n"
      "                    [--rare-threshold N] [--plateau-window N]\n"
      "                    [--stop-on-plateau]\n"
      "                    [--typed-mutators] [--deep-reward W]\n"
      "                    [--prefilter] [--prefilter-audit F]\n"
      "                    [--stats-json FILE] [--stats-filter PREFIXES]\n"
      "                    [--trace-events FILE] [--trace-perfetto FILE]\n"
      "  classfuzz replay  BUNDLE_DIR\n"
      "  classfuzz run     FILE.class [--env jre5|jre7|jre8|jre9]\n"
      "                    [--tier switch|threaded|baseline]\n"
      "  classfuzz analyze FILE.class... [--print | --holes]\n"
      "                    [--env jre5|jre7|jre8|jre9]\n"
      "  classfuzz inspect FILE.class\n"
      "  classfuzz reduce  FILE.class [--out FILE] [--reduce-jobs N]\n"
      "                    [--max-queries N] [--no-chunks]\n"
      "  classfuzz seeds   --out DIR [--seeds N] [--rng N]\n"
      "                    [--corpus-scale N]\n"
      "  classfuzz mutators\n"
      "  classfuzz report  TIMESERIES.jsonl [--stats FILE]\n"
      "                    [--frontier FILE] [--out FILE] [--title T]\n"
      "                    [--progress-dash] [--interval SECONDS] "
      "[--once]\n"
      "\n"
      "run 'classfuzz <command> --help' for per-command flags\n");
  return To == stdout ? 0 : 2;
}

/// The telemetry flags shared by fuzz/run/reduce.
std::vector<FlagSpec> withTelemetryFlags(std::vector<FlagSpec> Specs) {
  Specs.push_back({"stats-json", "FILE",
                   "write a JSON metrics snapshot to FILE at exit "
                   "(\"-\" = stdout)",
                   ""});
  Specs.push_back({"stats-filter", "PREFIXES",
                   "restrict the --stats-json snapshot to metrics whose "
                   "name starts with one of the comma-separated "
                   "PREFIXES (e.g. campaign.dd or campaign.,frontier.)",
                   ""});
  Specs.push_back({"trace-events", "FILE",
                   "stream JSONL trace events to FILE (\"-\" = stdout)",
                   ""});
  Specs.push_back({"trace-perfetto", "FILE",
                   "write a Chrome/Perfetto trace of phase spans to FILE "
                   "at exit",
                   ""});
  return Specs;
}

/// Parses a subcommand's arguments; returns true to continue, false
/// with \p Exit set after printing help or a diagnostic.
bool parseOrExit(ArgParser &A, int Argc, char **Argv, int &Exit) {
  if (!A.parse(Argc, Argv, 2)) {
    std::fprintf(stderr, "%s\n", A.error().c_str());
    Exit = 2;
    return false;
  }
  if (A.helpRequested()) {
    std::fputs(A.helpText().c_str(), stdout);
    Exit = 0;
    return false;
  }
  return true;
}

/// Enables telemetry per --stats-json/--trace-events and, on
/// destruction, uninstalls the event sink and writes the snapshot.
class TelemetryCli {
public:
  bool setup(const ArgParser &A) {
    StatsPath = A.get("stats-json");
    StatsFilter = A.get("stats-filter");
    PerfettoPath = A.get("trace-perfetto");
    std::string TracePath = A.get("trace-events");
    if (StatsPath.empty() && TracePath.empty() && PerfettoPath.empty())
      return true;
    telemetry::setEnabled(true);
    if (!TracePath.empty()) {
      std::FILE *F = TracePath == "-" ? stdout
                                      : std::fopen(TracePath.c_str(), "w");
      if (!F) {
        std::fprintf(stderr, "cannot open %s for trace events\n",
                     TracePath.c_str());
        return false;
      }
      bool Close = TracePath != "-";
      telemetry::setEventSink(std::make_unique<telemetry::FileEventSink>(
          F, Close, "trace events (" + TracePath + ")"));
    }
    if (!PerfettoPath.empty())
      telemetry::enableSpanCollection();
    return true;
  }

  ~TelemetryCli() {
    telemetry::setEventSink(nullptr);
    if (!PerfettoPath.empty()) {
      std::FILE *F = std::fopen(PerfettoPath.c_str(), "w");
      if (!F) {
        std::fprintf(stderr, "cannot write %s\n", PerfettoPath.c_str());
      } else {
        if (!telemetry::writeChromeTrace(F))
          std::fprintf(stderr, "short write to %s\n", PerfettoPath.c_str());
        std::fclose(F);
      }
      telemetry::disableSpanCollection();
    }
    if (StatsPath.empty())
      return;
    std::string Json = telemetry::metrics().snapshotJson(StatsFilter);
    if (StatsPath == "-") {
      std::printf("%s\n", Json.c_str());
      return;
    }
    std::FILE *F = std::fopen(StatsPath.c_str(), "w");
    if (!F) {
      std::fprintf(stderr, "cannot write %s\n", StatsPath.c_str());
      return;
    }
    std::fprintf(F, "%s\n", Json.c_str());
    std::fclose(F);
  }

private:
  std::string StatsPath;
  std::string StatsFilter;
  std::string PerfettoPath;
};

Result<Bytes> readFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return makeError("cannot open " + Path);
  Bytes Data((std::istreambuf_iterator<char>(In)),
             std::istreambuf_iterator<char>());
  return Data;
}

bool writeFile(const std::string &Path, const Bytes &Data) {
  std::ofstream Out(Path, std::ios::binary);
  if (!Out)
    return false;
  Out.write(reinterpret_cast<const char *>(Data.data()),
            static_cast<std::streamsize>(Data.size()));
  return static_cast<bool>(Out);
}

FuzzAlgorithm algoFromName(const std::string &Name) {
  if (Name == "st")
    return FuzzAlgorithm::ClassfuzzSt;
  if (Name == "tr")
    return FuzzAlgorithm::ClassfuzzTr;
  if (Name == "dd-coarse")
    return FuzzAlgorithm::ClassfuzzDdCoarse;
  if (Name == "dd-fine")
    return FuzzAlgorithm::ClassfuzzDdFine;
  if (Name == "unique")
    return FuzzAlgorithm::Uniquefuzz;
  if (Name == "greedy")
    return FuzzAlgorithm::Greedyfuzz;
  if (Name == "rand")
    return FuzzAlgorithm::Randfuzz;
  return FuzzAlgorithm::ClassfuzzStBr;
}

/// Loads every *.class file of \p Dir as a seed (non-recursive).
std::vector<SeedClass> loadSeedDir(const std::string &Dir) {
  std::vector<SeedClass> Out;
  namespace fs = std::filesystem;
  std::error_code Ec;
  for (const auto &Entry : fs::directory_iterator(Dir, Ec)) {
    if (Ec)
      break;
    if (Entry.path().extension() != ".class")
      continue;
    auto Data = readFile(Entry.path().string());
    if (!Data)
      continue;
    auto CF = parseClassFile(*Data);
    if (!CF) {
      std::fprintf(stderr, "skipping %s: %s\n",
                   Entry.path().string().c_str(), CF.error().c_str());
      continue;
    }
    SeedClass Seed;
    Seed.Name = CF->ThisClass;
    Seed.Data = Data.take();
    Out.push_back(std::move(Seed));
  }
  return Out;
}

int cmdFuzz(int Argc, char **Argv) {
  ArgParser A(
      "classfuzz fuzz", "",
      withTelemetryFlags(
          {{"algo", "ALGO",
            "algorithm: stbr|st|tr|dd-coarse|dd-fine|unique|greedy|rand",
            "stbr"},
           {"criterion", "C",
            "acceptance criterion (classfuzz shorthand for --algo): "
            "st|stbr|tr|dd-coarse|dd-fine",
            ""},
           {"iterations", "N", "iteration budget", "2000"},
           {"time-budget", "SECONDS",
            "wall-clock budget (overrides --iterations)", ""},
           {"seeds", "N", "generated seed-corpus size", "64"},
           {"corpus-scale", "N",
            "multiply the generated corpus by N (parameterized "
            "generators sweep constant-pool shape, hierarchy depth, "
            "exception-table geometry, and attribute soup per round)",
            "1"},
           {"seed-sched", "P",
            "seed-selection policy over the mutation pool: "
            "uniform|rare|cluster (rare/cluster need coverage, so not "
            "--algo rand)",
            "uniform"},
           {"seed-dir", "DIR", "seed with the .class files of DIR", ""},
           {"rng", "N", "campaign RNG seed", "1"},
           {"jobs", "N",
            "worker threads; results are identical across values", "1"},
           {"tier", "T",
            "execution tier for every JVM run: switch|threaded|baseline",
            "threaded"},
           {"tier-diff", "",
            "also run every produced mutant on the reference policy's "
            "interpreter and baseline-JIT tiers and census tier "
            "disagreements as their own discrepancy class",
            ""},
           {"out", "DIR",
            "write report.md + discrepancy classfiles to DIR", ""},
           {"progress", "SECONDS",
            "print a one-line progress report to stderr every SECONDS",
            ""},
           {"incidents", "DIR",
            "dump a replayable incident bundle per discrepancy or VM "
            "abort under DIR",
            ""},
           {"analysis-incidents", "DIR",
            "dump a self-check bundle per predict-vs-observe mismatch "
            "of the static analyzer under DIR",
            ""},
           {"no-analysis", "",
            "skip the static analyzer (and its analysis.* telemetry)",
            ""},
           {"flightrec", "N",
            "flight-recorder ring capacity per lane (with --incidents)",
            "1024"},
           {"reduce", "",
            "also reduce each discrepancy into the incident bundle",
            ""},
           {"reduce-jobs", "N",
            "worker threads per reduction; reduced bytes are identical "
            "across values",
            "1"},
           {"timeseries", "FILE",
            "stream a delta-encoded JSONL metric time series to FILE, "
            "sampled at the commit stage (byte-identical across --jobs)",
            ""},
           {"sample-every", "K",
            "time-series sample period in committed iterations", "64"},
           {"sample-filter", "PREFIXES",
            "comma-separated metric-name prefixes the time series "
            "samples (default: campaign.,coverage.,frontier.,analysis.)",
            ""},
           {"frontier", "FILE",
            "track the coverage frontier and write the per-branch/stmt "
            "hit-count + first-hit-attribution census to FILE as JSONL",
            ""},
           {"rare-threshold", "N",
            "a frontier branch/stmt is rare while its hits <= N", "2"},
           {"plateau-window", "N",
            "latch campaign.plateau_at when N consecutive committed "
            "iterations discover nothing new (0 = off)",
            "0"},
           {"stop-on-plateau", "",
            "stop the campaign at the plateau (implies --plateau-window "
            "256 unless set)",
            ""},
           {"typed-mutators", "",
            "extend the mutator pool with the analyzer-driven typed "
            "mutators (typed.*): near-miss rewrites at the typed holes "
            "the static analyzer extracts per class",
            ""},
           {"deep-reward", "W",
            "MCMC deep-phase reward weight: each mutant surviving "
            "loading/linking adds W to its mutator's blended success "
            "rate (0 = the paper's pure acceptance rate)",
            "0"},
           {"prefilter", "",
            "skip the reference execution of mutants the static "
            "analyzer proves dead while loading/linking (counted in "
            "campaign.prefilter_*)",
            ""},
           {"prefilter-audit", "F",
            "fraction of pre-filter skips (keyed on the mutant's "
            "content hash) that still execute to audit the prediction; "
            "a mispredict latches an analyzer self-check",
            "0.05"}}));
  int Exit = 0;
  if (!parseOrExit(A, Argc, Argv, Exit))
    return Exit;
  TelemetryCli Telem;
  if (!Telem.setup(A))
    return 1;

  CampaignConfig Config;
  Config.Algo = algoFromName(A.get("algo"));
  if (A.has("criterion")) {
    // --criterion names the uniqueness discipline directly; it maps
    // onto the classfuzz algorithm with that acceptance rule.
    const std::string C = A.get("criterion");
    if (C != "st" && C != "stbr" && C != "tr" && C != "dd-coarse" &&
        C != "dd-fine") {
      std::fprintf(stderr,
                   "unknown --criterion %s (expected "
                   "st|stbr|tr|dd-coarse|dd-fine)\n",
                   C.c_str());
      return 2;
    }
    Config.Algo = algoFromName(C);
  }
  if (A.has("time-budget"))
    Config.TimeBudgetSeconds = A.getDouble("time-budget");
  else
    Config.Iterations = static_cast<size_t>(A.getUnsigned("iterations"));
  const size_t CorpusScale =
      std::max<size_t>(1, static_cast<size_t>(A.getUnsigned("corpus-scale")));
  Config.NumSeeds =
      static_cast<size_t>(A.getUnsigned("seeds")) * CorpusScale;
  if (!parseSeedSchedPolicy(A.get("seed-sched"), Config.SeedSched)) {
    std::fprintf(stderr,
                 "unknown --seed-sched %s (expected "
                 "uniform|rare|cluster)\n",
                 A.get("seed-sched").c_str());
    return 2;
  }
  if (Config.SeedSched != SeedSchedPolicy::Uniform &&
      Config.Algo == FuzzAlgorithm::Randfuzz) {
    // rand collects no coverage at all, so there is nothing for the
    // learned policies to score. (No --frontier requirement, though:
    // the scheduler keeps its own hit-count table.)
    std::fprintf(stderr,
                 "--seed-sched %s needs coverage; --algo rand never "
                 "collects any\n",
                 seedSchedPolicyName(Config.SeedSched));
    return 2;
  }
  Config.RngSeed = A.getUnsigned("rng");
  // Worker threads for the campaign pipeline; results are identical
  // across --jobs values for a fixed --rng seed.
  Config.Jobs = std::max<size_t>(1, static_cast<size_t>(A.getUnsigned("jobs")));
  Config.ProgressIntervalSeconds = A.getDouble("progress");
  auto Tier = parseExecTier(A.get("tier"));
  if (!Tier) {
    std::fprintf(stderr,
                 "unknown --tier %s (expected switch|threaded|baseline)\n",
                 A.get("tier").c_str());
    return 2;
  }
  Config.ReferencePolicy.Tier = *Tier;
  Config.TierDiff = A.has("tier-diff");
  Config.TypedMutators = A.has("typed-mutators");
  Config.DeepRewardWeight = A.getDouble("deep-reward");
  if (Config.DeepRewardWeight > 0 &&
      (Config.Algo == FuzzAlgorithm::Randfuzz ||
       Config.Algo == FuzzAlgorithm::Uniquefuzz ||
       Config.Algo == FuzzAlgorithm::Greedyfuzz)) {
    std::fprintf(stderr,
                 "--deep-reward shapes the MCMC selector; %s does not "
                 "use one\n",
                 fuzzAlgorithmName(Config.Algo));
    return 2;
  }
  Config.Prefilter = A.has("prefilter");
  Config.PrefilterAudit = A.getDouble("prefilter-audit");
  if (Config.Prefilter && Config.Algo == FuzzAlgorithm::Randfuzz) {
    std::fprintf(stderr, "--prefilter skips reference executions; --algo "
                         "rand never runs any\n");
    return 2;
  }
  const std::string AnalysisDir = A.get("analysis-incidents");
  Config.RunAnalysis = !A.has("no-analysis");
  if (!AnalysisDir.empty() && !Config.RunAnalysis) {
    std::fprintf(stderr,
                 "--analysis-incidents requires the analyzer; drop "
                 "--no-analysis\n");
    return 2;
  }
  Config.TrackFrontier = A.has("frontier");
  Config.RareBranchThreshold = A.getUnsigned("rare-threshold");
  Config.PlateauWindow =
      static_cast<size_t>(A.getUnsigned("plateau-window"));
  Config.StopOnPlateau = A.has("stop-on-plateau");
  if (Config.StopOnPlateau && Config.PlateauWindow == 0)
    Config.PlateauWindow = 256;
  std::unique_ptr<telemetry::TimeSeriesSampler> Sampler;
  if (A.has("timeseries")) {
    // The sampler snapshots the metric registry at every commit stride,
    // so the observation layer must be on even without --stats-json.
    telemetry::setEnabled(true);
    telemetry::TimeSeriesSampler::Options TsOpts;
    TsOpts.SampleEvery = A.getUnsigned("sample-every");
    if (A.has("sample-filter"))
      TsOpts.Prefixes = A.getList("sample-filter");
    std::FILE *F = std::fopen(A.get("timeseries").c_str(), "w");
    if (!F) {
      std::fprintf(stderr, "cannot open %s for the time series\n",
                   A.get("timeseries").c_str());
      return 1;
    }
    Sampler = std::make_unique<telemetry::TimeSeriesSampler>(TsOpts, F);
    Config.TimeSeries = Sampler.get();
  }
  if (A.has("seed-dir")) {
    Config.ExternalSeeds = loadSeedDir(A.get("seed-dir"));
    if (Config.ExternalSeeds.empty()) {
      std::fprintf(stderr, "no usable .class seeds in %s\n",
                   A.get("seed-dir").c_str());
      return 1;
    }
    std::fprintf(stderr, "loaded %zu seeds from %s\n",
                 Config.ExternalSeeds.size(), A.get("seed-dir").c_str());
  }

  // Arm the flight recorder before the campaign so incident bundles
  // arrive with the run's last moments attached. Record sites are
  // driver-side and deterministic, so the dumped stream (like the rest
  // of the bundle) is byte-identical across --jobs values.
  const std::string IncidentsDir = A.get("incidents");
  if (!IncidentsDir.empty())
    telemetry::flightRecorder().enable(
        std::max<size_t>(16, static_cast<size_t>(A.getUnsigned("flightrec"))));

  std::fprintf(stderr, "running %s (%s)...\n",
               fuzzAlgorithmName(Config.Algo),
               Config.TimeBudgetSeconds > 0 ? "time budget"
                                            : "iteration budget");
  CampaignResult R = runCampaign(Config);
  std::printf("%s: %zu iterations, %zu generated, %zu representative "
              "tests (succ %.1f%%) in %.2fs\n",
              fuzzAlgorithmName(R.Algo), R.Iterations, R.numGenerated(),
              R.numTests(), R.successRatePercent(), R.ElapsedSeconds);
  if (usesDeltaDiversity(R.Algo))
    std::printf("dd census: %zu discrepancies over %zu produced mutants, "
                "%zu distinct categories\n",
                R.DdDiscrepancies, R.numGenerated(),
                R.ddDistinctDiscrepancies());
  if (Config.TierDiff) {
    size_t TierCategories = 0;
    for (const auto &[Encoded, Count] : R.TierOutcomeCounts)
      if (Encoded.size() == 2 && Encoded[0] != Encoded[1])
        ++TierCategories;
    std::printf("tier census: %zu interp-vs-baseline disagreements over "
                "%zu produced mutants, %zu distinct categories\n",
                R.TierDisagreements, R.numGenerated(), TierCategories);
  }
  if (Config.SeedSched != SeedSchedPolicy::Uniform)
    std::printf("sched: policy=%s, %llu draws (%llu rare), %llu epochs\n",
                seedSchedPolicyName(Config.SeedSched),
                static_cast<unsigned long long>(R.SchedDraws),
                static_cast<unsigned long long>(R.SchedRareDraws),
                static_cast<unsigned long long>(R.SchedEpochs));
  if (Config.Prefilter)
    std::printf("prefilter: %llu skipped, %llu passed, %llu audited, "
                "%llu mispredicted\n",
                static_cast<unsigned long long>(R.PrefilterSkipped),
                static_cast<unsigned long long>(R.PrefilterPassed),
                static_cast<unsigned long long>(R.PrefilterAudited),
                static_cast<unsigned long long>(R.PrefilterMispredicts));
  if (R.Plateaued)
    std::printf("plateau: no discoveries over a %zu-commit window; "
                "latched at iteration %llu%s\n",
                Config.PlateauWindow,
                static_cast<unsigned long long>(R.PlateauAt),
                Config.StopOnPlateau ? " (campaign stopped)" : "");
  if (A.has("frontier")) {
    if (!R.Frontier) {
      std::fprintf(stderr,
                   "note: %s tracks no coverage; skipping the frontier "
                   "census\n",
                   fuzzAlgorithmName(R.Algo));
    } else {
      std::string Census = R.Frontier->renderCensusJsonl();
      if (!writeFile(A.get("frontier"),
                     Bytes(Census.begin(), Census.end()))) {
        std::fprintf(stderr, "cannot write %s\n",
                     A.get("frontier").c_str());
        return 1;
      }
      std::printf("frontier: %zu stmts, %zu branches (%zu rare at "
                  "threshold %llu) -> %s\n",
                  R.Frontier->distinctStmts(),
                  R.Frontier->distinctBranches(),
                  R.Frontier->rareBranches().size(),
                  static_cast<unsigned long long>(
                      R.Frontier->rareThreshold()),
                  A.get("frontier").c_str());
    }
  }

  std::fprintf(stderr, "differential testing %zu test classfiles...\n",
               R.numTests());
  auto Tester = DifferentialTester::withTieredProfiles(
      R.corpusClassPath(), EnvironmentMode::PerJvm, *Tier, Config.TierDiff);

  CampaignEnvSpec EnvSpec;
  EnvSpec.RngSeed = Config.RngSeed;
  EnvSpec.NumSeeds = Config.NumSeeds;
  EnvSpec.SeedDir = A.get("seed-dir");
  EnvSpec.ReferencePolicyName = Config.ReferencePolicy.Name;
  EnvSpec.TierName = execTierName(*Tier);
  EnvSpec.TierDiff = Config.TierDiff;

  DiffStats Stats;
  std::vector<DiscrepancyRecord> Records;
  std::vector<size_t> DiscrepancyIndices;
  size_t IncidentIndex = 0;
  for (size_t I : R.TestClassIndices) {
    const GeneratedClass &G = R.GenClasses[I];
    DiffOutcome O = Tester.testClass(G.Name);
    O.commitFlightEvents();
    Stats.add(O);
    bool Discrepancy = O.isDiscrepancy();
    if (Discrepancy) {
      Records.push_back(
          {G.Name, O, extendedMutatorRegistry()[G.MutatorIndex].Description});
      DiscrepancyIndices.push_back(I);
    }
    if (IncidentsDir.empty() || (!Discrepancy && !O.anyInternalError()))
      continue;

    Incident Inc;
    Inc.MutantName = G.Name;
    Inc.MutantData = G.Data;
    Inc.Outcome = O;
    for (const ProfileDesc &P : Tester.profiles()) {
      Inc.ProfileNames.push_back(P.Name);
      Inc.ProfileTiers.push_back(execTierName(P.Tier));
    }
    Inc.Prov = G.Prov;
    Inc.Env = EnvSpec;
    if (Discrepancy && A.has("reduce")) {
      // Shrink while preserving the discrepancy category; the candidate
      // overlay shadows the corpus copy of the mutant. Probe-lane
      // flight events stay deferred inside each probe's DiffOutcome and
      // are never committed, so the bundled flightrec.jsonl tail is
      // byte-identical for any --reduce-jobs value.
      const std::string Target = O.encodedString();
      ReductionOracle Oracle = [&](const std::string &Name,
                                   const Bytes &Candidate) {
        return Tester.testClass(Name, Candidate).encodedString() == Target;
      };
      ReducerOptions ROpts;
      ROpts.Jobs =
          std::max<size_t>(1, static_cast<size_t>(A.getUnsigned("reduce-jobs")));
      if (auto Reduced = reduceClassfile(G.Data, Oracle, ROpts)) {
        Inc.Reduced = Reduced.take();
        Inc.HasReduced = true;
      }
    }
    auto Bundle = writeIncidentBundle(IncidentsDir, IncidentIndex++, Inc);
    if (!Bundle)
      std::fprintf(stderr, "incident: %s\n", Bundle.error().c_str());
    else
      std::fprintf(stderr, "incident: wrote %s\n", Bundle->c_str());
  }
  if (!IncidentsDir.empty())
    std::printf("wrote %zu incident bundles under %s\n", IncidentIndex,
                IncidentsDir.c_str());

  // Self-check oracle: every latched predict-vs-observe mismatch of the
  // static analyzer becomes its own bundle (prefix "selfcheck-"). The
  // campaign guarantees no disagreement goes unlatched, so an empty
  // SelfChecks list really means the analyzer's prediction held on
  // every produced mutant.
  if (Config.RunAnalysis && !R.SelfChecks.empty())
    std::fprintf(stderr,
                 "** %zu analyzer self-check mismatch(es) -- the static "
                 "analyzer and the VM disagree **\n",
                 R.SelfChecks.size());
  if (!AnalysisDir.empty()) {
    size_t SelfIndex = 0;
    for (const SelfCheckReport &SC : R.SelfChecks) {
      const GeneratedClass &G = R.GenClasses[SC.GenIndex];
      Incident Inc;
      Inc.SelfCheck = true;
      Inc.MutantName = G.Name;
      Inc.MutantData = G.Data;
      Inc.Outcome = Tester.testClass(G.Name);
      Inc.Outcome.commitFlightEvents();
      for (const ProfileDesc &P : Tester.profiles()) {
        Inc.ProfileNames.push_back(P.Name);
        Inc.ProfileTiers.push_back(execTierName(P.Tier));
      }
      Inc.Prov = G.Prov;
      Inc.Env = EnvSpec;
      Inc.AnalysisJson = "{\"observed_phase\":" +
                         std::to_string(SC.ObservedPhase) +
                         ",\"observed\":\"" +
                         phaseCodeName(SC.ObservedPhase) +
                         "\",\"report\":" + SC.Report.toJson() + "}\n";
      auto Bundle = writeIncidentBundle(AnalysisDir, SelfIndex++, Inc);
      if (!Bundle)
        std::fprintf(stderr, "selfcheck: %s\n", Bundle.error().c_str());
      else
        std::fprintf(stderr, "selfcheck: wrote %s\n", Bundle->c_str());
    }
    std::printf("wrote %zu self-check bundles under %s\n", SelfIndex,
                AnalysisDir.c_str());
  }

  std::string Report =
      renderDiscrepancyReport(Tester.policies(), Records, Stats);
  std::string OutDir = A.get("out");
  if (OutDir.empty()) {
    std::fputs(Report.c_str(), stdout);
    return 0;
  }
  if (!writeFile(OutDir + "/report.md",
                 Bytes(Report.begin(), Report.end()))) {
    std::fprintf(stderr, "cannot write %s/report.md (does the directory "
                         "exist?)\n",
                 OutDir.c_str());
    return 1;
  }
  for (size_t I : DiscrepancyIndices) {
    const GeneratedClass &G = R.GenClasses[I];
    std::string Path = OutDir + "/" + G.Name + ".class";
    // Class names may carry package slashes; flatten for the filesystem.
    for (size_t P = OutDir.size() + 1; P < Path.size(); ++P)
      if (Path[P] == '/')
        Path[P] = '_';
    if (!writeFile(Path, G.Data))
      std::fprintf(stderr, "cannot write %s\n", Path.c_str());
  }
  std::printf("wrote %s/report.md and %zu discrepancy classfiles\n",
              OutDir.c_str(), DiscrepancyIndices.size());
  return 0;
}

/// `classfuzz replay BUNDLE_DIR`: re-derives the bundle's mutant from
/// lineage.json (rebuilding the seed corpus and class-name universe
/// from the recorded environment spec), byte-compares it against
/// mutant.class, and re-runs the differential test against the
/// recorded encoded sequence. Exit 0 iff both reproduce.
int cmdReplay(int Argc, char **Argv) {
  ArgParser A("classfuzz replay", "BUNDLE_DIR", withTelemetryFlags({}));
  int Exit = 0;
  if (!parseOrExit(A, Argc, Argv, Exit))
    return Exit;
  if (A.positional().empty()) {
    std::fputs(A.helpText().c_str(), stderr);
    return 2;
  }
  TelemetryCli Telem;
  if (!Telem.setup(A))
    return 1;
  const std::string Dir = A.positional()[0];

  auto Json = readFile(Dir + "/lineage.json");
  if (!Json) {
    std::fprintf(stderr, "%s\n", Json.error().c_str());
    return 1;
  }
  auto Parsed = parseLineageJson(std::string(Json->begin(), Json->end()));
  if (!Parsed) {
    std::fprintf(stderr, "%s\n", Parsed.error().c_str());
    return 1;
  }

  auto Seeds = rebuildSeedCorpus(Parsed->Spec);
  if (!Seeds) {
    std::fprintf(stderr, "cannot rebuild seed corpus: %s\n",
                 Seeds.error().c_str());
    return 1;
  }
  if (Parsed->Prov.RootSeedIndex >= Seeds->size()) {
    std::fprintf(stderr,
                 "root seed index %zu out of range (rebuilt %zu seeds); "
                 "environment mismatch?\n",
                 Parsed->Prov.RootSeedIndex, Seeds->size());
    return 1;
  }
  const SeedClass &Root = (*Seeds)[Parsed->Prov.RootSeedIndex];
  if (Root.Name != Parsed->Prov.RootSeedName) {
    std::fprintf(stderr,
                 "root seed %zu is %s, bundle recorded %s; environment "
                 "mismatch\n",
                 Parsed->Prov.RootSeedIndex, Root.Name.c_str(),
                 Parsed->Prov.RootSeedName.c_str());
    return 1;
  }

  // Typed steps (--typed-mutators campaigns) derive their hole lists
  // from the *base* environment -- reference runtime library + seed
  // corpus -- which the spec rebuilds exactly, so the provider below
  // re-derives every typed.* step's holes byte-for-byte. Cheap to set
  // up and invoked only for typed steps, so untyped bundles pay only
  // the environment copy.
  JvmPolicy ReplayRefPolicy = referenceJvmPolicy();
  if (!Parsed->Spec.ReferencePolicyName.empty())
    for (const JvmPolicy &P : allJvmPolicies())
      if (P.Name == Parsed->Spec.ReferencePolicyName)
        ReplayRefPolicy = P;
  ClassPath HoleBaseEnv = runtimeLibraryFor(ReplayRefPolicy);
  for (const SeedClass &Seed : *Seeds) {
    HoleBaseEnv.add(Seed.Name, Seed.Data);
    for (const auto &[Name, Data] : Seed.Helpers)
      HoleBaseEnv.add(Name, Data);
  }
  HoleBaseEnv.freeze();
  StaticAnalyzer HoleAnalyzer(HoleBaseEnv, ReplayRefPolicy);
  auto Replayed = replayLineage(Root.Data, Parsed->Prov.Steps,
                                rebuildKnownClasses(Parsed->Spec, *Seeds),
                                [&](const Bytes &Data) {
                                  return HoleAnalyzer.typedHolesFor("", Data);
                                });
  if (!Replayed) {
    std::fprintf(stderr, "replay failed: %s\n", Replayed.error().c_str());
    return 1;
  }
  std::printf("replayed %s: %zu mutation steps -> %zu bytes\n",
              Replayed->ClassName.c_str(), Parsed->Prov.Steps.size(),
              Replayed->Data.size());

  int Result = 0;
  if (auto Mutant = readFile(Dir + "/mutant.class")) {
    if (*Mutant == Replayed->Data) {
      std::printf("mutant.class reproduced byte-identically\n");
    } else {
      std::fprintf(stderr,
                   "** replayed bytes differ from mutant.class (%zu vs "
                   "%zu bytes) **\n",
                   Replayed->Data.size(), Mutant->size());
      Result = 1;
    }
  } else {
    std::fprintf(stderr, "note: no mutant.class in bundle; skipping byte "
                         "comparison\n");
  }

  // The campaign's mutants only reference the fixed class-name universe
  // (runtime library + seeds + helpers) plus their own ancestors, so
  // this overlay reproduces the original differential environment.
  ClassPath Extra;
  for (const SeedClass &Seed : *Seeds) {
    Extra.add(Seed.Name, Seed.Data);
    for (const auto &[Name, Data] : Seed.Helpers)
      Extra.add(Name, Data);
  }
  for (const auto &[Name, Data] : Replayed->Ancestors)
    Extra.add(Name, Data);
  Extra.add(Replayed->ClassName, Replayed->Data);
  // Pre-tier bundles carry no tier field; warn and fall back to the
  // threaded default rather than refusing the replay.
  ExecTier ReplayTier = ExecTier::Threaded;
  if (Parsed->Spec.TierName.empty()) {
    std::fprintf(stderr, "note: bundle records no execution tier; "
                         "replaying on threaded\n");
  } else if (auto T = parseExecTier(Parsed->Spec.TierName)) {
    ReplayTier = *T;
  } else {
    std::fprintf(stderr,
                 "note: bundle records unknown tier \"%s\"; replaying on "
                 "threaded\n",
                 Parsed->Spec.TierName.c_str());
  }
  auto Tester = DifferentialTester::withTieredProfiles(
      Extra, EnvironmentMode::PerJvm, ReplayTier, Parsed->Spec.TierDiff);
  DiffOutcome O = Tester.testClass(Replayed->ClassName);
  O.commitFlightEvents();
  std::printf("encoded \"%s\"%s\n", O.encodedString().c_str(),
              O.isDiscrepancy() ? "  ** DISCREPANCY **" : "");
  for (size_t I = 0; I != O.Results.size(); ++I)
    std::printf("  %-22s %s\n", Tester.policies()[I].Name.c_str(),
                O.Results[I].toString().c_str());
  if (!Parsed->ExpectedEncoded.empty()) {
    if (O.encodedString() == Parsed->ExpectedEncoded) {
      std::printf("differential outcome reproduced (expected \"%s\")\n",
                  Parsed->ExpectedEncoded.c_str());
    } else {
      std::fprintf(stderr,
                   "** outcome differs from bundle (expected \"%s\") **\n",
                   Parsed->ExpectedEncoded.c_str());
      Result = 1;
    }
  }
  return Result;
}

int cmdRun(int Argc, char **Argv) {
  ArgParser A("classfuzz run", "FILE.class",
              withTelemetryFlags(
                  {{"env", "JRE",
                    "shared runtime environment: jre5|jre7|jre8|jre9 "
                    "(default: per-JVM)",
                    ""},
                   {"tier", "T",
                    "execution tier: switch|threaded|baseline",
                    "threaded"}}));
  int Exit = 0;
  if (!parseOrExit(A, Argc, Argv, Exit))
    return Exit;
  if (A.positional().empty()) {
    std::fputs(A.helpText().c_str(), stderr);
    return 2;
  }
  TelemetryCli Telem;
  if (!Telem.setup(A))
    return 1;
  auto Data = readFile(A.positional()[0]);
  if (!Data) {
    std::fprintf(stderr, "%s\n", Data.error().c_str());
    return 1;
  }
  auto CF = parseClassFile(*Data);
  if (!CF) {
    std::fprintf(stderr, "parse error: %s\n", CF.error().c_str());
    return 1;
  }
  ClassPath Corpus;
  Corpus.add(CF->ThisClass, *Data);
  std::string Env = A.get("env");
  auto RunTier = parseExecTier(A.get("tier"));
  if (!RunTier) {
    std::fprintf(stderr,
                 "unknown --tier %s (expected switch|threaded|baseline)\n",
                 A.get("tier").c_str());
    return 2;
  }
  auto Tester = Env.empty()
                    ? DifferentialTester::withTieredProfiles(
                          Corpus, EnvironmentMode::PerJvm, *RunTier, false)
                    : DifferentialTester::withTieredProfiles(
                          Corpus, EnvironmentMode::Shared, *RunTier, false,
                          Env);
  DiffOutcome O = Tester.testClass(CF->ThisClass);
  O.commitFlightEvents();
  std::printf("encoded \"%s\"%s\n", O.encodedString().c_str(),
              O.isDiscrepancy() ? "  ** DISCREPANCY **" : "");
  for (size_t I = 0; I != O.Results.size(); ++I) {
    std::printf("  %-22s %s\n", Tester.policies()[I].Name.c_str(),
                O.Results[I].toString().c_str());
    for (const std::string &Line : O.Results[I].Output)
      std::printf("      > %s\n", Line.c_str());
  }
  return 0;
}

int cmdInspect(int Argc, char **Argv) {
  ArgParser A("classfuzz inspect", "FILE.class", {});
  int Exit = 0;
  if (!parseOrExit(A, Argc, Argv, Exit))
    return Exit;
  if (A.positional().empty()) {
    std::fputs(A.helpText().c_str(), stderr);
    return 2;
  }
  auto Data = readFile(A.positional()[0]);
  if (!Data) {
    std::fprintf(stderr, "%s\n", Data.error().c_str());
    return 1;
  }
  auto CF = parseClassFile(*Data);
  if (!CF) {
    std::fprintf(stderr, "parse error: %s\n", CF.error().c_str());
    return 1;
  }
  std::fputs(printClassFile(*CF).c_str(), stdout);
  auto J = lowerToJir(*CF);
  if (J)
    std::fputs(printJir(*J).c_str(), stdout);
  return 0;
}

int cmdReduce(int Argc, char **Argv) {
  ArgParser A("classfuzz reduce", "FILE.class",
              withTelemetryFlags(
                  {{"out", "FILE",
                    "output path (default: FILE.class.reduced)", ""},
                   {"reduce-jobs", "N",
                    "worker threads probing the oracle; reduced bytes "
                    "are identical across values",
                    "1"},
                   {"max-queries", "N", "oracle query budget", "10000"},
                   {"no-chunks", "",
                    "disable chunked HDD (one-element-at-a-time "
                    "baseline)",
                    ""}}));
  int Exit = 0;
  if (!parseOrExit(A, Argc, Argv, Exit))
    return Exit;
  if (A.positional().empty()) {
    std::fputs(A.helpText().c_str(), stderr);
    return 2;
  }
  TelemetryCli Telem;
  if (!Telem.setup(A))
    return 1;
  auto Data = readFile(A.positional()[0]);
  if (!Data) {
    std::fprintf(stderr, "%s\n", Data.error().c_str());
    return 1;
  }
  auto CF = parseClassFile(*Data);
  if (!CF) {
    std::fprintf(stderr, "parse error: %s\n", CF.error().c_str());
    return 1;
  }
  auto Tester = DifferentialTester::withAllProfiles(
      ClassPath(), EnvironmentMode::PerJvm);
  std::string Target =
      Tester.testClass(CF->ThisClass, *Data).encodedString();
  bool Constant = true;
  for (char C : Target)
    Constant &= C == Target[0];
  if (Constant) {
    std::fprintf(stderr,
                 "%s triggers no discrepancy (encoded \"%s\"); nothing "
                 "to preserve\n",
                 A.positional()[0].c_str(), Target.c_str());
    return 1;
  }
  std::printf("preserving discrepancy category \"%s\"\n", Target.c_str());
  ReductionOracle Oracle = [&](const std::string &Name,
                               const Bytes &Candidate) {
    return Tester.testClass(Name, Candidate).encodedString() == Target;
  };
  ReducerOptions Opts;
  Opts.Jobs =
      std::max<size_t>(1, static_cast<size_t>(A.getUnsigned("reduce-jobs")));
  Opts.MaxOracleQueries = static_cast<size_t>(A.getUnsigned("max-queries"));
  Opts.ChunkedHdd = !A.has("no-chunks");
  ReductionStats Stats;
  auto Reduced = reduceClassfile(*Data, Oracle, Opts, &Stats);
  if (!Reduced) {
    std::fprintf(stderr, "reduction failed: %s\n",
                 Reduced.error().c_str());
    return 1;
  }
  std::printf("reduced %zu -> %zu bytes (%zu oracle queries, %zu cache "
              "hits, %zu chunk deletions, %zu skipped pre-assembly%s)\n",
              Data->size(), Reduced->size(), Stats.OracleQueries,
              Stats.CacheHits, Stats.ChunkDeletionsKept,
              Stats.SkippedStructural + Stats.AssemblyFailures,
              Stats.BudgetExhausted ? ", budget exhausted" : "");
  std::string OutPath = A.has("out") ? A.get("out")
                                     : A.positional()[0] + ".reduced";
  if (!writeFile(OutPath, *Reduced)) {
    std::fprintf(stderr, "cannot write %s\n", OutPath.c_str());
    return 1;
  }
  std::printf("wrote %s\n", OutPath.c_str());
  return 0;
}

int cmdAnalyze(int Argc, char **Argv) {
  ArgParser A("classfuzz analyze", "FILE.class...",
              {{"print", "",
                "annotated javap-style output instead of JSON lines", ""},
               {"holes", "",
                "print the typed mutation holes (one JSON line per "
                "hole, sorted by location) instead of the analysis",
                ""},
               {"env", "JRE",
                "runtime library the analysis resolves against: "
                "jre5|jre7|jre8|jre9 (default: the reference JVM's, jre9)",
                ""}});
  int Exit = 0;
  if (!parseOrExit(A, Argc, Argv, Exit))
    return Exit;
  if (A.positional().empty()) {
    std::fputs(A.helpText().c_str(), stderr);
    return 2;
  }

  JvmPolicy Policy = referenceJvmPolicy();
  ClassPath Env = A.has("env") ? buildRuntimeLibrary(A.get("env"))
                               : runtimeLibraryFor(Policy);

  // Read and name every input up front and register all of them in the
  // environment before analyzing any: inputs may reference each other,
  // and the analyzer should see the same world for each class
  // regardless of argument order.
  struct Input {
    std::string Path;
    std::string Name;
    Bytes Data;
  };
  std::vector<Input> Inputs;
  for (const std::string &Path : A.positional()) {
    auto Data = readFile(Path);
    if (!Data) {
      std::fprintf(stderr, "%s\n", Data.error().c_str());
      return 1;
    }
    std::string Name;
    if (auto CF = parseClassFile(*Data))
      Name = CF->ThisClass;
    else
      Name = std::filesystem::path(Path).stem().string();
    Inputs.push_back({Path, Name, std::move(*Data)});
  }
  for (const Input &In : Inputs)
    Env.add(In.Name, In.Data);
  Env.freeze();

  StaticAnalyzer Analyzer(Env, Policy);
  int Ret = 0;
  for (const Input &In : Inputs) {
    if (A.has("holes")) {
      // The inputs are environment classes (registered above), so the
      // memoized extraction path serves them -- the same one campaign
      // seeds go through.
      std::fputs(holesToJsonl(In.Name, Analyzer.typedHoles(In.Name)).c_str(),
                 stdout);
      continue;
    }
    AnalysisReport Report = Analyzer.analyzeClass(In.Name, In.Data);
    if (A.has("print"))
      std::fputs(Analyzer.renderAnnotated(Report, In.Data).c_str(), stdout);
    else
      std::printf("%s\n", Report.toJson().c_str());
    if (Report.errorCount())
      Ret = 1;
  }
  return Ret;
}

int cmdSeeds(int Argc, char **Argv) {
  ArgParser A("classfuzz seeds", "",
              {{"out", "DIR", "directory to write the .class files into",
                ""},
               {"seeds", "N", "seed-corpus size", "8"},
               {"corpus-scale", "N",
                "multiply the corpus by N (each generator-table round "
                "sweeps a different structural shape)",
                "1"},
               {"rng", "N", "corpus RNG seed", "1"}});
  int Exit = 0;
  if (!parseOrExit(A, Argc, Argv, Exit))
    return Exit;
  if (!A.has("out")) {
    std::fputs(A.helpText().c_str(), stderr);
    return 2;
  }
  std::string Dir = A.get("out");
  std::error_code Ec;
  std::filesystem::create_directories(Dir, Ec);
  if (Ec) {
    std::fprintf(stderr, "cannot create %s: %s\n", Dir.c_str(),
                 Ec.message().c_str());
    return 1;
  }
  Rng R(A.getUnsigned("rng"));
  const size_t SeedScale =
      std::max<size_t>(1, static_cast<size_t>(A.getUnsigned("corpus-scale")));
  auto Seeds = generateSeedCorpus(
      R, static_cast<size_t>(A.getUnsigned("seeds")) * SeedScale);
  size_t Written = 0;
  auto Dump = [&](const std::string &Name, const Bytes &Data) {
    // Seed names contain no '/', but keep the mapping safe anyway.
    std::string File = Name;
    std::replace(File.begin(), File.end(), '/', '.');
    std::string Path = Dir + "/" + File + ".class";
    if (!writeFile(Path, Data)) {
      std::fprintf(stderr, "cannot write %s\n", Path.c_str());
      return false;
    }
    ++Written;
    return true;
  };
  for (const SeedClass &S : Seeds) {
    if (!Dump(S.Name, S.Data))
      return 1;
    for (const auto &[Name, Data] : S.Helpers)
      if (!Dump(Name, Data))
        return 1;
  }
  std::printf("wrote %zu classfiles (%zu seeds) under %s\n", Written,
              Seeds.size(), Dir.c_str());
  return 0;
}

/// `classfuzz report TIMESERIES.jsonl`: renders the campaign's
/// observability artifacts into a self-contained single-file HTML
/// report, or (with --progress-dash) tails the time series as a live
/// terminal dashboard until its "final" row lands.
int cmdReport(int Argc, char **Argv) {
  ArgParser A(
      "classfuzz report", "TIMESERIES.jsonl",
      {{"stats", "FILE",
        "--stats-json snapshot feeding the headline numbers and the "
        "mutator x phase heat grid",
        ""},
       {"frontier", "FILE",
        "frontier census JSONL feeding the rare-branch table", ""},
       {"out", "FILE", "HTML output path (\"-\" = stdout)",
        "report.html"},
       {"title", "T", "report title", ""},
       {"progress-dash", "",
        "live terminal dashboard instead of HTML: re-render every "
        "--interval seconds until the series' final row lands",
        ""},
       {"interval", "SECONDS", "refresh period for --progress-dash",
        "1"},
       {"once", "",
        "with --progress-dash, render a single frame and exit", ""}});
  int Exit = 0;
  if (!parseOrExit(A, Argc, Argv, Exit))
    return Exit;
  if (A.positional().empty()) {
    std::fputs(A.helpText().c_str(), stderr);
    return 2;
  }
  const std::string TsPath = A.positional()[0];

  if (A.has("progress-dash")) {
    const bool Once = A.has("once");
    const double Interval = std::max(0.1, A.getDouble("interval"));
    for (;;) {
      auto Data = readFile(TsPath);
      Result<telemetry::TimeSeriesData> Ts =
          Data ? telemetry::parseTimeSeries(
                     std::string(Data->begin(), Data->end()))
               : makeError(Data.error());
      // Home + clear per frame; the frame itself carries no cursor
      // control, so --once output pipes cleanly.
      if (!Once)
        std::printf("\x1b[H\x1b[2J");
      std::printf("%s", Ts ? telemetry::renderProgressDash(*Ts).c_str()
                           : ("waiting for " + TsPath + "...\n").c_str());
      std::fflush(stdout);
      if (Once || (Ts && Ts->SawFinal))
        return 0;
      std::this_thread::sleep_for(std::chrono::duration<double>(Interval));
    }
  }

  auto Data = readFile(TsPath);
  if (!Data) {
    std::fprintf(stderr, "%s\n", Data.error().c_str());
    return 1;
  }
  auto Ts =
      telemetry::parseTimeSeries(std::string(Data->begin(), Data->end()));
  if (!Ts) {
    std::fprintf(stderr, "%s: %s\n", TsPath.c_str(), Ts.error().c_str());
    return 1;
  }
  telemetry::ReportInputs Inputs;
  Inputs.Ts = Ts.take();
  if (A.has("title"))
    Inputs.Title = A.get("title");
  if (A.has("stats")) {
    auto Raw = readFile(A.get("stats"));
    if (!Raw) {
      std::fprintf(stderr, "%s\n", Raw.error().c_str());
      return 1;
    }
    auto Stats = json::parse(std::string(Raw->begin(), Raw->end()));
    if (!Stats) {
      std::fprintf(stderr, "%s: %s\n", A.get("stats").c_str(),
                   Stats.error().c_str());
      return 1;
    }
    Inputs.Stats = Stats.take();
  }
  if (A.has("frontier")) {
    auto Raw = readFile(A.get("frontier"));
    if (!Raw) {
      std::fprintf(stderr, "%s\n", Raw.error().c_str());
      return 1;
    }
    auto Census = telemetry::parseFrontierCensus(
        std::string(Raw->begin(), Raw->end()));
    if (!Census) {
      std::fprintf(stderr, "%s: %s\n", A.get("frontier").c_str(),
                   Census.error().c_str());
      return 1;
    }
    Inputs.Frontier = Census.take();
  }
  const std::string Html = telemetry::renderHtmlReport(Inputs);
  const std::string OutPath = A.get("out");
  if (OutPath == "-") {
    std::fputs(Html.c_str(), stdout);
    return 0;
  }
  if (!writeFile(OutPath, Bytes(Html.begin(), Html.end()))) {
    std::fprintf(stderr, "cannot write %s\n", OutPath.c_str());
    return 1;
  }
  std::printf("wrote %s (%zu bytes)\n", OutPath.c_str(), Html.size());
  return 0;
}

int cmdMutators(int Argc, char **Argv) {
  ArgParser A("classfuzz mutators", "", {});
  int Exit = 0;
  if (!parseOrExit(A, Argc, Argv, Exit))
    return Exit;
  std::printf("%zu mutators (%s):\n\n", mutatorRegistry().size(),
              "123 syntactic + 6 statement-level");
  for (const Mutator &Mu : mutatorRegistry())
    std::printf("%-34s %-14s %s\n", Mu.Id.c_str(), Mu.Category.c_str(),
                Mu.Description.c_str());
  const std::vector<Mutator> &Ext = extendedMutatorRegistry();
  std::printf("\n%zu typed mutators (--typed-mutators; analyzer-driven, "
              "hole-directed):\n\n",
              Ext.size() - mutatorRegistry().size());
  for (size_t I = mutatorRegistry().size(); I != Ext.size(); ++I)
    std::printf("%-34s %-14s %s\n", Ext[I].Id.c_str(),
                Ext[I].Category.c_str(), Ext[I].Description.c_str());
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage(stderr);
  std::string Cmd = Argv[1];
  if (Cmd == "--help" || Cmd == "-h" || Cmd == "help")
    return usage(stdout);
  if (Cmd == "fuzz")
    return cmdFuzz(Argc, Argv);
  if (Cmd == "replay")
    return cmdReplay(Argc, Argv);
  if (Cmd == "run")
    return cmdRun(Argc, Argv);
  if (Cmd == "inspect")
    return cmdInspect(Argc, Argv);
  if (Cmd == "analyze")
    return cmdAnalyze(Argc, Argv);
  if (Cmd == "reduce")
    return cmdReduce(Argc, Argv);
  if (Cmd == "seeds")
    return cmdSeeds(Argc, Argv);
  if (Cmd == "mutators")
    return cmdMutators(Argc, Argv);
  if (Cmd == "report")
    return cmdReport(Argc, Argv);
  std::fprintf(stderr, "classfuzz: unknown command '%s'\n", Cmd.c_str());
  return usage(stderr);
}
