# Empty dependencies file for bench_table5_mutators.
# This may be replaced when dependencies are built.
