file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_mutators.dir/bench_table5_mutators.cpp.o"
  "CMakeFiles/bench_table5_mutators.dir/bench_table5_mutators.cpp.o.d"
  "bench_table5_mutators"
  "bench_table5_mutators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_mutators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
