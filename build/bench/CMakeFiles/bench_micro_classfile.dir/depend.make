# Empty dependencies file for bench_micro_classfile.
# This may be replaced when dependencies are built.
