file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_classfile.dir/bench_micro_classfile.cpp.o"
  "CMakeFiles/bench_micro_classfile.dir/bench_micro_classfile.cpp.o.d"
  "bench_micro_classfile"
  "bench_micro_classfile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_classfile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
