# Empty dependencies file for bench_table7_phases.
# This may be replaced when dependencies are built.
