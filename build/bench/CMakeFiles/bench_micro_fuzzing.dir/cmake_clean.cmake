file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_fuzzing.dir/bench_micro_fuzzing.cpp.o"
  "CMakeFiles/bench_micro_fuzzing.dir/bench_micro_fuzzing.cpp.o.d"
  "bench_micro_fuzzing"
  "bench_micro_fuzzing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_fuzzing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
