# Empty dependencies file for bench_micro_fuzzing.
# This may be replaced when dependencies are built.
