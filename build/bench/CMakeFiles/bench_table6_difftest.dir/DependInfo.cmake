
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table6_difftest.cpp" "bench/CMakeFiles/bench_table6_difftest.dir/bench_table6_difftest.cpp.o" "gcc" "bench/CMakeFiles/bench_table6_difftest.dir/bench_table6_difftest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/reducer/CMakeFiles/cf_reducer.dir/DependInfo.cmake"
  "/root/repo/build/src/difftest/CMakeFiles/cf_difftest.dir/DependInfo.cmake"
  "/root/repo/build/src/fuzzing/CMakeFiles/cf_fuzzing.dir/DependInfo.cmake"
  "/root/repo/build/src/mcmc/CMakeFiles/cf_mcmc.dir/DependInfo.cmake"
  "/root/repo/build/src/mutation/CMakeFiles/cf_mutation.dir/DependInfo.cmake"
  "/root/repo/build/src/jir/CMakeFiles/cf_jir.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/cf_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/jvm/CMakeFiles/cf_jvm.dir/DependInfo.cmake"
  "/root/repo/build/src/coverage/CMakeFiles/cf_coverage.dir/DependInfo.cmake"
  "/root/repo/build/src/classfile/CMakeFiles/cf_classfile.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/cf_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
