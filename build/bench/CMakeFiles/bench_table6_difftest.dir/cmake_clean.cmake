file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_difftest.dir/bench_table6_difftest.cpp.o"
  "CMakeFiles/bench_table6_difftest.dir/bench_table6_difftest.cpp.o.d"
  "bench_table6_difftest"
  "bench_table6_difftest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_difftest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
