# Empty dependencies file for bench_micro_jvm.
# This may be replaced when dependencies are built.
