file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_jvm.dir/bench_micro_jvm.cpp.o"
  "CMakeFiles/bench_micro_jvm.dir/bench_micro_jvm.cpp.o.d"
  "bench_micro_jvm"
  "bench_micro_jvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_jvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
