# Empty dependencies file for cf_jir.
# This may be replaced when dependencies are built.
