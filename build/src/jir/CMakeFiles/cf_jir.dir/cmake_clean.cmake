file(REMOVE_RECURSE
  "CMakeFiles/cf_jir.dir/Jir.cpp.o"
  "CMakeFiles/cf_jir.dir/Jir.cpp.o.d"
  "libcf_jir.a"
  "libcf_jir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cf_jir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
