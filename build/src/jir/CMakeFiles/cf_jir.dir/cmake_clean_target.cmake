file(REMOVE_RECURSE
  "libcf_jir.a"
)
