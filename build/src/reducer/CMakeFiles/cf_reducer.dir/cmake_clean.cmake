file(REMOVE_RECURSE
  "CMakeFiles/cf_reducer.dir/Reducer.cpp.o"
  "CMakeFiles/cf_reducer.dir/Reducer.cpp.o.d"
  "libcf_reducer.a"
  "libcf_reducer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cf_reducer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
