file(REMOVE_RECURSE
  "libcf_reducer.a"
)
