# Empty compiler generated dependencies file for cf_reducer.
# This may be replaced when dependencies are built.
