
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/reducer/Reducer.cpp" "src/reducer/CMakeFiles/cf_reducer.dir/Reducer.cpp.o" "gcc" "src/reducer/CMakeFiles/cf_reducer.dir/Reducer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/jir/CMakeFiles/cf_jir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/cf_support.dir/DependInfo.cmake"
  "/root/repo/build/src/classfile/CMakeFiles/cf_classfile.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
