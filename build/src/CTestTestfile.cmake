# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("classfile")
subdirs("jir")
subdirs("runtime")
subdirs("jvm")
subdirs("coverage")
subdirs("mutation")
subdirs("mcmc")
subdirs("fuzzing")
subdirs("difftest")
subdirs("reducer")
