file(REMOVE_RECURSE
  "libcf_runtime.a"
)
