
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/RuntimeLib.cpp" "src/runtime/CMakeFiles/cf_runtime.dir/RuntimeLib.cpp.o" "gcc" "src/runtime/CMakeFiles/cf_runtime.dir/RuntimeLib.cpp.o.d"
  "/root/repo/src/runtime/SeedCorpus.cpp" "src/runtime/CMakeFiles/cf_runtime.dir/SeedCorpus.cpp.o" "gcc" "src/runtime/CMakeFiles/cf_runtime.dir/SeedCorpus.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/classfile/CMakeFiles/cf_classfile.dir/DependInfo.cmake"
  "/root/repo/build/src/jvm/CMakeFiles/cf_jvm.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/cf_support.dir/DependInfo.cmake"
  "/root/repo/build/src/coverage/CMakeFiles/cf_coverage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
