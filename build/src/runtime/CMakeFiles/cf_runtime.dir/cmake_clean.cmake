file(REMOVE_RECURSE
  "CMakeFiles/cf_runtime.dir/RuntimeLib.cpp.o"
  "CMakeFiles/cf_runtime.dir/RuntimeLib.cpp.o.d"
  "CMakeFiles/cf_runtime.dir/SeedCorpus.cpp.o"
  "CMakeFiles/cf_runtime.dir/SeedCorpus.cpp.o.d"
  "libcf_runtime.a"
  "libcf_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cf_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
