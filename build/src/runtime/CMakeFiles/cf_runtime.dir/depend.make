# Empty dependencies file for cf_runtime.
# This may be replaced when dependencies are built.
