file(REMOVE_RECURSE
  "libcf_mutation.a"
)
