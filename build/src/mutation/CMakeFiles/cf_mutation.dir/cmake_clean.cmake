file(REMOVE_RECURSE
  "CMakeFiles/cf_mutation.dir/Engine.cpp.o"
  "CMakeFiles/cf_mutation.dir/Engine.cpp.o.d"
  "CMakeFiles/cf_mutation.dir/Mutators.cpp.o"
  "CMakeFiles/cf_mutation.dir/Mutators.cpp.o.d"
  "libcf_mutation.a"
  "libcf_mutation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cf_mutation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
