# Empty compiler generated dependencies file for cf_mutation.
# This may be replaced when dependencies are built.
