file(REMOVE_RECURSE
  "CMakeFiles/cf_support.dir/ByteBuffer.cpp.o"
  "CMakeFiles/cf_support.dir/ByteBuffer.cpp.o.d"
  "CMakeFiles/cf_support.dir/Rng.cpp.o"
  "CMakeFiles/cf_support.dir/Rng.cpp.o.d"
  "libcf_support.a"
  "libcf_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cf_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
