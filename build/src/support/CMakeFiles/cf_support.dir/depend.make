# Empty dependencies file for cf_support.
# This may be replaced when dependencies are built.
