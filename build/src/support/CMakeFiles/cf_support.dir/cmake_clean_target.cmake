file(REMOVE_RECURSE
  "libcf_support.a"
)
