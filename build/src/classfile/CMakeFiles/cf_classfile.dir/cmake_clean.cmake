file(REMOVE_RECURSE
  "CMakeFiles/cf_classfile.dir/AccessFlags.cpp.o"
  "CMakeFiles/cf_classfile.dir/AccessFlags.cpp.o.d"
  "CMakeFiles/cf_classfile.dir/ClassFile.cpp.o"
  "CMakeFiles/cf_classfile.dir/ClassFile.cpp.o.d"
  "CMakeFiles/cf_classfile.dir/ClassReader.cpp.o"
  "CMakeFiles/cf_classfile.dir/ClassReader.cpp.o.d"
  "CMakeFiles/cf_classfile.dir/ClassWriter.cpp.o"
  "CMakeFiles/cf_classfile.dir/ClassWriter.cpp.o.d"
  "CMakeFiles/cf_classfile.dir/CodeBuilder.cpp.o"
  "CMakeFiles/cf_classfile.dir/CodeBuilder.cpp.o.d"
  "CMakeFiles/cf_classfile.dir/ConstantPool.cpp.o"
  "CMakeFiles/cf_classfile.dir/ConstantPool.cpp.o.d"
  "CMakeFiles/cf_classfile.dir/Descriptor.cpp.o"
  "CMakeFiles/cf_classfile.dir/Descriptor.cpp.o.d"
  "CMakeFiles/cf_classfile.dir/Opcodes.cpp.o"
  "CMakeFiles/cf_classfile.dir/Opcodes.cpp.o.d"
  "CMakeFiles/cf_classfile.dir/Printer.cpp.o"
  "CMakeFiles/cf_classfile.dir/Printer.cpp.o.d"
  "libcf_classfile.a"
  "libcf_classfile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cf_classfile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
