
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/classfile/AccessFlags.cpp" "src/classfile/CMakeFiles/cf_classfile.dir/AccessFlags.cpp.o" "gcc" "src/classfile/CMakeFiles/cf_classfile.dir/AccessFlags.cpp.o.d"
  "/root/repo/src/classfile/ClassFile.cpp" "src/classfile/CMakeFiles/cf_classfile.dir/ClassFile.cpp.o" "gcc" "src/classfile/CMakeFiles/cf_classfile.dir/ClassFile.cpp.o.d"
  "/root/repo/src/classfile/ClassReader.cpp" "src/classfile/CMakeFiles/cf_classfile.dir/ClassReader.cpp.o" "gcc" "src/classfile/CMakeFiles/cf_classfile.dir/ClassReader.cpp.o.d"
  "/root/repo/src/classfile/ClassWriter.cpp" "src/classfile/CMakeFiles/cf_classfile.dir/ClassWriter.cpp.o" "gcc" "src/classfile/CMakeFiles/cf_classfile.dir/ClassWriter.cpp.o.d"
  "/root/repo/src/classfile/CodeBuilder.cpp" "src/classfile/CMakeFiles/cf_classfile.dir/CodeBuilder.cpp.o" "gcc" "src/classfile/CMakeFiles/cf_classfile.dir/CodeBuilder.cpp.o.d"
  "/root/repo/src/classfile/ConstantPool.cpp" "src/classfile/CMakeFiles/cf_classfile.dir/ConstantPool.cpp.o" "gcc" "src/classfile/CMakeFiles/cf_classfile.dir/ConstantPool.cpp.o.d"
  "/root/repo/src/classfile/Descriptor.cpp" "src/classfile/CMakeFiles/cf_classfile.dir/Descriptor.cpp.o" "gcc" "src/classfile/CMakeFiles/cf_classfile.dir/Descriptor.cpp.o.d"
  "/root/repo/src/classfile/Opcodes.cpp" "src/classfile/CMakeFiles/cf_classfile.dir/Opcodes.cpp.o" "gcc" "src/classfile/CMakeFiles/cf_classfile.dir/Opcodes.cpp.o.d"
  "/root/repo/src/classfile/Printer.cpp" "src/classfile/CMakeFiles/cf_classfile.dir/Printer.cpp.o" "gcc" "src/classfile/CMakeFiles/cf_classfile.dir/Printer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/cf_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
