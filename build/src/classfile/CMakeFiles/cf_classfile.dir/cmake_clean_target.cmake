file(REMOVE_RECURSE
  "libcf_classfile.a"
)
