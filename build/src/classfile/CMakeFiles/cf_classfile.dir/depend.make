# Empty dependencies file for cf_classfile.
# This may be replaced when dependencies are built.
