file(REMOVE_RECURSE
  "libcf_jvm.a"
)
