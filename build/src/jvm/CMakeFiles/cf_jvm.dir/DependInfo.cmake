
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/jvm/ClassPath.cpp" "src/jvm/CMakeFiles/cf_jvm.dir/ClassPath.cpp.o" "gcc" "src/jvm/CMakeFiles/cf_jvm.dir/ClassPath.cpp.o.d"
  "/root/repo/src/jvm/FormatChecker.cpp" "src/jvm/CMakeFiles/cf_jvm.dir/FormatChecker.cpp.o" "gcc" "src/jvm/CMakeFiles/cf_jvm.dir/FormatChecker.cpp.o.d"
  "/root/repo/src/jvm/Interp.cpp" "src/jvm/CMakeFiles/cf_jvm.dir/Interp.cpp.o" "gcc" "src/jvm/CMakeFiles/cf_jvm.dir/Interp.cpp.o.d"
  "/root/repo/src/jvm/JvmTypes.cpp" "src/jvm/CMakeFiles/cf_jvm.dir/JvmTypes.cpp.o" "gcc" "src/jvm/CMakeFiles/cf_jvm.dir/JvmTypes.cpp.o.d"
  "/root/repo/src/jvm/Policy.cpp" "src/jvm/CMakeFiles/cf_jvm.dir/Policy.cpp.o" "gcc" "src/jvm/CMakeFiles/cf_jvm.dir/Policy.cpp.o.d"
  "/root/repo/src/jvm/Verifier.cpp" "src/jvm/CMakeFiles/cf_jvm.dir/Verifier.cpp.o" "gcc" "src/jvm/CMakeFiles/cf_jvm.dir/Verifier.cpp.o.d"
  "/root/repo/src/jvm/Vm.cpp" "src/jvm/CMakeFiles/cf_jvm.dir/Vm.cpp.o" "gcc" "src/jvm/CMakeFiles/cf_jvm.dir/Vm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/classfile/CMakeFiles/cf_classfile.dir/DependInfo.cmake"
  "/root/repo/build/src/coverage/CMakeFiles/cf_coverage.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/cf_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
