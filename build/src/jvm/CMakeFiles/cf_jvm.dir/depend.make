# Empty dependencies file for cf_jvm.
# This may be replaced when dependencies are built.
