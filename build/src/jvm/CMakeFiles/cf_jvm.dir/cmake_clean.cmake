file(REMOVE_RECURSE
  "CMakeFiles/cf_jvm.dir/ClassPath.cpp.o"
  "CMakeFiles/cf_jvm.dir/ClassPath.cpp.o.d"
  "CMakeFiles/cf_jvm.dir/FormatChecker.cpp.o"
  "CMakeFiles/cf_jvm.dir/FormatChecker.cpp.o.d"
  "CMakeFiles/cf_jvm.dir/Interp.cpp.o"
  "CMakeFiles/cf_jvm.dir/Interp.cpp.o.d"
  "CMakeFiles/cf_jvm.dir/JvmTypes.cpp.o"
  "CMakeFiles/cf_jvm.dir/JvmTypes.cpp.o.d"
  "CMakeFiles/cf_jvm.dir/Policy.cpp.o"
  "CMakeFiles/cf_jvm.dir/Policy.cpp.o.d"
  "CMakeFiles/cf_jvm.dir/Verifier.cpp.o"
  "CMakeFiles/cf_jvm.dir/Verifier.cpp.o.d"
  "CMakeFiles/cf_jvm.dir/Vm.cpp.o"
  "CMakeFiles/cf_jvm.dir/Vm.cpp.o.d"
  "libcf_jvm.a"
  "libcf_jvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cf_jvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
