# Empty compiler generated dependencies file for cf_coverage.
# This may be replaced when dependencies are built.
