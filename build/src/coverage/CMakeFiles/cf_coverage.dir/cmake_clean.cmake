file(REMOVE_RECURSE
  "CMakeFiles/cf_coverage.dir/Tracefile.cpp.o"
  "CMakeFiles/cf_coverage.dir/Tracefile.cpp.o.d"
  "CMakeFiles/cf_coverage.dir/Uniqueness.cpp.o"
  "CMakeFiles/cf_coverage.dir/Uniqueness.cpp.o.d"
  "libcf_coverage.a"
  "libcf_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cf_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
