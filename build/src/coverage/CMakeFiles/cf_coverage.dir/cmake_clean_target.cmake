file(REMOVE_RECURSE
  "libcf_coverage.a"
)
