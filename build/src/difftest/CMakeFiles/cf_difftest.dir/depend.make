# Empty dependencies file for cf_difftest.
# This may be replaced when dependencies are built.
