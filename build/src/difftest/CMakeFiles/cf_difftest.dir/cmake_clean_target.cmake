file(REMOVE_RECURSE
  "libcf_difftest.a"
)
