file(REMOVE_RECURSE
  "CMakeFiles/cf_difftest.dir/DiffTest.cpp.o"
  "CMakeFiles/cf_difftest.dir/DiffTest.cpp.o.d"
  "CMakeFiles/cf_difftest.dir/Report.cpp.o"
  "CMakeFiles/cf_difftest.dir/Report.cpp.o.d"
  "libcf_difftest.a"
  "libcf_difftest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cf_difftest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
