# Empty dependencies file for cf_mcmc.
# This may be replaced when dependencies are built.
