file(REMOVE_RECURSE
  "CMakeFiles/cf_mcmc.dir/McmcSelector.cpp.o"
  "CMakeFiles/cf_mcmc.dir/McmcSelector.cpp.o.d"
  "libcf_mcmc.a"
  "libcf_mcmc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cf_mcmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
