file(REMOVE_RECURSE
  "libcf_mcmc.a"
)
