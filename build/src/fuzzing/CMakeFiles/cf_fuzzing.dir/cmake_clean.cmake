file(REMOVE_RECURSE
  "CMakeFiles/cf_fuzzing.dir/Campaign.cpp.o"
  "CMakeFiles/cf_fuzzing.dir/Campaign.cpp.o.d"
  "libcf_fuzzing.a"
  "libcf_fuzzing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cf_fuzzing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
