# Empty compiler generated dependencies file for cf_fuzzing.
# This may be replaced when dependencies are built.
