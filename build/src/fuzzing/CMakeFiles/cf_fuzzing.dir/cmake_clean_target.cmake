file(REMOVE_RECURSE
  "libcf_fuzzing.a"
)
