file(REMOVE_RECURSE
  "CMakeFiles/fuzzing_test.dir/fuzzing/campaign_test.cpp.o"
  "CMakeFiles/fuzzing_test.dir/fuzzing/campaign_test.cpp.o.d"
  "CMakeFiles/fuzzing_test.dir/fuzzing/integration_test.cpp.o"
  "CMakeFiles/fuzzing_test.dir/fuzzing/integration_test.cpp.o.d"
  "CMakeFiles/fuzzing_test.dir/fuzzing/property_test.cpp.o"
  "CMakeFiles/fuzzing_test.dir/fuzzing/property_test.cpp.o.d"
  "fuzzing_test"
  "fuzzing_test.pdb"
  "fuzzing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzzing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
