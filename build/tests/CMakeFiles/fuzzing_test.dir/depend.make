# Empty dependencies file for fuzzing_test.
# This may be replaced when dependencies are built.
