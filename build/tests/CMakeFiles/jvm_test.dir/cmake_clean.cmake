file(REMOVE_RECURSE
  "CMakeFiles/jvm_test.dir/jvm/access_test.cpp.o"
  "CMakeFiles/jvm_test.dir/jvm/access_test.cpp.o.d"
  "CMakeFiles/jvm_test.dir/jvm/encoding_test.cpp.o"
  "CMakeFiles/jvm_test.dir/jvm/encoding_test.cpp.o.d"
  "CMakeFiles/jvm_test.dir/jvm/flagsweep_test.cpp.o"
  "CMakeFiles/jvm_test.dir/jvm/flagsweep_test.cpp.o.d"
  "CMakeFiles/jvm_test.dir/jvm/formatchecker_test.cpp.o"
  "CMakeFiles/jvm_test.dir/jvm/formatchecker_test.cpp.o.d"
  "CMakeFiles/jvm_test.dir/jvm/interp_test.cpp.o"
  "CMakeFiles/jvm_test.dir/jvm/interp_test.cpp.o.d"
  "CMakeFiles/jvm_test.dir/jvm/natives_test.cpp.o"
  "CMakeFiles/jvm_test.dir/jvm/natives_test.cpp.o.d"
  "CMakeFiles/jvm_test.dir/jvm/opcode_sweep_test.cpp.o"
  "CMakeFiles/jvm_test.dir/jvm/opcode_sweep_test.cpp.o.d"
  "CMakeFiles/jvm_test.dir/jvm/pipeline_test.cpp.o"
  "CMakeFiles/jvm_test.dir/jvm/pipeline_test.cpp.o.d"
  "CMakeFiles/jvm_test.dir/jvm/policy_test.cpp.o"
  "CMakeFiles/jvm_test.dir/jvm/policy_test.cpp.o.d"
  "CMakeFiles/jvm_test.dir/jvm/preverifier_test.cpp.o"
  "CMakeFiles/jvm_test.dir/jvm/preverifier_test.cpp.o.d"
  "CMakeFiles/jvm_test.dir/jvm/verifier_test.cpp.o"
  "CMakeFiles/jvm_test.dir/jvm/verifier_test.cpp.o.d"
  "jvm_test"
  "jvm_test.pdb"
  "jvm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jvm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
