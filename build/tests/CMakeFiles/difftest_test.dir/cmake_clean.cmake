file(REMOVE_RECURSE
  "CMakeFiles/difftest_test.dir/difftest/difftest_test.cpp.o"
  "CMakeFiles/difftest_test.dir/difftest/difftest_test.cpp.o.d"
  "CMakeFiles/difftest_test.dir/difftest/report_test.cpp.o"
  "CMakeFiles/difftest_test.dir/difftest/report_test.cpp.o.d"
  "difftest_test"
  "difftest_test.pdb"
  "difftest_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/difftest_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
