file(REMOVE_RECURSE
  "CMakeFiles/classfile_test.dir/classfile/accessflags_test.cpp.o"
  "CMakeFiles/classfile_test.dir/classfile/accessflags_test.cpp.o.d"
  "CMakeFiles/classfile_test.dir/classfile/codebuilder_test.cpp.o"
  "CMakeFiles/classfile_test.dir/classfile/codebuilder_test.cpp.o.d"
  "CMakeFiles/classfile_test.dir/classfile/constantpool_test.cpp.o"
  "CMakeFiles/classfile_test.dir/classfile/constantpool_test.cpp.o.d"
  "CMakeFiles/classfile_test.dir/classfile/descriptor_test.cpp.o"
  "CMakeFiles/classfile_test.dir/classfile/descriptor_test.cpp.o.d"
  "CMakeFiles/classfile_test.dir/classfile/opcodes_test.cpp.o"
  "CMakeFiles/classfile_test.dir/classfile/opcodes_test.cpp.o.d"
  "CMakeFiles/classfile_test.dir/classfile/roundtrip_test.cpp.o"
  "CMakeFiles/classfile_test.dir/classfile/roundtrip_test.cpp.o.d"
  "classfile_test"
  "classfile_test.pdb"
  "classfile_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/classfile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
