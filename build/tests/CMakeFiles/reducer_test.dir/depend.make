# Empty dependencies file for reducer_test.
# This may be replaced when dependencies are built.
