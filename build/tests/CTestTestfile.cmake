# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/classfile_test[1]_include.cmake")
include("/root/repo/build/tests/coverage_test[1]_include.cmake")
include("/root/repo/build/tests/jvm_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/jir_test[1]_include.cmake")
include("/root/repo/build/tests/mutation_test[1]_include.cmake")
include("/root/repo/build/tests/mcmc_test[1]_include.cmake")
include("/root/repo/build/tests/fuzzing_test[1]_include.cmake")
include("/root/repo/build/tests/difftest_test[1]_include.cmake")
include("/root/repo/build/tests/reducer_test[1]_include.cmake")
