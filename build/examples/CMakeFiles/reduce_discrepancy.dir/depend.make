# Empty dependencies file for reduce_discrepancy.
# This may be replaced when dependencies are built.
