file(REMOVE_RECURSE
  "CMakeFiles/reduce_discrepancy.dir/reduce_discrepancy.cpp.o"
  "CMakeFiles/reduce_discrepancy.dir/reduce_discrepancy.cpp.o.d"
  "reduce_discrepancy"
  "reduce_discrepancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reduce_discrepancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
