file(REMOVE_RECURSE
  "CMakeFiles/discrepancy_gallery.dir/discrepancy_gallery.cpp.o"
  "CMakeFiles/discrepancy_gallery.dir/discrepancy_gallery.cpp.o.d"
  "discrepancy_gallery"
  "discrepancy_gallery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discrepancy_gallery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
