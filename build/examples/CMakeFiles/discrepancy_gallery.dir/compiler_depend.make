# Empty compiler generated dependencies file for discrepancy_gallery.
# This may be replaced when dependencies are built.
