# Empty dependencies file for inspect_classfile.
# This may be replaced when dependencies are built.
