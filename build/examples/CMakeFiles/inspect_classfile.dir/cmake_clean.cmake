file(REMOVE_RECURSE
  "CMakeFiles/inspect_classfile.dir/inspect_classfile.cpp.o"
  "CMakeFiles/inspect_classfile.dir/inspect_classfile.cpp.o.d"
  "inspect_classfile"
  "inspect_classfile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inspect_classfile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
