# Empty dependencies file for differential_campaign.
# This may be replaced when dependencies are built.
