file(REMOVE_RECURSE
  "CMakeFiles/differential_campaign.dir/differential_campaign.cpp.o"
  "CMakeFiles/differential_campaign.dir/differential_campaign.cpp.o.d"
  "differential_campaign"
  "differential_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/differential_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
