file(REMOVE_RECURSE
  "CMakeFiles/classfuzz_tool.dir/classfuzz.cpp.o"
  "CMakeFiles/classfuzz_tool.dir/classfuzz.cpp.o.d"
  "classfuzz"
  "classfuzz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/classfuzz_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
