# Empty dependencies file for classfuzz_tool.
# This may be replaced when dependencies are built.
