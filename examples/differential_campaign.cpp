//===- examples/differential_campaign.cpp - A full classfuzz run ---------===//
//
// Runs a complete (small) classfuzz[stbr] campaign -- seed generation,
// MCMC-guided mutation, coverage-unique acceptance on the reference JVM
// -- then differentially tests the accepted classfiles on the five JVM
// profiles and reports every discrepancy category found.
//
// Run: ./differential_campaign [iterations]
//
//===----------------------------------------------------------------------===//

#include "difftest/DiffTest.h"
#include "fuzzing/Campaign.h"
#include "mutation/Mutator.h"

#include <cstdio>
#include <cstdlib>
#include <map>

using namespace classfuzz;

int main(int Argc, char **Argv) {
  CampaignConfig Config;
  Config.Algo = FuzzAlgorithm::ClassfuzzStBr;
  Config.Iterations =
      Argc > 1 ? static_cast<size_t>(std::atol(Argv[1])) : 1200;
  Config.NumSeeds = 48;
  Config.RngSeed = 7;

  std::printf("running classfuzz[stbr] for %zu iterations "
              "(reference JVM: %s)...\n",
              Config.Iterations, Config.ReferencePolicy.Name.c_str());
  CampaignResult R = runCampaign(Config);
  std::printf("  generated %zu classfiles, accepted %zu representative "
              "tests (succ %.1f%%) in %.2fs\n\n",
              R.numGenerated(), R.numTests(), R.successRatePercent(),
              R.ElapsedSeconds);

  std::printf("differentially testing the %zu test classfiles on five "
              "JVMs...\n\n",
              R.numTests());
  auto Tester = DifferentialTester::withAllProfiles(
      R.corpusClassPath(), EnvironmentMode::PerJvm);

  DiffStats Stats;
  struct ExampleInfo {
    std::string Name;
    size_t MutatorIndex = 0;
  };
  std::map<std::string, ExampleInfo> Examples;
  for (size_t I : R.TestClassIndices) {
    const GeneratedClass &G = R.GenClasses[I];
    DiffOutcome O = Tester.testClass(G.Name);
    Stats.add(O);
    if (O.isDiscrepancy() && !Examples.count(O.encodedString()))
      Examples[O.encodedString()] = {G.Name, G.MutatorIndex};
  }

  std::printf("results: %zu/%zu discrepancy-triggering classfiles "
              "(diff %.1f%%), %zu distinct categories\n\n",
              Stats.Discrepancies, Stats.Total, Stats.diffRatePercent(),
              Stats.DistinctDiscrepancies.size());

  std::printf("%-8s %-8s %-16s %s\n", "encoded", "count", "example",
              "produced by");
  for (const auto &[Sequence, Count] : Stats.DistinctDiscrepancies) {
    const ExampleInfo &Example = Examples[Sequence];
    std::printf("%-8s %-8zu %-16s %s\n", Sequence.c_str(), Count,
                Example.Name.substr(0, 16).c_str(),
                Example.Name.empty()
                    ? "-"
                    : mutatorRegistry()[Example.MutatorIndex]
                          .Description.substr(0, 60)
                          .c_str());
  }

  std::printf("\n(encoding: position = HotSpot7, HotSpot8, HotSpot9, J9, "
              "GIJ; value = 0 ok,\n 1 loading, 2 linking, "
              "3 initialization, 4 runtime)\n");
  return 0;
}
