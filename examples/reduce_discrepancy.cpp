//===- examples/reduce_discrepancy.cpp - §2.3 reduction walkthrough ------===//
//
// Takes a bloated discrepancy-triggering classfile (the Figure 2
// <clinit> defect buried under unrelated members), reduces it with the
// hierarchical delta debugger against a five-JVM oracle, and shows the
// before/after Jimple views -- the workflow an engineer follows before
// reporting a JVM defect.
//
// Run: ./reduce_discrepancy
//
//===----------------------------------------------------------------------===//

#include "classfile/ClassWriter.h"
#include "classfile/CodeBuilder.h"
#include "difftest/DiffTest.h"
#include "jir/Jir.h"
#include "reducer/Reducer.h"

#include <cstdio>

using namespace classfuzz;

namespace {

/// A noisy class: the Problem 1 trigger plus junk fields and methods.
Bytes buildBloatedClass() {
  ClassFile CF;
  CF.ThisClass = "M1436188543";
  CF.SuperClass = "java/lang/Object";
  CF.AccessFlags = ACC_PUBLIC | ACC_SUPER;

  for (int I = 0; I != 5; ++I) {
    FieldInfo F;
    F.Name = "junk" + std::to_string(I);
    F.Descriptor = I % 2 ? "I" : "Ljava/lang/String;";
    F.AccessFlags = ACC_PRIVATE;
    CF.Fields.push_back(std::move(F));
  }
  CF.Interfaces.push_back("java/io/Serializable");

  for (int I = 0; I != 4; ++I) {
    MethodInfo M;
    M.Name = "helper" + std::to_string(I);
    M.Descriptor = "()I";
    M.AccessFlags = ACC_PUBLIC | ACC_STATIC;
    CodeBuilder B(CF.CP);
    B.pushInt(I * 10);
    B.emit(OP_ireturn);
    CodeAttr Code;
    Code.MaxStack = 1;
    Code.MaxLocals = 0;
    Code.Code = B.build();
    M.Code = std::move(Code);
    M.Exceptions.push_back("java/lang/Exception");
    CF.Methods.push_back(std::move(M));
  }

  {
    MethodInfo Main;
    Main.Name = "main";
    Main.Descriptor = "([Ljava/lang/String;)V";
    Main.AccessFlags = ACC_PUBLIC | ACC_STATIC;
    CodeBuilder B(CF.CP);
    B.getStatic("java/lang/System", "out", "Ljava/io/PrintStream;");
    B.pushString("Completed!");
    B.invokeVirtual("java/io/PrintStream", "println",
                    "(Ljava/lang/String;)V");
    B.emit(OP_return);
    CodeAttr Code;
    Code.MaxStack = 2;
    Code.MaxLocals = 1;
    Code.Code = B.build();
    Main.Code = std::move(Code);
    CF.Methods.push_back(std::move(Main));
  }

  // The actual trigger (Problem 1).
  MethodInfo Clinit;
  Clinit.Name = "<clinit>";
  Clinit.Descriptor = "()V";
  Clinit.AccessFlags = ACC_PUBLIC | ACC_ABSTRACT;
  CF.Methods.push_back(std::move(Clinit));

  auto Data = writeClassFile(CF);
  if (!Data) {
    std::fprintf(stderr, "build failed: %s\n", Data.error().c_str());
    std::exit(1);
  }
  return Data.take();
}

std::string jirDump(const Bytes &Data) {
  auto J = lowerClassBytes(Data);
  return J ? printJir(*J) : "<unlowerable>";
}

} // namespace

int main() {
  Bytes Input = buildBloatedClass();

  // The oracle: Step 2 of §2.3 -- retest on the five JVMs, keep the
  // candidate only when the same discrepancy category o persists.
  auto Tester = DifferentialTester::withAllProfiles(
      ClassPath(), EnvironmentMode::Shared, "jre8");
  std::string TargetCategory =
      Tester.testClass("M1436188543", Input).encodedString();
  std::printf("discrepancy under study: encoded \"%s\"\n\n",
              TargetCategory.c_str());

  ReductionOracle Oracle = [&](const std::string &Name,
                               const Bytes &Data) {
    DiffOutcome O = Tester.testClass(Name, Data);
    return O.isDiscrepancy() && O.encodedString() == TargetCategory;
  };

  std::printf("=== before reduction (%zu bytes) ===\n%s\n", Input.size(),
              jirDump(Input).c_str());

  ReducerOptions Opts; // Chunked HDD + memo cache, sequential probing.
  ReductionStats Stats;
  auto Reduced = reduceClassfile(Input, Oracle, Opts, &Stats);
  if (!Reduced) {
    std::fprintf(stderr, "reduction failed: %s\n",
                 Reduced.error().c_str());
    return 1;
  }

  std::printf("=== after reduction (%zu bytes) ===\n%s\n",
              Reduced->size(), jirDump(*Reduced).c_str());
  std::printf("reduction: %zu oracle queries (%zu cache hits, %zu "
              "skipped pre-assembly), %zu deletions kept "
              "(%zu methods, %zu fields, %zu statements, %zu "
              "interfaces, %zu throws; %zu chunks, largest %zu)\n",
              Stats.OracleQueries, Stats.CacheHits,
              Stats.SkippedStructural + Stats.AssemblyFailures,
              Stats.DeletionsKept, Stats.MethodsRemoved,
              Stats.FieldsRemoved, Stats.StatementsRemoved,
              Stats.InterfacesRemoved, Stats.ThrowsRemoved,
              Stats.ChunkDeletionsKept, Stats.LargestChunkKept);
  std::printf("\nthe surviving class isolates the <clinit> construct -- "
              "ready to attach to a bug report.\n");
  return 0;
}
