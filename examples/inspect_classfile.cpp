//===- examples/inspect_classfile.cpp - javap-style inspection -----------===//
//
// Dumps a classfile in two views: the javap -v style raw view
// (constant pool, flags, disassembly) and the Jimple-flavored JIR view
// mutators operate on. With a file argument it inspects that .class
// file; without one it generates and dumps a sample seed.
//
// Run: ./inspect_classfile [file.class]
//
//===----------------------------------------------------------------------===//

#include "classfile/ClassReader.h"
#include "classfile/Printer.h"
#include "jir/Jir.h"
#include "runtime/SeedCorpus.h"

#include <cstdio>
#include <fstream>

using namespace classfuzz;

int main(int Argc, char **Argv) {
  Bytes Data;
  if (Argc > 1) {
    std::ifstream In(Argv[1], std::ios::binary);
    if (!In) {
      std::fprintf(stderr, "cannot open %s\n", Argv[1]);
      return 1;
    }
    Data.assign(std::istreambuf_iterator<char>(In),
                std::istreambuf_iterator<char>());
  } else {
    std::printf("(no file given: inspecting a generated sample seed)\n\n");
    Rng R(2026);
    auto Seeds = generateSeedCorpus(R, 7);
    Data = Seeds[6].Data; // the try/catch seed: richest structure
  }

  auto CF = parseClassFile(Data);
  if (!CF) {
    std::fprintf(stderr, "parse error: %s\n", CF.error().c_str());
    return 1;
  }

  std::printf("=== classfile view (javap -v style) ===\n%s\n",
              printClassFile(*CF).c_str());

  auto J = lowerToJir(*CF);
  if (!J) {
    std::printf("=== JIR view unavailable: %s ===\n", J.error().c_str());
    return 0;
  }
  std::printf("=== JIR view (Jimple-flavored) ===\n%s", printJir(*J).c_str());
  return 0;
}
