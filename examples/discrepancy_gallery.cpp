//===- examples/discrepancy_gallery.cpp - Problems 1-4 showcase ----------===//
//
// Crafts one classfile per reported problem family of §3.3 and runs each
// on the five JVM profiles, printing the encoded outcome sequences --
// a living catalog of the paper's 62 reported discrepancies' mechanisms.
//
// Run: ./discrepancy_gallery
//
//===----------------------------------------------------------------------===//

#include "classfile/ClassWriter.h"
#include "classfile/CodeBuilder.h"
#include "difftest/DiffTest.h"
#include "runtime/RuntimeLib.h"

#include <cstdio>

using namespace classfuzz;

namespace {

ClassFile baseClass(const std::string &Name) {
  ClassFile CF;
  CF.ThisClass = Name;
  CF.SuperClass = "java/lang/Object";
  CF.AccessFlags = ACC_PUBLIC | ACC_SUPER;
  MethodInfo Main;
  Main.Name = "main";
  Main.Descriptor = "([Ljava/lang/String;)V";
  Main.AccessFlags = ACC_PUBLIC | ACC_STATIC;
  CodeBuilder B(CF.CP);
  B.getStatic("java/lang/System", "out", "Ljava/io/PrintStream;");
  B.pushString("Completed!");
  B.invokeVirtual("java/io/PrintStream", "println",
                  "(Ljava/lang/String;)V");
  B.emit(OP_return);
  CodeAttr Code;
  Code.MaxStack = 2;
  Code.MaxLocals = 1;
  Code.Code = B.build();
  Main.Code = std::move(Code);
  CF.Methods.push_back(std::move(Main));
  return CF;
}

Bytes mustSerialize(ClassFile CF) {
  auto Data = writeClassFile(CF);
  if (!Data) {
    std::fprintf(stderr, "serialize: %s\n", Data.error().c_str());
    std::exit(1);
  }
  return Data.take();
}

struct Exhibit {
  const char *Title;
  const char *Explanation;
  std::string Name;
  Bytes Data;
  EnvironmentMode Mode;
};

std::vector<Exhibit> buildGallery() {
  std::vector<Exhibit> Out;

  // Problem 1: non-static <clinit>.
  {
    ClassFile CF = baseClass("P1_Clinit");
    MethodInfo M;
    M.Name = "<clinit>";
    M.Descriptor = "()V";
    M.AccessFlags = ACC_PUBLIC | ACC_ABSTRACT;
    CF.Methods.push_back(std::move(M));
    Out.push_back({"Problem 1: public abstract <clinit> (Figure 2)",
                   "HotSpot treats it as an ordinary method (the SE 9 "
                   "clarification); J9 raises ClassFormatError",
                   "P1_Clinit", mustSerialize(CF),
                   EnvironmentMode::Shared});
  }

  // Problem 2a: unsafe reference parameter cast (M1433982529).
  {
    ClassFile CF = baseClass("P2_UnsafeCast");
    MethodInfo M;
    M.Name = "internalTransform";
    M.Descriptor = "(Ljava/lang/String;)V";
    M.AccessFlags = ACC_PROTECTED | ACC_STATIC;
    CodeBuilder B(CF.CP);
    B.loadLocal('a', 0);
    // Parameter declared String, but used as a Map argument.
    B.invokeStatic("java/lang/Boolean", "getBoolean",
                   "(Ljava/util/Map;)Z");
    B.emit(OP_pop);
    B.emit(OP_return);
    CodeAttr Code;
    Code.MaxStack = 1;
    Code.MaxLocals = 1;
    Code.Code = B.build();
    M.Code = std::move(Code);
    CF.Methods.push_back(std::move(M));
    Out.push_back({"Problem 2: String passed where java.util.Map is "
                   "declared (M1433982529)",
                   "GIJ's verifier flags the incompatible type; HotSpot "
                   "and J9 miss it",
                   "P2_UnsafeCast", mustSerialize(CF),
                   EnvironmentMode::Shared});
  }

  // Problem 2b: J9's lazy method verification.
  {
    ClassFile CF = baseClass("P2_LazyVerify");
    MethodInfo M;
    M.Name = "neverCalled";
    M.Descriptor = "()V";
    M.AccessFlags = ACC_PUBLIC | ACC_STATIC;
    CodeAttr Code;
    Code.MaxStack = 1;
    Code.MaxLocals = 0;
    Code.Code = {OP_pop, OP_return}; // Underflows: unverifiable.
    M.Code = std::move(Code);
    CF.Methods.push_back(std::move(M));
    Out.push_back({"Problem 2: broken method that is never invoked",
                   "HotSpot/GIJ verify every method before execution "
                   "(VerifyError); J9 verifies lazily and runs the class",
                   "P2_LazyVerify", mustSerialize(CF),
                   EnvironmentMode::Shared});
  }

  // Problem 3: inaccessible class in a throws clause (M1437121261).
  {
    ClassFile CF = baseClass("P3_Throws");
    CF.findMethod("main", "([Ljava/lang/String;)V")->Exceptions = {
        versionSkewedClasses().InaccessibleClass};
    Out.push_back({"Problem 3: throws sun.java2d.pisces."
                   "PiscesRenderingEngine$2 (M1437121261)",
                   "HotSpot raises IllegalAccessError for the "
                   "package-private synthetic class; J9 and GIJ do not",
                   "P3_Throws", mustSerialize(CF),
                   EnvironmentMode::Shared});
  }

  // Problem 4a: interface extending a class.
  {
    ClassFile CF;
    CF.ThisClass = "P4_IfaceSuper";
    CF.SuperClass = "java/lang/Exception";
    CF.AccessFlags = ACC_PUBLIC | ACC_INTERFACE | ACC_ABSTRACT;
    Out.push_back({"Problem 4: interface extending java.lang.Exception",
                   "HotSpot/J9 raise ClassFormatError (interface super "
                   "must be Object); GIJ misses the illegal hierarchy",
                   "P4_IfaceSuper", mustSerialize(CF),
                   EnvironmentMode::Shared});
  }

  // Problem 4b: static <init> (illegal constructor shape).
  {
    ClassFile CF = baseClass("P4_StaticInit");
    MethodInfo M;
    M.Name = "<init>";
    M.Descriptor = "()V";
    M.AccessFlags = ACC_PUBLIC | ACC_STATIC;
    CodeAttr Code;
    Code.MaxStack = 0;
    Code.MaxLocals = 1;
    Code.Code = {OP_return};
    M.Code = std::move(Code);
    CF.Methods.push_back(std::move(M));
    Out.push_back({"Problem 4: public static void <init>()",
                   "Rejected by HotSpot and J9 (<init> must not be "
                   "static); GIJ accepts it",
                   "P4_StaticInit", mustSerialize(CF),
                   EnvironmentMode::Shared});
  }

  // Problem 4c: duplicate fields.
  {
    ClassFile CF = baseClass("P4_DupFields");
    FieldInfo F;
    F.Name = "dup";
    F.Descriptor = "I";
    F.AccessFlags = ACC_PUBLIC;
    CF.Fields.push_back(F);
    CF.Fields.push_back(F);
    Out.push_back({"Problem 4: class with duplicate fields",
                   "GIJ accepts duplicate fields; the others raise "
                   "ClassFormatError",
                   "P4_DupFields", mustSerialize(CF),
                   EnvironmentMode::Shared});
  }

  // Compatibility (the preliminary study): EnumEditor finalization.
  {
    ClassFile CF = baseClass("C_EnumEditor");
    CF.SuperClass = "sun/beans/editors/EnumEditor";
    Out.push_back({"Compatibility: extends sun.beans.editors.EnumEditor",
                   "Superclass is final from JRE 8 on (VerifyError) and "
                   "removed in JRE 9 (NoClassDefFoundError) -- an "
                   "environment discrepancy, not a defect",
                   "C_EnumEditor", mustSerialize(CF),
                   EnvironmentMode::PerJvm});
  }

  return Out;
}

} // namespace

int main() {
  std::printf("classfuzz-cpp discrepancy gallery (the §3.3 problem "
              "families)\n");
  std::printf("encoding: 0 ok, 1 loading, 2 linking, 3 init, 4 runtime; "
              "JVM order: HS7 HS8 HS9 J9 GIJ\n\n");

  for (const Exhibit &E : buildGallery()) {
    ClassPath Corpus;
    Corpus.add(E.Name, E.Data);
    auto Tester =
        DifferentialTester::withAllProfiles(Corpus, E.Mode, "jre8");
    DiffOutcome O = Tester.testClass(E.Name);
    std::printf("%s\n  %s\n  encoded \"%s\"%s\n", E.Title, E.Explanation,
                O.encodedString().c_str(),
                O.isDiscrepancy() ? "  ** DISCREPANCY **" : "");
    for (size_t I = 0; I != O.Results.size(); ++I)
      std::printf("    %-22s %s\n", Tester.policies()[I].Name.c_str(),
                  O.Results[I].toString().c_str());
    std::printf("\n");
  }
  return 0;
}
