//===- examples/quickstart.cpp - First steps with classfuzz-cpp ----------===//
//
// Builds a classfile in memory, mutates it with one of the 129 mutators,
// and differentially runs seed and mutant on the five JVM profiles --
// reproducing the paper's Figure 2 discrepancy end to end.
//
// Run: ./quickstart
//
//===----------------------------------------------------------------------===//

#include "classfile/ClassWriter.h"
#include "classfile/CodeBuilder.h"
#include "difftest/DiffTest.h"
#include "mutation/Engine.h"

#include <cstdio>

using namespace classfuzz;

namespace {

/// Step 1: author a valid classfile programmatically.
Bytes buildSeedClass() {
  ClassFile CF;
  CF.ThisClass = "M1436188543";
  CF.SuperClass = "java/lang/Object";
  CF.AccessFlags = ACC_PUBLIC | ACC_SUPER;
  CF.MajorVersion = MajorVersionJava7; // 51, as all the paper's mutants.

  MethodInfo Main;
  Main.Name = "main";
  Main.Descriptor = "([Ljava/lang/String;)V";
  Main.AccessFlags = ACC_PUBLIC | ACC_STATIC;
  CodeBuilder B(CF.CP);
  B.getStatic("java/lang/System", "out", "Ljava/io/PrintStream;");
  B.pushString("Completed!");
  B.invokeVirtual("java/io/PrintStream", "println",
                  "(Ljava/lang/String;)V");
  B.emit(OP_return);
  CodeAttr Code;
  Code.MaxStack = 2;
  Code.MaxLocals = 1;
  Code.Code = B.build();
  Main.Code = std::move(Code);
  CF.Methods.push_back(std::move(Main));

  auto Data = writeClassFile(CF);
  if (!Data) {
    std::fprintf(stderr, "serialization failed: %s\n",
                 Data.error().c_str());
    std::exit(1);
  }
  return Data.take();
}

void runOnAllJvms(const char *Label, const std::string &Name,
                  const Bytes &Data) {
  ClassPath Corpus;
  Corpus.add(Name, Data);
  auto Tester = DifferentialTester::withAllProfiles(
      Corpus, EnvironmentMode::Shared, "jre8");
  DiffOutcome O = Tester.testClass(Name);
  std::printf("%s -> encoded \"%s\"%s\n", Label,
              O.encodedString().c_str(),
              O.isDiscrepancy() ? "  ** DISCREPANCY **" : "");
  for (size_t I = 0; I != O.Results.size(); ++I)
    std::printf("  %-22s %s\n", Tester.policies()[I].Name.c_str(),
                O.Results[I].toString().c_str());
}

} // namespace

int main() {
  std::printf("classfuzz-cpp quickstart\n========================\n\n");

  Bytes Seed = buildSeedClass();
  std::printf("1. built a %zu-byte classfile M1436188543\n\n",
              Seed.size());

  runOnAllJvms("2. seed on the five JVMs", "M1436188543", Seed);

  // Step 3: apply the Figure 2 mutator -- insert a public abstract
  // method named <clinit> with no Code attribute.
  size_t MutatorIndex = 0;
  for (size_t I = 0; I != mutatorRegistry().size(); ++I)
    if (mutatorRegistry()[I].Id == "method.insert-nonstatic-clinit")
      MutatorIndex = I;
  Rng R(1);
  std::vector<std::string> Known;
  MutationContext Ctx{R, Known};
  MutationOutcome Mutant = mutateClass(Seed, MutatorIndex, Ctx);
  if (!Mutant.Produced) {
    std::fprintf(stderr, "mutation failed: %s\n", Mutant.Error.c_str());
    return 1;
  }
  std::printf("\n3. applied mutator \"%s\"\n\n",
              mutatorRegistry()[MutatorIndex].Description.c_str());

  runOnAllJvms("4. mutant on the five JVMs", Mutant.ClassName,
               Mutant.Data);

  std::printf("\nThe mutant reproduces the paper's Problem 1: HotSpot "
              "treats the non-static\n<clinit> as an ordinary method, "
              "while J9 raises a ClassFormatError.\n");
  return 0;
}
