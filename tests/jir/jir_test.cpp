//===- tests/jir/jir_test.cpp ----------------------------------------------===//
//
// Lowering / assembly round trips and invalid-IR rejection.
//
//===----------------------------------------------------------------------===//

#include "../TestHelpers.h"
#include "classfile/ClassReader.h"
#include "jir/Jir.h"
#include "runtime/SeedCorpus.h"

#include <gtest/gtest.h>

using namespace classfuzz;
using namespace classfuzz::testhelpers;

TEST(Jir, LowersHelloClass) {
  Bytes Data = serialize(makeHelloClass("Hello"));
  auto J = lowerClassBytes(Data);
  ASSERT_TRUE(J.ok()) << J.error();
  EXPECT_EQ(J->Name, "Hello");
  EXPECT_EQ(J->SuperClass, "java/lang/Object");
  ASSERT_EQ(J->Methods.size(), 2u);
  const JirMethod *Main = J->findMethodByName("main");
  ASSERT_NE(Main, nullptr);
  EXPECT_TRUE(Main->HasBody);
  // getstatic, ldc, invokevirtual, return.
  ASSERT_EQ(Main->Body.size(), 4u);
  EXPECT_EQ(Main->Body[0].Op, OP_getstatic);
  EXPECT_EQ(Main->Body[0].RefClass, "java/lang/System");
  EXPECT_EQ(Main->Body[1].ConstKind, 's');
  EXPECT_EQ(Main->Body[1].StrOperand, "Completed!");
  EXPECT_EQ(Main->Body[3].Op, OP_return);
}

TEST(Jir, RoundTripPreservesBehavior) {
  Bytes Original = serialize(makeHelloClass("RT"));
  auto J = lowerClassBytes(Original);
  ASSERT_TRUE(J.ok());
  auto Reassembled = assembleToBytes(*J);
  ASSERT_TRUE(Reassembled.ok()) << Reassembled.error();
  JvmResult R = runOn(makeHotSpot8Policy(), {{"RT", *Reassembled}}, "RT");
  ASSERT_TRUE(R.Invoked) << R.toString();
  EXPECT_EQ(R.Output[0], "Completed!");
}

TEST(Jir, BranchTargetsBecomeIndices) {
  // A loop body: targets must be statement indices, not offsets.
  ClassFile CF = makeHelloClass("Loop");
  MethodInfo *Main = CF.findMethod("main", "([Ljava/lang/String;)V");
  CodeBuilder B(CF.CP);
  B.pushInt(0);
  B.storeLocal('i', 1);
  auto Head = B.newLabel();
  auto Done = B.newLabel();
  B.bind(Head);
  B.loadLocal('i', 1);
  B.pushInt(10);
  B.branch(OP_if_icmpge, Done);
  B.iinc(1, 1);
  B.branch(OP_goto, Head);
  B.bind(Done);
  B.emit(OP_return);
  Main->Code->Code = B.build();
  Main->Code->MaxStack = 2;
  Main->Code->MaxLocals = 2;

  auto J = lowerClassBytes(serialize(CF));
  ASSERT_TRUE(J.ok()) << J.error();
  const JirMethod *M = J->findMethodByName("main");
  ASSERT_NE(M, nullptr);
  // Statements: ldc0, istore1, iload1, ldc10, if_icmpge ->7, iinc,
  // goto ->2, return.
  ASSERT_EQ(M->Body.size(), 8u);
  EXPECT_EQ(M->Body[4].TargetIndex, 7);
  EXPECT_EQ(M->Body[6].TargetIndex, 2);

  // Round trip must still run to completion.
  auto Data = assembleToBytes(*J);
  ASSERT_TRUE(Data.ok());
  JvmResult R = runOn(makeHotSpot8Policy(), {{"Loop", *Data}}, "Loop");
  EXPECT_TRUE(R.Invoked) << R.toString();
}

TEST(Jir, CanonicalizesShortFormLocals) {
  ClassFile CF = makeHelloClass("Locals");
  MethodInfo *Main = CF.findMethod("main", "([Ljava/lang/String;)V");
  Bytes Code = {OP_iconst_2, OP_istore_1, OP_iload_1, OP_pop, OP_return};
  Main->Code->Code = Code;
  Main->Code->MaxStack = 1;
  Main->Code->MaxLocals = 2;
  auto J = lowerClassBytes(serialize(CF));
  ASSERT_TRUE(J.ok()) << J.error();
  const JirMethod *M = J->findMethodByName("main");
  EXPECT_EQ(M->Body[1].Op, OP_istore);
  EXPECT_EQ(M->Body[1].IntOperand, 1);
  EXPECT_EQ(M->Body[2].Op, OP_iload);
  // Constants canonicalize to ldc statements.
  EXPECT_EQ(M->Body[0].Op, OP_ldc);
  EXPECT_EQ(M->Body[0].ConstKind, 'i');
  EXPECT_EQ(M->Body[0].IntOperand, 2);
  // Assembly re-picks the compact encodings.
  auto CF2 = assembleFromJir(*J);
  ASSERT_TRUE(CF2.ok());
  const MethodInfo *Main2 = CF2->findMethod("main",
                                            "([Ljava/lang/String;)V");
  ASSERT_NE(Main2, nullptr);
  EXPECT_EQ(Main2->Code->Code[0], OP_iconst_2);
  EXPECT_EQ(Main2->Code->Code[1], OP_istore_1);
}

TEST(Jir, ExceptionTableInIndexSpace) {
  Rng R(3);
  // The genException seed has a try/catch.
  auto Seeds = generateSeedCorpus(R, 13);
  const SeedClass *Exc = nullptr;
  for (const SeedClass &S : Seeds) {
    auto Parsed = parseClassFile(S.Data);
    ASSERT_TRUE(Parsed.ok());
    if (const MethodInfo *Main = Parsed->findMethodByName("main"))
      if (Main->Code && !Main->Code->ExceptionTable.empty()) {
        Exc = &S;
        break;
      }
  }
  ASSERT_NE(Exc, nullptr) << "corpus contains a try/catch seed";
  auto J = lowerClassBytes(Exc->Data);
  ASSERT_TRUE(J.ok()) << J.error();
  const JirMethod *Main = J->findMethodByName("main");
  ASSERT_FALSE(Main->ExceptionTable.empty());
  const JirExceptionEntry &E = Main->ExceptionTable[0];
  EXPECT_LT(E.StartIndex, E.EndIndex);
  EXPECT_LT(E.HandlerIndex, Main->Body.size());

  // Round trip and run: the handler must still fire.
  auto Data = assembleToBytes(*J);
  ASSERT_TRUE(Data.ok()) << Data.error();
  JvmResult Res =
      runOn(makeHotSpot8Policy(), {{Exc->Name, *Data}}, Exc->Name);
  ASSERT_TRUE(Res.Invoked) << Res.toString();
  EXPECT_EQ(Res.Output[0], "caught");
}

TEST(Jir, RejectsDanglingBranchTarget) {
  Bytes Data = serialize(makeHelloClass("Dangle"));
  auto J = lowerClassBytes(Data);
  ASSERT_TRUE(J.ok());
  JirMethod *Main = J->findMethod("main");
  JirStmt Goto;
  Goto.Op = OP_goto;
  Goto.TargetIndex = 999;
  Main->Body.push_back(Goto);
  auto Out = assembleToBytes(*J);
  ASSERT_FALSE(Out.ok());
  EXPECT_NE(Out.error().find("dangling"), std::string::npos);
}

TEST(Jir, RejectsEmptyMemberReference) {
  Bytes Data = serialize(makeHelloClass("EmptyRef"));
  auto J = lowerClassBytes(Data);
  ASSERT_TRUE(J.ok());
  J->findMethod("main")->Body[0].RefClass.clear();
  EXPECT_FALSE(assembleToBytes(*J).ok());
}

TEST(Jir, RejectsEmptyClassName) {
  Bytes Data = serialize(makeHelloClass("NoName"));
  auto J = lowerClassBytes(Data);
  ASSERT_TRUE(J.ok());
  J->Name.clear();
  EXPECT_FALSE(assembleToBytes(*J).ok());
}

TEST(Jir, RejectsBadExceptionEntry) {
  Bytes Data = serialize(makeHelloClass("BadTable"));
  auto J = lowerClassBytes(Data);
  ASSERT_TRUE(J.ok());
  JirExceptionEntry E;
  E.StartIndex = 3;
  E.EndIndex = 1; // start >= end
  E.HandlerIndex = 0;
  J->findMethod("main")->ExceptionTable.push_back(E);
  EXPECT_FALSE(assembleToBytes(*J).ok());
}

TEST(Jir, AbstractMethodsHaveNoBody) {
  ClassFile CF;
  CF.ThisClass = "Iface";
  CF.SuperClass = "java/lang/Object";
  CF.AccessFlags = ACC_PUBLIC | ACC_INTERFACE | ACC_ABSTRACT;
  MethodInfo M;
  M.Name = "op";
  M.Descriptor = "()V";
  M.AccessFlags = ACC_PUBLIC | ACC_ABSTRACT;
  CF.Methods.push_back(std::move(M));
  auto J = lowerClassBytes(serialize(CF));
  ASSERT_TRUE(J.ok());
  EXPECT_FALSE(J->Methods[0].HasBody);
  auto Out = assembleToBytes(*J);
  ASSERT_TRUE(Out.ok()) << Out.error();
  auto Reparsed = parseClassFile(*Out);
  ASSERT_TRUE(Reparsed.ok());
  EXPECT_FALSE(Reparsed->Methods[0].Code.has_value());
}

TEST(Jir, PrintProducesJimpleFlavor) {
  Bytes Data = serialize(makeHelloClass("PrintMe"));
  auto J = lowerClassBytes(Data);
  ASSERT_TRUE(J.ok());
  std::string Text = printJir(*J);
  EXPECT_NE(Text.find("class PrintMe extends java.lang.Object"),
            std::string::npos);
  EXPECT_NE(Text.find("main([Ljava/lang/String;)V"), std::string::npos);
  EXPECT_NE(Text.find("getstatic java.lang.System.out"),
            std::string::npos);
  EXPECT_NE(Text.find("\"Completed!\""), std::string::npos);
}

TEST(Jir, WholeSeedCorpusRoundTrips) {
  Rng R(17);
  auto Seeds = generateSeedCorpus(R, 30);
  for (const SeedClass &Seed : Seeds) {
    auto J = lowerClassBytes(Seed.Data);
    ASSERT_TRUE(J.ok()) << Seed.Name << ": " << J.error();
    auto Out = assembleToBytes(*J);
    ASSERT_TRUE(Out.ok()) << Seed.Name << ": " << Out.error();
  }
}
