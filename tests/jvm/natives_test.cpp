//===- tests/jvm/natives_test.cpp ------------------------------------------===//
//
// The native-method registry: modeled natives (println, String,
// StringBuilder, Throwable) and the default-value fallback for unknown
// natives that keeps mutated classfiles from derailing campaigns.
//
//===----------------------------------------------------------------------===//

#include "../TestHelpers.h"

#include <gtest/gtest.h>

using namespace classfuzz;
using namespace classfuzz::testhelpers;

namespace {

/// Builds a main from \p Emit and runs it on HotSpot 8.
template <typename EmitFn>
JvmResult runMain(EmitFn Emit, uint16_t MaxStack = 4,
                  uint16_t MaxLocals = 4) {
  ClassFile CF = makeHelloClass("T");
  MethodInfo *Main = CF.findMethod("main", "([Ljava/lang/String;)V");
  CodeBuilder B(CF.CP);
  Emit(B);
  Main->Code->Code = B.build();
  Main->Code->MaxStack = MaxStack;
  Main->Code->MaxLocals = MaxLocals;
  return runOn(makeHotSpot8Policy(), {{"T", serialize(CF)}}, "T");
}

void printTopInt(CodeBuilder &B) {
  B.invokeVirtual("java/io/PrintStream", "println", "(I)V");
}

void pushOut(CodeBuilder &B) {
  B.getStatic("java/lang/System", "out", "Ljava/io/PrintStream;");
}

} // namespace

TEST(Natives, ThrowableMessageRoundTrip) {
  // new Exception("boom"); getMessage(); println.
  JvmResult R = runMain([](CodeBuilder &B) {
    B.newObject("java/lang/Exception");
    B.emit(OP_dup);
    B.pushString("boom");
    B.invokeSpecial("java/lang/Exception", "<init>",
                    "(Ljava/lang/String;)V");
    B.storeLocal('a', 1);
    pushOut(B);
    B.loadLocal('a', 1);
    B.invokeVirtual("java/lang/Exception", "getMessage",
                    "()Ljava/lang/String;");
    B.invokeVirtual("java/io/PrintStream", "println",
                    "(Ljava/lang/String;)V");
    B.emit(OP_return);
  });
  ASSERT_TRUE(R.Invoked) << R.toString();
  EXPECT_EQ(R.Output[0], "boom");
}

TEST(Natives, ThrownExceptionCarriesMessageToHandler) {
  // throw new IllegalStateException("why"); catch; print getMessage().
  ClassFile CF = makeHelloClass("T");
  MethodInfo *Main = CF.findMethod("main", "([Ljava/lang/String;)V");
  std::vector<ExceptionTableEntry> Table;
  CodeBuilder B(CF.CP);
  uint32_t Start = B.currentOffset();
  B.newObject("java/lang/IllegalStateException");
  B.emit(OP_dup);
  B.pushString("why");
  B.invokeSpecial("java/lang/IllegalStateException", "<init>",
                  "(Ljava/lang/String;)V");
  B.emit(OP_athrow);
  uint32_t End = B.currentOffset();
  uint32_t Handler = B.currentOffset();
  B.storeLocal('a', 1);
  pushOut(B);
  B.loadLocal('a', 1);
  B.invokeVirtual("java/lang/Throwable", "getMessage",
                  "()Ljava/lang/String;");
  B.invokeVirtual("java/io/PrintStream", "println",
                  "(Ljava/lang/String;)V");
  B.emit(OP_return);
  ExceptionTableEntry E;
  E.StartPc = static_cast<uint16_t>(Start);
  E.EndPc = static_cast<uint16_t>(End);
  E.HandlerPc = static_cast<uint16_t>(Handler);
  E.CatchType = "java/lang/RuntimeException";
  Table.push_back(E);
  Main->Code->Code = B.build();
  Main->Code->MaxStack = 3;
  Main->Code->MaxLocals = 2;
  Main->Code->ExceptionTable = Table;
  JvmResult R = runOn(makeHotSpot8Policy(), {{"T", serialize(CF)}}, "T");
  ASSERT_TRUE(R.Invoked) << R.toString();
  EXPECT_EQ(R.Output[0], "why");
}

TEST(Natives, StringEqualsAndConcat) {
  JvmResult R = runMain([](CodeBuilder &B) {
    pushOut(B);
    B.pushString("ab");
    B.pushString("cd");
    B.invokeVirtual("java/lang/String", "concat",
                    "(Ljava/lang/String;)Ljava/lang/String;");
    B.pushString("abcd");
    B.invokeVirtual("java/lang/String", "equals",
                    "(Ljava/lang/Object;)Z");
    printTopInt(B);
    B.emit(OP_return);
  });
  ASSERT_TRUE(R.Invoked) << R.toString();
  EXPECT_EQ(R.Output[0], "1");
}

TEST(Natives, ObjectIdentityEquals) {
  JvmResult R = runMain([](CodeBuilder &B) {
    B.newObject("java/lang/Object");
    B.emit(OP_dup);
    B.invokeSpecial("java/lang/Object", "<init>", "()V");
    B.storeLocal('a', 1);
    pushOut(B);
    B.loadLocal('a', 1);
    B.loadLocal('a', 1);
    B.invokeVirtual("java/lang/Object", "equals",
                    "(Ljava/lang/Object;)Z");
    printTopInt(B);
    B.emit(OP_return);
  });
  ASSERT_TRUE(R.Invoked) << R.toString();
  EXPECT_EQ(R.Output[0], "1");
}

TEST(Natives, UnknownNativeReturnsDefaultValue) {
  // Math.abs is registered as native with no special handler: the
  // fallback returns the default of the return type (0 for int).
  JvmResult R = runMain([](CodeBuilder &B) {
    pushOut(B);
    B.pushInt(-9);
    B.invokeStatic("java/lang/Math", "abs", "(I)I");
    printTopInt(B);
    B.emit(OP_return);
  });
  ASSERT_TRUE(R.Invoked) << R.toString();
  EXPECT_EQ(R.Output[0], "0") << "unknown natives return type defaults";
}

TEST(Natives, UnknownRefNativeReturnsNull) {
  JvmResult R = runMain([](CodeBuilder &B) {
    pushOut(B);
    B.pushInt(5);
    B.invokeStatic("java/lang/Integer", "valueOf",
                   "(I)Ljava/lang/Integer;");
    CodeBuilder::Label IsNull = B.newLabel();
    CodeBuilder::Label End = B.newLabel();
    B.branch(OP_ifnull, IsNull);
    B.pushInt(0);
    B.branch(OP_goto, End);
    B.bind(IsNull);
    B.pushInt(1);
    B.bind(End);
    printTopInt(B);
    B.emit(OP_return);
  });
  ASSERT_TRUE(R.Invoked) << R.toString();
  EXPECT_EQ(R.Output[0], "1") << "unknown ref-returning native -> null";
}

TEST(Natives, PrintlnObjectRendersClassName) {
  JvmResult R = runMain([](CodeBuilder &B) {
    pushOut(B);
    B.newObject("java/lang/Thread");
    B.emit(OP_dup);
    B.invokeSpecial("java/lang/Thread", "<init>", "()V");
    B.invokeVirtual("java/io/PrintStream", "println",
                    "(Ljava/lang/Object;)V");
    B.emit(OP_return);
  });
  ASSERT_TRUE(R.Invoked) << R.toString();
  EXPECT_EQ(R.Output[0], "<java/lang/Thread>");
}

TEST(Natives, PrintlnNullObject) {
  JvmResult R = runMain([](CodeBuilder &B) {
    pushOut(B);
    B.pushNull();
    B.invokeVirtual("java/io/PrintStream", "println",
                    "(Ljava/lang/Object;)V");
    B.emit(OP_return);
  });
  ASSERT_TRUE(R.Invoked) << R.toString();
  EXPECT_EQ(R.Output[0], "null");
}
