//===- tests/jvm/flagsweep_test.cpp ----------------------------------------===//
//
// Parameterized sweeps over access-flag combinations: which method and
// class flag sets each profile accepts at format-check time. These pin
// the policy matrix that drives the Table 7 strictness ordering.
//
//===----------------------------------------------------------------------===//

#include "../TestHelpers.h"
#include "jvm/FormatChecker.h"

#include <gtest/gtest.h>

using namespace classfuzz;
using namespace classfuzz::testhelpers;

namespace {

struct MethodFlagCase {
  const char *Name;
  uint16_t Flags;
  bool WithCode;
  bool HotSpotAccepts;
  bool J9Accepts;
  bool GijAccepts;
};

class MethodFlagSweep
    : public ::testing::TestWithParam<MethodFlagCase> {};

bool formatAccepts(const JvmPolicy &Policy, uint16_t Flags,
                   bool WithCode) {
  ClassFile CF = makeHelloClass("T");
  MethodInfo M;
  M.Name = "probe";
  M.Descriptor = "()V";
  M.AccessFlags = Flags;
  if (WithCode) {
    CodeAttr Code;
    Code.MaxStack = 0;
    Code.MaxLocals = 0;
    Code.Code = {OP_return};
    M.Code = std::move(Code);
  }
  CF.Methods.push_back(std::move(M));
  return !checkClassFormat(CF, Policy, nullptr).has_value();
}

} // namespace

TEST_P(MethodFlagSweep, MatchesPolicyMatrix) {
  const MethodFlagCase &C = GetParam();
  EXPECT_EQ(formatAccepts(makeHotSpot8Policy(), C.Flags, C.WithCode),
            C.HotSpotAccepts)
      << C.Name << " on HotSpot";
  EXPECT_EQ(formatAccepts(makeJ9Policy(), C.Flags, C.WithCode),
            C.J9Accepts)
      << C.Name << " on J9";
  EXPECT_EQ(formatAccepts(makeGijPolicy(), C.Flags, C.WithCode),
            C.GijAccepts)
      << C.Name << " on GIJ";
}

const MethodFlagCase MethodFlagCases[] = {
    // name, flags, code?, HS, J9, GIJ
    {"plain_public", ACC_PUBLIC, true, true, true, true},
    {"public_static", ACC_PUBLIC | ACC_STATIC, true, true, true, true},
    {"public_and_private", ACC_PUBLIC | ACC_PRIVATE, true, false, false,
     true},
    {"private_and_protected", ACC_PRIVATE | ACC_PROTECTED, true, false,
     false, true},
    {"abstract_with_code", ACC_PUBLIC | ACC_ABSTRACT, true, false,
     false, true},
    // Abstract without code in a concrete class: HotSpot defers to
    // invocation (Lazy), J9 rejects eagerly, GIJ ignores.
    {"abstract_in_concrete", ACC_PUBLIC | ACC_ABSTRACT, false, true,
     false, true},
    {"abstract_final", ACC_PUBLIC | ACC_ABSTRACT | ACC_FINAL, false,
     false, false, true},
    {"abstract_static", ACC_PUBLIC | ACC_ABSTRACT | ACC_STATIC, false,
     false, false, true},
    {"abstract_synchronized",
     ACC_PUBLIC | ACC_ABSTRACT | ACC_SYNCHRONIZED, false, false, false,
     true},
    // Concrete without code: HotSpot eager ClassFormatError; J9 eager
    // too; GIJ defers to invocation.
    {"concrete_without_code", ACC_PUBLIC, false, false, false, true},
    {"native_without_code", ACC_PUBLIC | ACC_NATIVE, false, true, true,
     true},
    {"native_with_code", ACC_PUBLIC | ACC_NATIVE, true, false, false,
     true},
    {"synthetic", ACC_PUBLIC | ACC_SYNTHETIC, true, true, true, true},
};

INSTANTIATE_TEST_SUITE_P(Matrix, MethodFlagSweep,
                         ::testing::ValuesIn(MethodFlagCases),
                         [](const auto &Info) {
                           return std::string(Info.param.Name);
                         });

namespace {

struct ClassFlagCase {
  const char *Name;
  uint16_t Flags;
  bool HotSpotAccepts;
  bool GijAccepts;
};

class ClassFlagSweep : public ::testing::TestWithParam<ClassFlagCase> {};

bool classFormatAccepts(const JvmPolicy &Policy, uint16_t Flags) {
  ClassFile CF = makeHelloClass("T");
  CF.AccessFlags = Flags;
  return !checkClassFormat(CF, Policy, nullptr).has_value();
}

} // namespace

TEST_P(ClassFlagSweep, MatchesPolicyMatrix) {
  const ClassFlagCase &C = GetParam();
  EXPECT_EQ(classFormatAccepts(makeHotSpot8Policy(), C.Flags),
            C.HotSpotAccepts)
      << C.Name << " on HotSpot";
  EXPECT_EQ(classFormatAccepts(makeGijPolicy(), C.Flags), C.GijAccepts)
      << C.Name << " on GIJ";
}

const ClassFlagCase ClassFlagCases[] = {
    {"public_super", ACC_PUBLIC | ACC_SUPER, true, true},
    {"final_ok", ACC_PUBLIC | ACC_SUPER | ACC_FINAL, true, true},
    {"abstract_ok", ACC_PUBLIC | ACC_SUPER | ACC_ABSTRACT, true, true},
    {"final_abstract", ACC_PUBLIC | ACC_FINAL | ACC_ABSTRACT, false,
     true},
    // An interface flag without abstract: inconsistent for HotSpot.
    {"interface_not_abstract", ACC_PUBLIC | ACC_INTERFACE, false, true},
    // A final interface is doubly wrong.
    {"final_interface",
     ACC_PUBLIC | ACC_INTERFACE | ACC_ABSTRACT | ACC_FINAL, false,
     true},
    {"package_private", ACC_SUPER, true, true},
};

INSTANTIATE_TEST_SUITE_P(Matrix, ClassFlagSweep,
                         ::testing::ValuesIn(ClassFlagCases),
                         [](const auto &Info) {
                           return std::string(Info.param.Name);
                         });
