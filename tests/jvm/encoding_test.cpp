//===- tests/jvm/encoding_test.cpp -----------------------------------------===//
//
// The 0..4 outcome encoding of §2.3 and the canonical-phase rule: an
// error kind counts toward the phase it belongs to (Table 1), not the
// wall-clock moment it was thrown.
//
//===----------------------------------------------------------------------===//

#include "../TestHelpers.h"
#include "jvm/Phase.h"

#include <gtest/gtest.h>

using namespace classfuzz;
using namespace classfuzz::testhelpers;

TEST(Encoding, InvokedIsZero) {
  JvmResult R;
  R.Invoked = true;
  R.Phase = JvmPhase::Completed;
  EXPECT_EQ(encodePhase(R), 0);
}

TEST(Encoding, PhasesMapToDigits) {
  JvmResult R;
  R.Invoked = false;
  R.Phase = JvmPhase::Loading;
  EXPECT_EQ(encodePhase(R), 1);
  R.Phase = JvmPhase::Linking;
  EXPECT_EQ(encodePhase(R), 2);
  R.Phase = JvmPhase::Initialization;
  EXPECT_EQ(encodePhase(R), 3);
  R.Phase = JvmPhase::Execution;
  EXPECT_EQ(encodePhase(R), 4);
}

TEST(Encoding, NamesAreStable) {
  EXPECT_STREQ(phaseName(JvmPhase::Loading), "loading");
  EXPECT_STREQ(phaseName(JvmPhase::Completed), "completed");
  EXPECT_STREQ(errorKindName(JvmErrorKind::VerifyError), "VerifyError");
  EXPECT_STREQ(errorKindName(JvmErrorKind::None), "None");
}

TEST(Encoding, ToStringFormats) {
  JvmResult Ok;
  Ok.Invoked = true;
  EXPECT_EQ(Ok.toString(), "ok");
  JvmResult Err;
  Err.Invoked = false;
  Err.Phase = JvmPhase::Linking;
  Err.Error = JvmErrorKind::VerifyError;
  Err.Message = "bad";
  EXPECT_EQ(Err.toString(), "VerifyError (linking): bad");
}

TEST(Encoding, LazyVerifyErrorCanonicalizesToLinking) {
  // J9 verifies main lazily -- at invocation time -- yet the outcome
  // must encode as a linking rejection (2), like the paper's J9 column.
  ClassFile CF = makeHelloClass("LazyMain");
  MethodInfo *Main = CF.findMethod("main", "([Ljava/lang/String;)V");
  // Type-broken main: pre-verifier passes (depth fine), full verifier
  // rejects at invoke.
  CodeBuilder B(CF.CP);
  B.pushInt(0);
  B.storeLocal('i', 0); // Overwrites the String[] arg slot with an int.
  B.loadLocal('a', 0);  // Loads it back as a reference: type error.
  B.emit(OP_pop);
  B.emit(OP_return);
  Main->Code->Code = B.build();
  Main->Code->MaxStack = 1;
  JvmResult R =
      runOn(makeJ9Policy(), {{"LazyMain", serialize(CF)}}, "LazyMain");
  EXPECT_FALSE(R.Invoked);
  EXPECT_EQ(R.Error, JvmErrorKind::VerifyError);
  EXPECT_EQ(encodePhase(R), 2)
      << "VerifyError canonicalizes to the linking phase";
}

TEST(Encoding, ResolutionErrorDuringExecutionIsLinkingKind) {
  // NoSuchMethodError raised while main executes still encodes as 2.
  ClassFile CF = makeHelloClass("LateResolve");
  MethodInfo *Main = CF.findMethod("main", "([Ljava/lang/String;)V");
  CodeBuilder B(CF.CP);
  B.invokeStatic("java/lang/Math", "noSuch", "()V");
  B.emit(OP_return);
  Main->Code->Code = B.build();
  JvmResult R = runOn(makeHotSpot8Policy(),
                      {{"LateResolve", serialize(CF)}}, "LateResolve");
  EXPECT_EQ(R.Error, JvmErrorKind::NoSuchMethodError);
  EXPECT_EQ(encodePhase(R), 2);
}

TEST(Encoding, MissingClassAtRuntimeStaysRuntime) {
  // NoClassDefFoundError is listed under both loading and initializing
  // in Table 1: it keeps the phase it occurred in.
  ClassFile CF = makeHelloClass("LateMissing");
  MethodInfo *Main = CF.findMethod("main", "([Ljava/lang/String;)V");
  CodeBuilder B(CF.CP);
  B.pushNull();
  B.instanceOf("really/not/There");
  B.emit(OP_pop);
  B.emit(OP_return);
  Main->Code->Code = B.build();
  JvmResult R = runOn(makeHotSpot8Policy(),
                      {{"LateMissing", serialize(CF)}}, "LateMissing");
  EXPECT_EQ(R.Error, JvmErrorKind::NoClassDefFoundError);
  EXPECT_EQ(encodePhase(R), 4)
      << "execution-time resolution failure stays a runtime rejection";
}

TEST(Encoding, ExceptionInInitializerCanonicalizesToInit) {
  // Initialization is triggered lazily by the first getstatic during
  // execution; the error still encodes as 3.
  ClassFile Holder = makeHelloClass("ThrowingHolder");
  Holder.Methods.pop_back();
  FieldInfo F;
  F.Name = "V";
  F.Descriptor = "I";
  F.AccessFlags = ACC_PUBLIC | ACC_STATIC;
  Holder.Fields.push_back(std::move(F));
  {
    MethodInfo Clinit;
    Clinit.Name = "<clinit>";
    Clinit.Descriptor = "()V";
    Clinit.AccessFlags = ACC_STATIC;
    CodeBuilder B(Holder.CP);
    B.pushInt(1);
    B.pushInt(0);
    B.emit(OP_idiv);
    B.emit(OP_pop);
    B.emit(OP_return);
    CodeAttr Code;
    Code.MaxStack = 2;
    Code.MaxLocals = 0;
    Code.Code = B.build();
    Clinit.Code = std::move(Code);
    Holder.Methods.push_back(std::move(Clinit));
  }
  ClassFile User = makeHelloClass("InitUser");
  MethodInfo *Main = User.findMethod("main", "([Ljava/lang/String;)V");
  CodeBuilder B(User.CP);
  B.getStatic("ThrowingHolder", "V", "I");
  B.emit(OP_pop);
  B.emit(OP_return);
  Main->Code->Code = B.build();
  JvmResult R = runOn(makeHotSpot8Policy(),
                      {{"ThrowingHolder", serialize(Holder)},
                       {"InitUser", serialize(User)}},
                      "InitUser");
  EXPECT_EQ(R.Error, JvmErrorKind::ExceptionInInitializerError);
  EXPECT_EQ(encodePhase(R), 3);
}

TEST(Encoding, PhaseCodeNamesCoverEveryCode) {
  // Report legends are generated from phaseCodeName, so every code in
  // [0, NumPhaseCodes) must have a non-placeholder label and codes 1-3
  // share the "rejected while ..." startup-rejection wording.
  ASSERT_EQ(NumPhaseCodes, 5);
  for (int Code = 0; Code != NumPhaseCodes; ++Code) {
    std::string Name = phaseCodeName(Code);
    EXPECT_FALSE(Name.empty()) << "code " << Code;
    EXPECT_EQ(Name.find('?'), std::string::npos) << "code " << Code;
  }
  EXPECT_EQ(std::string(phaseCodeName(0)), "normally invoked");
  EXPECT_NE(std::string(phaseCodeName(2)).find("rejected"),
            std::string::npos);
}
