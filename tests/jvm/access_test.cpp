//===- tests/jvm/access_test.cpp -------------------------------------------===//
//
// ConstantValue preparation and member access control at resolution --
// two linking-phase behaviors with policy-dependent leniency.
//
//===----------------------------------------------------------------------===//

#include "../TestHelpers.h"
#include "classfile/ClassReader.h"
#include "jvm/Phase.h"
#include "jir/Jir.h"

#include <gtest/gtest.h>

using namespace classfuzz;
using namespace classfuzz::testhelpers;

namespace {

ClassFile withConstantField(const std::string &Name, char Kind) {
  ClassFile CF = makeHelloClass(Name);
  FieldInfo F;
  F.Name = "K";
  F.AccessFlags = ACC_PUBLIC | ACC_STATIC | ACC_FINAL;
  FieldConstant CV;
  CV.Kind = Kind;
  switch (Kind) {
  case 'i':
    F.Descriptor = "I";
    CV.IntValue = 4711;
    break;
  case 'j':
    F.Descriptor = "J";
    CV.IntValue = 1LL << 40;
    break;
  case 'd':
    F.Descriptor = "D";
    CV.FpValue = 2.5;
    break;
  default:
    F.Descriptor = "Ljava/lang/String;";
    CV.StrValue = "constant!";
    break;
  }
  F.ConstantValue = CV;
  CF.Fields.push_back(std::move(F));
  return CF;
}

} // namespace

TEST(ConstantValue, RoundTripsThroughTheClassfile) {
  Bytes Data = serialize(withConstantField("CV", 'i'));
  auto CF = parseClassFile(Data);
  ASSERT_TRUE(CF.ok()) << CF.error();
  const FieldInfo *F = CF->findField("K");
  ASSERT_NE(F, nullptr);
  ASSERT_TRUE(F->ConstantValue.has_value());
  EXPECT_EQ(F->ConstantValue->Kind, 'i');
  EXPECT_EQ(F->ConstantValue->IntValue, 4711);
}

TEST(ConstantValue, StringConstantRoundTrips) {
  Bytes Data = serialize(withConstantField("CVS", 's'));
  auto CF = parseClassFile(Data);
  ASSERT_TRUE(CF.ok());
  ASSERT_TRUE(CF->findField("K")->ConstantValue.has_value());
  EXPECT_EQ(CF->findField("K")->ConstantValue->StrValue, "constant!");
}

TEST(ConstantValue, InitializesStaticWithoutClinit) {
  // Main prints K; the class has no <clinit>, so the 4711 must come
  // from preparation.
  ClassFile CF = withConstantField("CVRead", 'i');
  MethodInfo *Main = CF.findMethod("main", "([Ljava/lang/String;)V");
  CodeBuilder B(CF.CP);
  B.getStatic("java/lang/System", "out", "Ljava/io/PrintStream;");
  B.getStatic("CVRead", "K", "I");
  B.invokeVirtual("java/io/PrintStream", "println", "(I)V");
  B.emit(OP_return);
  Main->Code->Code = B.build();
  JvmResult R =
      runOn(makeHotSpot8Policy(), {{"CVRead", serialize(CF)}}, "CVRead");
  ASSERT_TRUE(R.Invoked) << R.toString();
  EXPECT_EQ(R.Output[0], "4711");
}

TEST(ConstantValue, SurvivesJirRoundTrip) {
  Bytes Data = serialize(withConstantField("CVJir", 'd'));
  auto J = lowerClassBytes(Data);
  ASSERT_TRUE(J.ok());
  auto Out = assembleToBytes(*J);
  ASSERT_TRUE(Out.ok());
  auto CF = parseClassFile(*Out);
  ASSERT_TRUE(CF.ok());
  ASSERT_TRUE(CF->findField("K")->ConstantValue.has_value());
  EXPECT_EQ(CF->findField("K")->ConstantValue->Kind, 'd');
  EXPECT_DOUBLE_EQ(CF->findField("K")->ConstantValue->FpValue, 2.5);
}

namespace {

/// Two classes in different packages: pkga/Holder with a member of the
/// given flags, and Caller accessing it from the default package.
std::vector<std::pair<std::string, Bytes>>
makeCrossPackagePair(uint16_t MemberFlags, bool FieldNotMethod) {
  ClassFile Holder = makeHelloClass("pkga/Holder");
  Holder.Methods.pop_back(); // no main needed
  if (FieldNotMethod) {
    FieldInfo F;
    F.Name = "secret";
    F.Descriptor = "I";
    F.AccessFlags = static_cast<uint16_t>(MemberFlags | ACC_STATIC);
    Holder.Fields.push_back(std::move(F));
  } else {
    MethodInfo M;
    M.Name = "secret";
    M.Descriptor = "()V";
    M.AccessFlags = static_cast<uint16_t>(MemberFlags | ACC_STATIC);
    CodeAttr Code;
    Code.MaxStack = 0;
    Code.MaxLocals = 0;
    Code.Code = {OP_return};
    M.Code = std::move(Code);
    Holder.Methods.push_back(std::move(M));
  }

  ClassFile Caller = makeHelloClass("Caller");
  MethodInfo *Main = Caller.findMethod("main", "([Ljava/lang/String;)V");
  CodeBuilder B(Caller.CP);
  if (FieldNotMethod) {
    B.getStatic("pkga/Holder", "secret", "I");
    B.emit(OP_pop);
  } else {
    B.invokeStatic("pkga/Holder", "secret", "()V");
  }
  B.emit(OP_return);
  Main->Code->Code = B.build();
  Main->Code->MaxStack = 1;
  return {{"pkga/Holder", serialize(Holder)},
          {"Caller", serialize(Caller)}};
}

} // namespace

TEST(MemberAccess, PublicCrossPackageAllowed) {
  auto Classes = makeCrossPackagePair(ACC_PUBLIC, /*Field=*/true);
  JvmResult R = runOn(makeHotSpot8Policy(), Classes, "Caller");
  EXPECT_TRUE(R.Invoked) << R.toString();
}

TEST(MemberAccess, PackagePrivateCrossPackageRejected) {
  auto Classes = makeCrossPackagePair(0, /*Field=*/true);
  JvmResult R = runOn(makeHotSpot8Policy(), Classes, "Caller");
  EXPECT_FALSE(R.Invoked);
  EXPECT_EQ(R.Error, JvmErrorKind::IllegalAccessError);
  EXPECT_EQ(encodePhase(R), 2);
}

TEST(MemberAccess, PrivateMethodCrossClassRejected) {
  auto Classes = makeCrossPackagePair(ACC_PRIVATE, /*Field=*/false);
  JvmResult R = runOn(makeHotSpot8Policy(), Classes, "Caller");
  EXPECT_FALSE(R.Invoked);
  EXPECT_EQ(R.Error, JvmErrorKind::IllegalAccessError);
}

TEST(MemberAccess, GijIsLenient) {
  auto Classes = makeCrossPackagePair(ACC_PRIVATE, /*Field=*/false);
  JvmResult R = runOn(makeGijPolicy(), Classes, "Caller");
  EXPECT_TRUE(R.Invoked)
      << "GIJ skips member access control: " << R.toString();
}

TEST(MemberAccess, SameClassPrivateAllowed) {
  // Private members of the class itself are always accessible.
  ClassFile CF = makeHelloClass("SelfAccess");
  MethodInfo M;
  M.Name = "helper";
  M.Descriptor = "()V";
  M.AccessFlags = ACC_PRIVATE | ACC_STATIC;
  CodeAttr Code;
  Code.MaxStack = 0;
  Code.MaxLocals = 0;
  Code.Code = {OP_return};
  M.Code = std::move(Code);
  CF.Methods.push_back(std::move(M));
  MethodInfo *Main = CF.findMethod("main", "([Ljava/lang/String;)V");
  CodeBuilder B(CF.CP);
  B.invokeStatic("SelfAccess", "helper", "()V");
  B.emit(OP_return);
  Main->Code->Code = B.build();
  Main->Code->MaxStack = 0;
  JvmResult R = runOn(makeHotSpot8Policy(),
                      {{"SelfAccess", serialize(CF)}}, "SelfAccess");
  EXPECT_TRUE(R.Invoked) << R.toString();
}
