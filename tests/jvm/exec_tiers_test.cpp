//===- tests/jvm/exec_tiers_test.cpp ---------------------------------------===//
//
// The ExecEngine tier contract (DESIGN.md §13): for any (policy,
// environment, class) the switch, threaded, and baseline tiers produce
// identical JvmResult, abort phase/kind, and coverage traces; the step
// budget is charged uniformly; the baseline code cache evicts and
// recompiles without changing results.
//
//===----------------------------------------------------------------------===//

#include "../TestHelpers.h"
#include "coverage/Tracefile.h"
#include "jvm/ExecEngine.h"
#include "jvm/Phase.h"
#include "mutation/Engine.h"
#include "runtime/SeedCorpus.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace classfuzz;
using namespace classfuzz::testhelpers;

namespace {

constexpr ExecTier AllTiers[] = {ExecTier::Switch, ExecTier::Threaded,
                                 ExecTier::Baseline};

/// One run's observable surface: the full JvmResult plus the coverage
/// trace. Everything the campaign, the acceptance criteria, and the
/// differential encodings can see.
struct TierObservation {
  JvmResult R;
  Tracefile Trace;
};

TierObservation runOnTier(const JvmPolicy &Base, ExecTier Tier,
                          const ClassPath &Env, const std::string &Name) {
  JvmPolicy P = Base;
  P.Tier = Tier;
  P.JitTelemetry = false;
  TierObservation Obs;
  CoverageRecorder Rec;
  Vm Jvm(P, Env, &Rec);
  Obs.R = Jvm.run(Name);
  Obs.Trace = Rec.takeTrace();
  return Obs;
}

/// Asserts the three tiers observed the same world for \p Name.
void expectTierEquivalence(const JvmPolicy &Base, const ClassPath &Env,
                           const std::string &Name) {
  TierObservation Ref = runOnTier(Base, ExecTier::Switch, Env, Name);
  for (ExecTier Tier : {ExecTier::Threaded, ExecTier::Baseline}) {
    TierObservation Obs = runOnTier(Base, Tier, Env, Name);
    EXPECT_EQ(Obs.R.Invoked, Ref.R.Invoked)
        << Name << " on " << execTierName(Tier) << ": " << Obs.R.toString()
        << " vs " << Ref.R.toString();
    EXPECT_EQ(Obs.R.Phase, Ref.R.Phase)
        << Name << " on " << execTierName(Tier);
    EXPECT_EQ(Obs.R.Error, Ref.R.Error)
        << Name << " on " << execTierName(Tier) << ": " << Obs.R.toString()
        << " vs " << Ref.R.toString();
    EXPECT_EQ(Obs.R.Output, Ref.R.Output)
        << Name << " on " << execTierName(Tier);
    EXPECT_EQ(encodePhase(Obs.R), encodePhase(Ref.R))
        << Name << " on " << execTierName(Tier);
    EXPECT_TRUE(Obs.Trace.sameSets(Ref.Trace))
        << Name << " on " << execTierName(Tier) << ": trace differs ("
        << Obs.Trace.stmtCount() << "/" << Obs.Trace.branchCount() << " vs "
        << Ref.Trace.stmtCount() << "/" << Ref.Trace.branchCount() << ")";
  }
}

ClassPath corpusEnv(const JvmPolicy &Policy,
                    const std::vector<SeedClass> &Seeds) {
  ClassPath Env = runtimeLibraryFor(Policy);
  for (const SeedClass &Seed : Seeds) {
    Env.add(Seed.Name, Seed.Data);
    for (const auto &[Name, Data] : Seed.Helpers)
      Env.add(Name, Data);
  }
  return Env;
}

} // namespace

TEST(ExecTiers, NamesRoundTripThroughParse) {
  for (ExecTier Tier : AllTiers) {
    auto Parsed = parseExecTier(execTierName(Tier));
    ASSERT_TRUE(Parsed.has_value()) << execTierName(Tier);
    EXPECT_EQ(*Parsed, Tier);
  }
  EXPECT_FALSE(parseExecTier("jit").has_value());
  EXPECT_FALSE(parseExecTier("").has_value());
}

// The tier contract over a generated seed corpus: every seed produces
// the same result, abort phase/kind, and coverage trace on all three
// tiers.
TEST(ExecTiers, SeedCorpusIsEquivalentAcrossTiers) {
  JvmPolicy Policy = referenceJvmPolicy();
  Rng R(11);
  auto Seeds = generateSeedCorpus(R, 128);
  ClassPath Env = corpusEnv(Policy, Seeds);
  for (const SeedClass &Seed : Seeds)
    expectTierEquivalence(Policy, Env, Seed.Name);
}

// The same contract over mutated (frequently hostile) classfiles: abort
// paths through loading/linking/verification and runtime exceptions
// must also agree tier-to-tier.
TEST(ExecTiers, MutatedCorpusIsEquivalentAcrossTiers) {
  JvmPolicy Policy = referenceJvmPolicy();
  Rng R(12);
  auto Seeds = generateSeedCorpus(R, 16);
  ClassPath Base = corpusEnv(Policy, Seeds);
  std::vector<std::string> Known = Base.names();
  size_t Produced = 0;
  for (size_t I = 0; Produced < 48 && I < 400; ++I) {
    const SeedClass &Seed = Seeds[R.choiceIndex(Seeds.size())];
    size_t MutatorIndex = R.choiceIndex(NumMutators);
    MutationContext Ctx{R, Known};
    MutationOutcome Mutant = mutateClass(Seed.Data, MutatorIndex, Ctx);
    if (!Mutant.Produced)
      continue;
    ++Produced;
    ClassPath Env = Base;
    Env.add(Mutant.ClassName, Mutant.Data);
    expectTierEquivalence(Policy, Env, Mutant.ClassName);
  }
  EXPECT_GE(Produced, 32u) << "mutator stream produced too few mutants "
                              "for the sweep to mean anything";
}

// The step budget is charged once per executed instruction on every
// tier: a tight loop exhausts MaxInterpSteps identically everywhere --
// no tier lets a mutant run longer by tiering up.
TEST(ExecTiers, TightLoopExhaustsStepBudgetUniformly) {
  ClassFile CF = makeHelloClass("Spin");
  MethodInfo *Main = CF.findMethod("main", "([Ljava/lang/String;)V");
  CodeBuilder B(CF.CP);
  auto Head = B.newLabel();
  B.bind(Head);
  B.branch(OP_goto, Head);
  Main->Code->Code = B.build();
  Main->Code->MaxStack = 1;
  Main->Code->MaxLocals = 1;
  Bytes Data = serialize(CF);

  JvmPolicy Policy = referenceJvmPolicy();
  Policy.MaxInterpSteps = 5000;
  ClassPath Env = runtimeLibraryFor(Policy);
  Env.add("Spin", Data);
  for (ExecTier Tier : AllTiers) {
    TierObservation Obs = runOnTier(Policy, Tier, Env, "Spin");
    EXPECT_FALSE(Obs.R.Invoked) << execTierName(Tier);
    EXPECT_EQ(Obs.R.Error, JvmErrorKind::InternalError)
        << execTierName(Tier) << ": " << Obs.R.toString();
    EXPECT_EQ(Obs.R.Message, "interpreter step budget exhausted")
        << execTierName(Tier);
  }
  expectTierEquivalence(Policy, Env, "Spin");
}

// Baseline code cache under capacity pressure: three hot methods in a
// two-entry cache force evictions and recompiles; results match the
// other tiers regardless.
TEST(ExecTiers, BaselineCacheEvictsAndRecompilesUnderPressure) {
  ClassFile CF = makeHelloClass("Hot");
  for (const char *Name : {"a", "b", "c"}) {
    MethodInfo M;
    M.Name = Name;
    M.Descriptor = "(I)I";
    M.AccessFlags = ACC_PUBLIC | ACC_STATIC;
    CodeBuilder B(CF.CP);
    B.loadLocal('i', 0);
    B.pushInt(1);
    B.emit(OP_iadd);
    B.emit(OP_ireturn);
    CodeAttr Code;
    Code.MaxStack = 2;
    Code.MaxLocals = 1;
    Code.Code = B.build();
    M.Code = std::move(Code);
    CF.Methods.push_back(std::move(M));
  }
  MethodInfo *Main = CF.findMethod("main", "([Ljava/lang/String;)V");
  CodeBuilder B(CF.CP);
  // acc = 0; repeat 8x: acc = c(b(a(acc))); print acc (= 24).
  B.pushInt(0);
  B.storeLocal('i', 1);
  B.pushInt(0);
  B.storeLocal('i', 2);
  auto Head = B.newLabel();
  auto Done = B.newLabel();
  B.bind(Head);
  B.loadLocal('i', 2);
  B.pushInt(8);
  B.branch(OP_if_icmpge, Done);
  B.loadLocal('i', 1);
  B.invokeStatic("Hot", "a", "(I)I");
  B.invokeStatic("Hot", "b", "(I)I");
  B.invokeStatic("Hot", "c", "(I)I");
  B.storeLocal('i', 1);
  B.iinc(2, 1);
  B.branch(OP_goto, Head);
  B.bind(Done);
  B.getStatic("java/lang/System", "out", "Ljava/io/PrintStream;");
  B.loadLocal('i', 1);
  B.invokeVirtual("java/io/PrintStream", "println", "(I)V");
  B.emit(OP_return);
  Main->Code->Code = B.build();
  Main->Code->MaxStack = 2;
  Main->Code->MaxLocals = 3;
  Bytes Data = serialize(CF);

  JvmPolicy Tight = referenceJvmPolicy();
  Tight.JitCacheCapacity = 2;
  ClassPath Env = runtimeLibraryFor(Tight);
  Env.add("Hot", Data);

  // Results stay correct under eviction pressure.
  expectTierEquivalence(Tight, Env, "Hot");

  // And the cache really did churn: with three hot methods rotating
  // through two slots, at least one method was compiled more than once.
  JvmPolicy P = Tight;
  P.Tier = ExecTier::Baseline;
  P.JitTelemetry = false;
  Vm Jvm(P, Env, nullptr);
  JvmResult R = Jvm.run("Hot");
  ASSERT_TRUE(R.Invoked) << R.toString();
  EXPECT_EQ(R.Output.back(), "24");
  const JitStats *S = Jvm.engine().jitStats();
  ASSERT_NE(S, nullptr);
  EXPECT_GT(S->Evictions, 0u);
  EXPECT_GT(S->Compiles, 3u)
      << "three methods in a two-entry cache must recompile";

  // A roomy cache compiles each hot method exactly once.
  JvmPolicy Roomy = P;
  Roomy.JitCacheCapacity = 64;
  Vm Jvm2(Roomy, Env, nullptr);
  JvmResult R2 = Jvm2.run("Hot");
  ASSERT_TRUE(R2.Invoked) << R2.toString();
  EXPECT_EQ(R2.Output, R.Output);
  const JitStats *S2 = Jvm2.engine().jitStats();
  ASSERT_NE(S2, nullptr);
  EXPECT_EQ(S2->Evictions, 0u);
  EXPECT_LT(S2->Compiles, S->Compiles);
  EXPECT_GT(S2->CacheHits, 0u);
}

// jitStats() is a baseline-tier concern: the interpreters expose none.
TEST(ExecTiers, OnlyBaselineExposesJitStats) {
  Bytes Hello = serialize(makeHelloClass("Hello"));
  JvmPolicy Policy = referenceJvmPolicy();
  Policy.JitTelemetry = false;
  ClassPath Env = runtimeLibraryFor(Policy);
  Env.add("Hello", Hello);
  for (ExecTier Tier : AllTiers) {
    JvmPolicy P = Policy;
    P.Tier = Tier;
    Vm Jvm(P, Env, nullptr);
    Jvm.run("Hello");
    EXPECT_EQ(Jvm.engine().tier(), Tier);
    EXPECT_EQ(Jvm.engine().jitStats() != nullptr,
              Tier == ExecTier::Baseline)
        << execTierName(Tier);
  }
}
