//===- tests/jvm/opcode_sweep_test.cpp -------------------------------------===//
//
// Parameterized sweeps over opcode families: every arithmetic operator,
// conversion, and conditional branch is executed end-to-end through the
// interpreter and checked against the expected Java semantics, and the
// whole sweep doubles as agreement coverage between verifier and
// interpreter.
//
//===----------------------------------------------------------------------===//

#include "../TestHelpers.h"

#include <gtest/gtest.h>

using namespace classfuzz;
using namespace classfuzz::testhelpers;

namespace {

/// Runs main = { push A; push B; <op>; println; return } on HotSpot 8
/// and returns the printed line.
std::string evalBinary(uint8_t Op, int32_t A, int32_t B) {
  ClassFile CF = makeHelloClass("T");
  MethodInfo *Main = CF.findMethod("main", "([Ljava/lang/String;)V");
  CodeBuilder Builder(CF.CP);
  Builder.getStatic("java/lang/System", "out", "Ljava/io/PrintStream;");
  Builder.pushInt(A);
  Builder.pushInt(B);
  Builder.emit(static_cast<Opcode>(Op));
  Builder.invokeVirtual("java/io/PrintStream", "println", "(I)V");
  Builder.emit(OP_return);
  Main->Code->Code = Builder.build();
  Main->Code->MaxStack = 3;
  JvmResult R = runOn(makeHotSpot8Policy(), {{"T", serialize(CF)}}, "T");
  EXPECT_TRUE(R.Invoked) << opcodeName(Op) << ": " << R.toString();
  return R.Invoked && !R.Output.empty() ? R.Output[0] : "<failed>";
}

std::string evalUnary(uint8_t Op, int32_t A) {
  ClassFile CF = makeHelloClass("T");
  MethodInfo *Main = CF.findMethod("main", "([Ljava/lang/String;)V");
  CodeBuilder Builder(CF.CP);
  Builder.getStatic("java/lang/System", "out", "Ljava/io/PrintStream;");
  Builder.pushInt(A);
  Builder.emit(static_cast<Opcode>(Op));
  Builder.invokeVirtual("java/io/PrintStream", "println", "(I)V");
  Builder.emit(OP_return);
  Main->Code->Code = Builder.build();
  Main->Code->MaxStack = 2;
  JvmResult R = runOn(makeHotSpot8Policy(), {{"T", serialize(CF)}}, "T");
  EXPECT_TRUE(R.Invoked) << opcodeName(Op) << ": " << R.toString();
  return R.Invoked && !R.Output.empty() ? R.Output[0] : "<failed>";
}

struct BinCase {
  uint8_t Op;
  int32_t A;
  int32_t B;
  int32_t Expected;
};

class BinaryOps : public ::testing::TestWithParam<BinCase> {};

TEST_P(BinaryOps, ComputesJavaSemantics) {
  const BinCase &C = GetParam();
  EXPECT_EQ(evalBinary(C.Op, C.A, C.B), std::to_string(C.Expected))
      << opcodeName(C.Op) << "(" << C.A << ", " << C.B << ")";
}

const BinCase BinaryCases[] = {
    {OP_iadd, 3, 4, 7},
    {OP_iadd, INT32_MAX, 1, INT32_MIN}, // Wraparound.
    {OP_isub, 3, 4, -1},
    {OP_imul, -6, 7, -42},
    {OP_imul, 1 << 30, 4, 0}, // Overflow wraps.
    {OP_idiv, 7, 2, 3},
    {OP_idiv, -7, 2, -3}, // Truncation toward zero.
    {OP_idiv, INT32_MIN, -1, INT32_MIN}, // The JVM-defined edge case.
    {OP_irem, 7, 2, 1},
    {OP_irem, -7, 2, -1},
    {OP_irem, INT32_MIN, -1, 0},
    {OP_ishl, 1, 5, 32},
    {OP_ishl, 1, 33, 2}, // Shift count masked to 5 bits.
    {OP_ishr, -8, 1, -4},
    {0x7C /*iushr*/, -8, 1, 0x7FFFFFFC},
    {OP_iand, 0b1100, 0b1010, 0b1000},
    {OP_ior, 0b1100, 0b1010, 0b1110},
    {OP_ixor, 0b1100, 0b1010, 0b0110},
};

INSTANTIATE_TEST_SUITE_P(AllIntBinary, BinaryOps,
                         ::testing::ValuesIn(BinaryCases),
                         [](const auto &Info) {
                           return opcodeName(Info.param.Op) + "_case" +
                                  std::to_string(Info.index);
                         });

struct UnCase {
  uint8_t Op;
  int32_t A;
  int32_t Expected;
};

class UnaryOps : public ::testing::TestWithParam<UnCase> {};

TEST_P(UnaryOps, ComputesJavaSemantics) {
  const UnCase &C = GetParam();
  EXPECT_EQ(evalUnary(C.Op, C.A), std::to_string(C.Expected))
      << opcodeName(C.Op) << "(" << C.A << ")";
}

const UnCase UnaryCases[] = {
    {OP_ineg, 5, -5},
    {OP_ineg, INT32_MIN, INT32_MIN},
    {OP_i2b, 0x181, static_cast<int32_t>(static_cast<int8_t>(0x81))},
    {0x92 /*i2c*/, -1, 0xFFFF},
    {0x93 /*i2s*/, 0x18000, static_cast<int32_t>(
                                static_cast<int16_t>(0x8000))},
};

INSTANTIATE_TEST_SUITE_P(AllIntUnary, UnaryOps,
                         ::testing::ValuesIn(UnaryCases),
                         [](const auto &Info) {
                           return opcodeName(Info.param.Op) + "_case" +
                                  std::to_string(Info.index);
                         });

// --- Conditional branches ---------------------------------------------------

struct BranchCase {
  uint8_t Op;
  int32_t A;
  int32_t B; // Ignored for one-operand branches.
  bool Taken;
  bool Unary;
};

class BranchOps : public ::testing::TestWithParam<BranchCase> {};

TEST_P(BranchOps, BranchDirectionMatchesJava) {
  const BranchCase &C = GetParam();
  ClassFile CF = makeHelloClass("T");
  MethodInfo *Main = CF.findMethod("main", "([Ljava/lang/String;)V");
  CodeBuilder B(CF.CP);
  auto TakenLabel = B.newLabel();
  auto End = B.newLabel();
  B.getStatic("java/lang/System", "out", "Ljava/io/PrintStream;");
  B.pushInt(C.A);
  if (!C.Unary)
    B.pushInt(C.B);
  B.branch(static_cast<Opcode>(C.Op), TakenLabel);
  B.pushInt(0);
  B.branch(OP_goto, End);
  B.bind(TakenLabel);
  B.pushInt(1);
  B.bind(End);
  B.invokeVirtual("java/io/PrintStream", "println", "(I)V");
  B.emit(OP_return);
  Main->Code->Code = B.build();
  Main->Code->MaxStack = 4;
  JvmResult R = runOn(makeHotSpot8Policy(), {{"T", serialize(CF)}}, "T");
  ASSERT_TRUE(R.Invoked) << opcodeName(C.Op) << ": " << R.toString();
  EXPECT_EQ(R.Output[0], C.Taken ? "1" : "0") << opcodeName(C.Op);
}

const BranchCase BranchCases[] = {
    {OP_ifeq, 0, 0, true, true},
    {OP_ifeq, 1, 0, false, true},
    {OP_ifne, 1, 0, true, true},
    {OP_iflt, -1, 0, true, true},
    {OP_iflt, 0, 0, false, true},
    {OP_ifge, 0, 0, true, true},
    {OP_ifgt, 1, 0, true, true},
    {OP_ifle, 1, 0, false, true},
    {OP_if_icmpeq, 3, 3, true, false},
    {OP_if_icmpne, 3, 3, false, false},
    {OP_if_icmplt, 2, 3, true, false},
    {OP_if_icmpge, 3, 3, true, false},
    {OP_if_icmpgt, 4, 3, true, false},
    {OP_if_icmple, 4, 3, false, false},
};

INSTANTIATE_TEST_SUITE_P(AllBranches, BranchOps,
                         ::testing::ValuesIn(BranchCases),
                         [](const auto &Info) {
                           return opcodeName(Info.param.Op) + "_case" +
                                  std::to_string(Info.index);
                         });

// --- Invalid-code families: verifier rejection sweep ------------------------

struct InvalidCase {
  const char *Name;
  Bytes Code;
  uint16_t MaxStack;
  uint16_t MaxLocals;
};

class InvalidCode : public ::testing::TestWithParam<InvalidCase> {};

TEST_P(InvalidCode, RejectedByEveryEagerVerifier) {
  const InvalidCase &C = GetParam();
  ClassFile CF = makeHelloClass("T");
  MethodInfo *Main = CF.findMethod("main", "([Ljava/lang/String;)V");
  Main->Code->Code = C.Code;
  Main->Code->MaxStack = C.MaxStack;
  Main->Code->MaxLocals = C.MaxLocals;
  Bytes Data = serialize(CF);
  for (const JvmPolicy &P : {makeHotSpot8Policy(), makeGijPolicy()}) {
    JvmResult R = runOn(P, {{"T", Data}}, "T");
    EXPECT_FALSE(R.Invoked) << C.Name << " on " << P.Name;
    EXPECT_EQ(R.Error, JvmErrorKind::VerifyError)
        << C.Name << " on " << P.Name << ": " << R.toString();
  }
}

const InvalidCase InvalidCases[] = {
    {"empty_code", {}, 0, 1},
    {"falls_off_end", {OP_nop}, 0, 1},
    {"underflow", {OP_pop, OP_return}, 1, 1},
    {"overflow", {OP_iconst_0, OP_iconst_0, OP_return}, 1, 1},
    {"branch_into_operand", {OP_goto, 0x00, 0x01, OP_return}, 0, 1},
    {"undefined_opcode", {0xF7, OP_return}, 0, 1},
    {"truncated_operand", {OP_sipush, 0x01}, 1, 1},
    {"wrong_return_kind", {OP_iconst_0, OP_ireturn}, 1, 1},
    {"athrow_int", {OP_iconst_0, OP_athrow}, 1, 1},
    {"bad_local_kind",
     {OP_iconst_0, OP_istore_0, OP_aload_0, OP_pop, OP_return},
     1,
     1},
    {"jsr_rejected", {OP_jsr, 0x00, 0x03, OP_return}, 1, 1},
};

INSTANTIATE_TEST_SUITE_P(Families, InvalidCode,
                         ::testing::ValuesIn(InvalidCases),
                         [](const auto &Info) {
                           return std::string(Info.param.Name);
                         });

} // namespace
