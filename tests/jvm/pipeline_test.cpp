//===- tests/jvm/pipeline_test.cpp -----------------------------------------===//
//
// End-to-end startup pipeline tests: loading, linking, initialization,
// and invocation, across all five JVM profiles.
//
//===----------------------------------------------------------------------===//

#include "../TestHelpers.h"
#include "classfile/ClassReader.h"
#include "jvm/Phase.h"

#include <gtest/gtest.h>

using namespace classfuzz;
using namespace classfuzz::testhelpers;

namespace {

class AllProfiles : public ::testing::TestWithParam<int> {
protected:
  JvmPolicy policy() const { return allJvmPolicies()[GetParam()]; }
};

} // namespace

TEST_P(AllProfiles, HelloClassRunsEverywhere) {
  Bytes Hello = serialize(makeHelloClass("Hello"));
  JvmResult R = runOn(policy(), {{"Hello", Hello}}, "Hello");
  ASSERT_TRUE(R.Invoked) << policy().Name << ": " << R.toString();
  ASSERT_EQ(R.Output.size(), 1u);
  EXPECT_EQ(R.Output[0], "Completed!");
  EXPECT_EQ(encodePhase(R), 0);
}

TEST_P(AllProfiles, MissingClassIsLoadingError) {
  JvmResult R = runOn(policy(), {}, "NoSuchClass");
  EXPECT_FALSE(R.Invoked);
  EXPECT_EQ(R.Error, JvmErrorKind::NoClassDefFoundError);
  EXPECT_EQ(encodePhase(R), 1);
}

TEST_P(AllProfiles, MissingSuperclassIsLoadingError) {
  ClassFile CF = makeHelloClass("Orphan");
  CF.SuperClass = "does/not/Exist";
  JvmResult R = runOn(policy(), {{"Orphan", serialize(CF)}}, "Orphan");
  EXPECT_FALSE(R.Invoked);
  EXPECT_EQ(R.Error, JvmErrorKind::NoClassDefFoundError);
}

TEST_P(AllProfiles, CircularHierarchyDetected) {
  ClassFile A = makeHelloClass("CircA");
  A.SuperClass = "CircB";
  ClassFile B = makeHelloClass("CircB");
  B.SuperClass = "CircA";
  JvmResult R = runOn(
      policy(), {{"CircA", serialize(A)}, {"CircB", serialize(B)}},
      "CircA");
  EXPECT_FALSE(R.Invoked);
  EXPECT_EQ(R.Error, JvmErrorKind::ClassCircularityError);
  EXPECT_EQ(encodePhase(R), 1);
}

TEST_P(AllProfiles, WrongNameClassRejected) {
  Bytes Hello = serialize(makeHelloClass("RealName"));
  JvmResult R = runOn(policy(), {{"FileName", Hello}}, "FileName");
  EXPECT_FALSE(R.Invoked);
  EXPECT_EQ(R.Error, JvmErrorKind::NoClassDefFoundError);
}

TEST_P(AllProfiles, GarbageBytesAreClassFormatError) {
  Bytes Garbage = {0xCA, 0xFE, 0xBA, 0xBE, 0x00};
  JvmResult R = runOn(policy(), {{"Garbage", Garbage}}, "Garbage");
  EXPECT_FALSE(R.Invoked);
  EXPECT_EQ(R.Error, JvmErrorKind::ClassFormatError);
  EXPECT_EQ(encodePhase(R), 1);
}

static std::string
profileName(const ::testing::TestParamInfo<int> &Info) {
  static const char *Names[] = {"HotSpot7", "HotSpot8", "HotSpot9", "J9",
                                "GIJ"};
  return Names[Info.param];
}

INSTANTIATE_TEST_SUITE_P(FiveJvms, AllProfiles, ::testing::Range(0, 5),
                         profileName);

TEST(Pipeline, UnsupportedVersionRejectedByOldJvms) {
  ClassFile CF = makeHelloClass("New");
  CF.MajorVersion = MajorVersionJava8; // 52
  Bytes Data = serialize(CF);
  // HotSpot7 (max 51) and GIJ (max 51) reject; HotSpot8 runs it.
  JvmResult OnHs7 = runOn(makeHotSpot7Policy(), {{"New", Data}}, "New");
  EXPECT_EQ(OnHs7.Error, JvmErrorKind::UnsupportedClassVersionError);
  JvmResult OnGij = runOn(makeGijPolicy(), {{"New", Data}}, "New");
  EXPECT_EQ(OnGij.Error, JvmErrorKind::UnsupportedClassVersionError);
  JvmResult OnHs8 = runOn(makeHotSpot8Policy(), {{"New", Data}}, "New");
  EXPECT_TRUE(OnHs8.Invoked) << OnHs8.toString();
}

TEST(Pipeline, MainMethodMissingIsRuntimePhase) {
  ClassFile CF = makeHelloClass("NoMain");
  CF.Methods.pop_back(); // Drop main, keep <init>.
  JvmResult R =
      runOn(makeHotSpot8Policy(), {{"NoMain", serialize(CF)}}, "NoMain");
  EXPECT_FALSE(R.Invoked);
  EXPECT_EQ(R.Error, JvmErrorKind::MainMethodNotFound);
  EXPECT_EQ(encodePhase(R), 4);
}

TEST(Pipeline, NonStaticMainRejectedExceptOnGij) {
  ClassFile CF = makeHelloClass("InstMain");
  CF.findMethod("main", "([Ljava/lang/String;)V")->AccessFlags =
      ACC_PUBLIC; // drop static
  // With an instance main the receiver occupies slot 0; give locals room.
  CF.findMethod("main", "([Ljava/lang/String;)V")->Code->MaxLocals = 2;
  Bytes Data = serialize(CF);
  JvmResult OnHs = runOn(makeHotSpot8Policy(), {{"InstMain", Data}},
                         "InstMain");
  EXPECT_EQ(OnHs.Error, JvmErrorKind::MainMethodNotFound);
  JvmResult OnGij = runOn(makeGijPolicy(), {{"InstMain", Data}},
                          "InstMain");
  EXPECT_TRUE(OnGij.Invoked) << OnGij.toString();
}

TEST(Pipeline, ClinitRunsBeforeMain) {
  // Static COUNTER initialized in <clinit>, printed by main.
  ClassFile CF = makeHelloClass("WithClinit");
  FieldInfo F;
  F.Name = "COUNTER";
  F.Descriptor = "I";
  F.AccessFlags = ACC_PUBLIC | ACC_STATIC;
  CF.Fields.push_back(F);
  {
    MethodInfo M;
    M.Name = "<clinit>";
    M.Descriptor = "()V";
    M.AccessFlags = ACC_STATIC;
    CodeBuilder B(CF.CP);
    B.pushInt(77);
    B.putStatic("WithClinit", "COUNTER", "I");
    B.emit(OP_return);
    CodeAttr Code;
    Code.MaxStack = 1;
    Code.MaxLocals = 0;
    Code.Code = B.build();
    M.Code = std::move(Code);
    CF.Methods.push_back(std::move(M));
  }
  // Replace main to print COUNTER.
  MethodInfo *Main = CF.findMethod("main", "([Ljava/lang/String;)V");
  CodeBuilder B(CF.CP);
  B.getStatic("java/lang/System", "out", "Ljava/io/PrintStream;");
  B.getStatic("WithClinit", "COUNTER", "I");
  B.invokeVirtual("java/io/PrintStream", "println", "(I)V");
  B.emit(OP_return);
  Main->Code->Code = B.build();

  JvmResult R = runOn(makeHotSpot8Policy(),
                      {{"WithClinit", serialize(CF)}}, "WithClinit");
  ASSERT_TRUE(R.Invoked) << R.toString();
  ASSERT_EQ(R.Output.size(), 1u);
  EXPECT_EQ(R.Output[0], "77");
}

TEST(Pipeline, ThrowingClinitIsInitializationError) {
  ClassFile CF = makeHelloClass("BadInit");
  MethodInfo M;
  M.Name = "<clinit>";
  M.Descriptor = "()V";
  M.AccessFlags = ACC_STATIC;
  CodeBuilder B(CF.CP);
  B.pushInt(1);
  B.pushInt(0);
  B.emit(OP_idiv); // ArithmeticException during initialization.
  B.emit(OP_pop);
  B.emit(OP_return);
  CodeAttr Code;
  Code.MaxStack = 2;
  Code.MaxLocals = 0;
  Code.Code = B.build();
  M.Code = std::move(Code);
  CF.Methods.push_back(std::move(M));

  JvmResult R = runOn(makeHotSpot8Policy(),
                      {{"BadInit", serialize(CF)}}, "BadInit");
  EXPECT_FALSE(R.Invoked);
  EXPECT_EQ(R.Error, JvmErrorKind::ExceptionInInitializerError);
  EXPECT_EQ(encodePhase(R), 3);
}

TEST(Pipeline, FinalSuperclassRejectedWhereChecked) {
  ClassFile CF = makeHelloClass("SubOfString");
  CF.SuperClass = "java/lang/String"; // final in every library version.
  Bytes Data = serialize(CF);
  JvmResult OnHs = runOn(makeHotSpot8Policy(), {{"SubOfString", Data}},
                         "SubOfString");
  EXPECT_EQ(OnHs.Error, JvmErrorKind::VerifyError);
  EXPECT_EQ(encodePhase(OnHs), 2);
  JvmResult OnGij =
      runOn(makeGijPolicy(), {{"SubOfString", Data}}, "SubOfString");
  EXPECT_TRUE(OnGij.Invoked) << "GIJ does not check final superclasses";
}

TEST(Pipeline, ClassWithInterfaceSuperclassIsIncompatible) {
  ClassFile CF = makeHelloClass("SubOfIface");
  CF.SuperClass = "java/lang/Runnable";
  JvmResult R = runOn(makeHotSpot8Policy(),
                      {{"SubOfIface", serialize(CF)}}, "SubOfIface");
  EXPECT_FALSE(R.Invoked);
  EXPECT_EQ(R.Error, JvmErrorKind::IncompatibleClassChangeError);
}

TEST(Pipeline, UncaughtUserExceptionIsRuntimeOutcome) {
  ClassFile CF = makeHelloClass("Thrower");
  MethodInfo *Main = CF.findMethod("main", "([Ljava/lang/String;)V");
  CodeBuilder B(CF.CP);
  B.newObject("java/lang/RuntimeException");
  B.emit(OP_dup);
  B.invokeSpecial("java/lang/RuntimeException", "<init>", "()V");
  B.emit(OP_athrow);
  Main->Code->Code = B.build();
  Main->Code->MaxStack = 2;
  JvmResult R = runOn(makeHotSpot8Policy(), {{"Thrower", serialize(CF)}},
                      "Thrower");
  EXPECT_FALSE(R.Invoked);
  EXPECT_EQ(R.Error, JvmErrorKind::UserException);
  EXPECT_EQ(encodePhase(R), 4);
}

TEST(Pipeline, EnvironmentSkewProducesCompatibilityDiscrepancy) {
  // A class whose superclass exists in jre8 but not in jre9 (sun/*
  // removal): HotSpot8 runs it, HotSpot9 cannot load it (Definition 1
  // discrepancy caused by e1 != e2).
  ClassFile CF = makeHelloClass("UsesSunInternal");
  CF.SuperClass = "sun/misc/BASE64Encoder";
  Bytes Data = serialize(CF);
  JvmResult OnHs8 = runOn(makeHotSpot8Policy(),
                          {{"UsesSunInternal", Data}}, "UsesSunInternal");
  EXPECT_TRUE(OnHs8.Invoked) << OnHs8.toString();
  JvmResult OnHs9 = runOn(makeHotSpot9Policy(),
                          {{"UsesSunInternal", Data}}, "UsesSunInternal");
  EXPECT_EQ(OnHs9.Error, JvmErrorKind::NoClassDefFoundError);
}
