//===- tests/jvm/policy_test.cpp -------------------------------------------===//
//
// The five JVM profiles of Table 3 and their documented differences.
//
//===----------------------------------------------------------------------===//

#include "jvm/Policy.h"

#include <gtest/gtest.h>

using namespace classfuzz;

TEST(Policy, FiveProfilesInPaperOrder) {
  auto All = allJvmPolicies();
  ASSERT_EQ(All.size(), 5u);
  EXPECT_EQ(All[0].Name, "HotSpot for Java 7");
  EXPECT_EQ(All[1].Name, "HotSpot for Java 8");
  EXPECT_EQ(All[2].Name, "HotSpot for Java 9");
  EXPECT_EQ(All[3].Name, "J9 for IBM SDK8");
  EXPECT_EQ(All[4].Name, "GIJ 5.1.0");
}

TEST(Policy, ReferenceJvmIsHotSpot9) {
  EXPECT_EQ(referenceJvmPolicy().Name, "HotSpot for Java 9");
}

TEST(Policy, VersionCeilings) {
  EXPECT_EQ(makeHotSpot7Policy().MaxClassFileMajor, 51);
  EXPECT_EQ(makeHotSpot8Policy().MaxClassFileMajor, 52);
  EXPECT_EQ(makeHotSpot9Policy().MaxClassFileMajor, 53);
  EXPECT_EQ(makeJ9Policy().MaxClassFileMajor, 52);
  // GIJ conforms to 1.5 but processes version-51 classes (Problem 4).
  EXPECT_EQ(makeGijPolicy().MaxClassFileMajor, 51);
}

TEST(Policy, Problem1ClinitStance) {
  EXPECT_FALSE(makeHotSpot8Policy().StrictClinitStatic);
  EXPECT_FALSE(makeHotSpot9Policy().StrictClinitStatic)
      << "the SE 9 clarification HotSpot matches";
  EXPECT_TRUE(makeJ9Policy().StrictClinitStatic);
}

TEST(Policy, Problem2VerificationStances) {
  EXPECT_EQ(makeHotSpot8Policy().Verification, CheckMode::Eager);
  EXPECT_EQ(makeJ9Policy().Verification, CheckMode::Lazy)
      << "J9 verifies a method only when it is invoked";
  EXPECT_TRUE(makeGijPolicy().CheckUninitializedMerge);
  EXPECT_FALSE(makeHotSpot8Policy().CheckUninitializedMerge);
  EXPECT_TRUE(makeGijPolicy().StrictInvokeArgTypes);
  EXPECT_FALSE(makeHotSpot8Policy().StrictInvokeArgTypes);
}

TEST(Policy, Problem3ThrowsAccessibility) {
  EXPECT_TRUE(makeHotSpot8Policy().CheckThrowsAccessibility);
  EXPECT_FALSE(makeJ9Policy().CheckThrowsAccessibility);
  EXPECT_FALSE(makeGijPolicy().CheckThrowsAccessibility);
}

TEST(Policy, Problem4GijLeniency) {
  JvmPolicy Gij = makeGijPolicy();
  EXPECT_FALSE(Gij.CheckInterfaceSuper);
  EXPECT_FALSE(Gij.CheckInterfaceMemberFlags);
  EXPECT_FALSE(Gij.CheckInitShape);
  EXPECT_FALSE(Gij.CheckDuplicateFields);
  EXPECT_TRUE(Gij.AllowInterfaceMain);
  EXPECT_FALSE(Gij.RequireStaticMain);
}

TEST(Policy, RuntimeLibraryAssignment) {
  EXPECT_EQ(makeHotSpot7Policy().RuntimeLib, "jre7");
  EXPECT_EQ(makeHotSpot8Policy().RuntimeLib, "jre8");
  EXPECT_EQ(makeHotSpot9Policy().RuntimeLib, "jre9");
  EXPECT_EQ(makeJ9Policy().RuntimeLib, "jre8");
  EXPECT_EQ(makeGijPolicy().RuntimeLib, "jre5");
}
