//===- tests/jvm/classpath_test.cpp ----------------------------------------===//
//
// The copy-on-write ClassPath: overlay copies must share the frozen base
// without ever leaking writes into it, and the merged view (lookup,
// names, size, fingerprint) must be independent of how the contents are
// layered.
//
//===----------------------------------------------------------------------===//

#include "jvm/ClassPath.h"

#include <gtest/gtest.h>

using namespace classfuzz;

namespace {

Bytes bytesOf(const std::string &S) { return Bytes(S.begin(), S.end()); }

ClassPath makeBase() {
  ClassPath CP;
  CP.add("java/lang/Object", bytesOf("object"));
  CP.add("Seed0", bytesOf("seed0"));
  CP.add("Seed1", bytesOf("seed1"));
  return CP;
}

} // namespace

TEST(ClassPath, OverlayAddDoesNotLeakIntoSharedBase) {
  ClassPath Base = makeBase();
  Base.freeze();

  ClassPath Overlay = Base; // Shares the frozen layer.
  Overlay.add("Mutant", bytesOf("mutant"));

  EXPECT_TRUE(Overlay.has("Mutant"));
  EXPECT_FALSE(Base.has("Mutant")) << "overlay write leaked into the base";
  EXPECT_EQ(Base.size(), 3u);
  EXPECT_EQ(Overlay.size(), 4u);
}

TEST(ClassPath, OverlayReplacementShadowsWithoutMutatingBase) {
  ClassPath Base = makeBase();
  Base.freeze();

  ClassPath Overlay = Base;
  Overlay.add("Seed0", bytesOf("patched"));

  ASSERT_NE(Overlay.lookup("Seed0"), nullptr);
  EXPECT_EQ(*Overlay.lookup("Seed0"), bytesOf("patched"));
  ASSERT_NE(Base.lookup("Seed0"), nullptr);
  EXPECT_EQ(*Base.lookup("Seed0"), bytesOf("seed0"))
      << "replacing a class in the overlay mutated the shared base";
  // Replacement shadows, it does not add a name.
  EXPECT_EQ(Overlay.size(), Base.size());
}

TEST(ClassPath, BaseWritesAfterCopyDoNotLeakIntoOverlay) {
  ClassPath Base = makeBase();
  Base.freeze();
  ClassPath Overlay = Base;

  Base.add("LateClass", bytesOf("late"));
  EXPECT_TRUE(Base.has("LateClass"));
  EXPECT_FALSE(Overlay.has("LateClass"));
}

TEST(ClassPath, CopyWithPendingOverlayIsIndependent) {
  ClassPath A = makeBase(); // Nothing frozen: everything pending.
  ClassPath B = A;
  B.add("OnlyInB", bytesOf("b"));
  A.add("OnlyInA", bytesOf("a"));
  EXPECT_TRUE(A.has("OnlyInA"));
  EXPECT_FALSE(A.has("OnlyInB"));
  EXPECT_TRUE(B.has("OnlyInB"));
  EXPECT_FALSE(B.has("OnlyInA"));
}

TEST(ClassPath, FreezePreservesContentsAndFingerprint) {
  ClassPath Flat = makeBase();
  uint64_t FlatPrint = Flat.fingerprint();
  std::vector<std::string> FlatNames = Flat.names();

  ClassPath Frozen = makeBase();
  Frozen.freeze();
  EXPECT_EQ(Frozen.fingerprint(), FlatPrint)
      << "fingerprint must depend on contents, not layering";
  EXPECT_EQ(Frozen.names(), FlatNames);
  EXPECT_EQ(Frozen.size(), Flat.size());
  for (const std::string &Name : FlatNames) {
    ASSERT_NE(Frozen.lookup(Name), nullptr);
    EXPECT_EQ(*Frozen.lookup(Name), *Flat.lookup(Name));
  }
}

TEST(ClassPath, DeepLayerChainsFlattenAndStayCorrect) {
  // Repeated add+freeze cycles (one per accepted mutant in a campaign)
  // must keep the merged view correct through the periodic flatten.
  ClassPath CP = makeBase();
  CP.freeze();
  for (int I = 0; I != 100; ++I) {
    CP.add("Mutant" + std::to_string(I), bytesOf("m" + std::to_string(I)));
    CP.freeze();
  }
  EXPECT_EQ(CP.size(), 103u);
  EXPECT_LE(CP.layerDepth(), 17u) << "chain depth must be capped";
  for (int I = 0; I != 100; ++I) {
    const Bytes *Data = CP.lookup("Mutant" + std::to_string(I));
    ASSERT_NE(Data, nullptr);
    EXPECT_EQ(*Data, bytesOf("m" + std::to_string(I)));
  }

  // Same contents built flat: identical fingerprint and names.
  ClassPath Flat = makeBase();
  for (int I = 0; I != 100; ++I)
    Flat.add("Mutant" + std::to_string(I), bytesOf("m" + std::to_string(I)));
  EXPECT_EQ(CP.fingerprint(), Flat.fingerprint());
  EXPECT_EQ(CP.names(), Flat.names());
}

TEST(ClassPath, NewestLayerWinsOnReplacement) {
  ClassPath CP;
  CP.add("C", bytesOf("v1"));
  CP.freeze();
  CP.add("C", bytesOf("v2"));
  CP.freeze();
  CP.add("C", bytesOf("v3")); // Pending overlay wins over all layers.
  ASSERT_NE(CP.lookup("C"), nullptr);
  EXPECT_EQ(*CP.lookup("C"), bytesOf("v3"));
  EXPECT_EQ(CP.size(), 1u);
}

TEST(ClassPath, OverlaidWithPrefersOverlayEntries) {
  ClassPath Base = makeBase();
  Base.freeze();
  ClassPath Extra;
  Extra.add("Seed0", bytesOf("replacement"));
  Extra.add("New", bytesOf("new"));

  ClassPath Combined = Base.overlaidWith(Extra);
  EXPECT_EQ(*Combined.lookup("Seed0"), bytesOf("replacement"));
  EXPECT_EQ(*Combined.lookup("New"), bytesOf("new"));
  EXPECT_EQ(*Combined.lookup("Seed1"), bytesOf("seed1"));
  EXPECT_EQ(Combined.size(), 4u);
  // And the operands are untouched.
  EXPECT_EQ(*Base.lookup("Seed0"), bytesOf("seed0"));
  EXPECT_FALSE(Base.has("New"));
}

TEST(ClassPath, EmptyBehaviors) {
  ClassPath CP;
  EXPECT_EQ(CP.size(), 0u);
  EXPECT_EQ(CP.lookup("Missing"), nullptr);
  EXPECT_TRUE(CP.names().empty());
  CP.freeze(); // Freezing nothing is a no-op.
  EXPECT_EQ(CP.layerDepth(), 0u);
}
