//===- tests/jvm/verifier_test.cpp -----------------------------------------===//
//
// Bytecode verifier: structural checks, type dataflow, merge behavior,
// and the Problem 2 policy differences.
//
//===----------------------------------------------------------------------===//

#include "../TestHelpers.h"
#include "classfile/ClassReader.h"
#include "jvm/Verifier.h"

#include <gtest/gtest.h>

using namespace classfuzz;
using namespace classfuzz::testhelpers;

namespace {

/// Builds a one-method class ("T.m") around raw code bytes.
ClassFile makeCodeClass(Bytes Code, uint16_t MaxStack, uint16_t MaxLocals,
                        const std::string &Desc = "()V",
                        uint16_t Flags = ACC_PUBLIC | ACC_STATIC) {
  ClassFile CF;
  CF.ThisClass = "T";
  CF.SuperClass = "java/lang/Object";
  MethodInfo M;
  M.Name = "m";
  M.Descriptor = Desc;
  M.AccessFlags = Flags;
  CodeAttr Attr;
  Attr.MaxStack = MaxStack;
  Attr.MaxLocals = MaxLocals;
  Attr.Code = std::move(Code);
  M.Code = std::move(Attr);
  CF.Methods.push_back(std::move(M));
  return CF;
}

class VerifierTest : public ::testing::Test {
protected:
  VerifierTest() : Lib(buildRuntimeLibrary("jre8")) {
    Lookup = [this](const std::string &Name) -> const ClassFile * {
      auto It = Cache.find(Name);
      if (It != Cache.end())
        return &It->second;
      const Bytes *Data = Lib.lookup(Name);
      if (!Data)
        return nullptr;
      auto Parsed = parseClassFile(*Data);
      if (!Parsed)
        return nullptr;
      return &Cache.emplace(Name, Parsed.take()).first->second;
    };
  }

  std::optional<CheckFailure> verify(const ClassFile &CF,
                                     const JvmPolicy &Policy) {
    return verifyMethod(CF, CF.Methods[0], Policy, Lookup, nullptr);
  }

  ClassPath Lib;
  std::map<std::string, ClassFile> Cache;
  ClassLookupFn Lookup;
};

} // namespace

TEST_F(VerifierTest, AcceptsTrivialReturn) {
  ClassFile CF = makeCodeClass({OP_return}, 0, 0);
  EXPECT_FALSE(verify(CF, makeHotSpot8Policy()).has_value());
}

TEST_F(VerifierTest, RejectsEmptyCode) {
  ClassFile CF = makeCodeClass({}, 0, 0);
  auto F = verify(CF, makeHotSpot8Policy());
  ASSERT_TRUE(F.has_value());
  EXPECT_EQ(F->Kind, JvmErrorKind::VerifyError);
}

TEST_F(VerifierTest, RejectsFallingOffCode) {
  ClassFile CF = makeCodeClass({OP_nop}, 0, 0);
  EXPECT_TRUE(verify(CF, makeHotSpot8Policy()).has_value());
}

TEST_F(VerifierTest, RejectsStackUnderflow) {
  ClassFile CF = makeCodeClass({OP_pop, OP_return}, 1, 0);
  auto F = verify(CF, makeHotSpot8Policy());
  ASSERT_TRUE(F.has_value());
  EXPECT_NE(F->Message.find("underflow"), std::string::npos);
}

TEST_F(VerifierTest, RejectsStackOverflow) {
  ClassFile CF =
      makeCodeClass({OP_iconst_0, OP_iconst_0, OP_return}, 1, 0);
  auto F = verify(CF, makeHotSpot8Policy());
  ASSERT_TRUE(F.has_value());
  EXPECT_NE(F->Message.find("overflow"), std::string::npos);
}

TEST_F(VerifierTest, RejectsBranchIntoOperand) {
  // 0: goto 2 -- offset 2 is the middle of the goto instruction.
  ClassFile CF = makeCodeClass({OP_goto, 0x00, 0x02, OP_return}, 0, 0);
  EXPECT_TRUE(verify(CF, makeHotSpot8Policy()).has_value());
}

TEST_F(VerifierTest, RejectsWrongReturnKind) {
  ClassFile CF = makeCodeClass({OP_iconst_0, OP_ireturn}, 1, 0, "()V");
  auto F = verify(CF, makeHotSpot8Policy());
  ASSERT_TRUE(F.has_value());
  EXPECT_NE(F->Message.find("return"), std::string::npos);
}

TEST_F(VerifierTest, AcceptsIntReturn) {
  ClassFile CF = makeCodeClass({OP_iconst_3, OP_ireturn}, 1, 0, "()I");
  EXPECT_FALSE(verify(CF, makeHotSpot8Policy()).has_value());
}

TEST_F(VerifierTest, RejectsReadingWrongLocalKind) {
  // Store an int, load it as a reference.
  ClassFile CF = makeCodeClass(
      {OP_iconst_0, OP_istore_0, OP_aload_0, OP_pop, OP_return}, 1, 1);
  auto F = verify(CF, makeHotSpot8Policy());
  ASSERT_TRUE(F.has_value());
  EXPECT_EQ(F->Kind, JvmErrorKind::VerifyError);
}

TEST_F(VerifierTest, RejectsLocalIndexOutOfRange) {
  ClassFile CF = makeCodeClass({OP_iload_2, OP_pop, OP_return}, 1, 1);
  EXPECT_TRUE(verify(CF, makeHotSpot8Policy()).has_value());
}

TEST_F(VerifierTest, RejectsArgsExceedingMaxLocals) {
  ClassFile CF = makeCodeClass({OP_return}, 0, 0, "(II)V");
  EXPECT_TRUE(verify(CF, makeHotSpot8Policy()).has_value());
}

TEST_F(VerifierTest, StackShapeInconsistentAtMerge) {
  // Two paths reach offset 6 with different stack depths: the ifeq path
  // arrives empty, the fall-through path pushed an int.
  Bytes Code = {
      OP_iconst_0,              // 0
      OP_ifeq, 0x00, 0x05,      // 1 -> 6
      OP_iconst_1,              // 4
      /*5*/ OP_nop,             // falls into 6 with depth 1
      /*6*/ OP_return,          // join: depth 0 vs 1
  };
  ClassFile CF = makeCodeClass(Code, 2, 0);
  auto F = verify(CF, makeHotSpot8Policy());
  ASSERT_TRUE(F.has_value());
  EXPECT_NE(F->Message.find("stack shape inconsistent"),
            std::string::npos);
}

TEST_F(VerifierTest, AcceptsConsistentDiamond) {
  // if (0) x=1 else x=2; return  -- both arms store an int; built with
  // CodeBuilder for correct offsets.
  ClassFile CF;
  CF.ThisClass = "T";
  CF.SuperClass = "java/lang/Object";
  CodeBuilder B(CF.CP);
  auto Else = B.newLabel();
  auto End = B.newLabel();
  B.pushInt(0);
  B.branch(OP_ifeq, Else);
  B.pushInt(1);
  B.storeLocal('i', 0);
  B.branch(OP_goto, End);
  B.bind(Else);
  B.pushInt(2);
  B.storeLocal('i', 0);
  B.bind(End);
  B.emit(OP_return);
  MethodInfo M;
  M.Name = "m";
  M.Descriptor = "()V";
  M.AccessFlags = ACC_PUBLIC | ACC_STATIC;
  CodeAttr Attr;
  Attr.MaxStack = 1;
  Attr.MaxLocals = 1;
  Attr.Code = B.build();
  M.Code = std::move(Attr);
  CF.Methods.push_back(std::move(M));
  EXPECT_FALSE(verify(CF, makeHotSpot8Policy()).has_value());
}

TEST_F(VerifierTest, Problem2StrictInvokeArgTypes) {
  // Pass a String where java/util/Map is declared (the M1433982529
  // pattern): GIJ rejects, HotSpot accepts.
  ClassFile CF;
  CF.ThisClass = "T";
  CF.SuperClass = "java/lang/Object";
  CodeBuilder B(CF.CP);
  B.pushString("not-a-map");
  B.invokeStatic("java/lang/Boolean", "getBoolean",
                 "(Ljava/util/Map;)Z"); // Mutated parameter type.
  B.emit(OP_pop);
  B.emit(OP_return);
  MethodInfo M;
  M.Name = "m";
  M.Descriptor = "()V";
  M.AccessFlags = ACC_PUBLIC | ACC_STATIC;
  CodeAttr Attr;
  Attr.MaxStack = 1;
  Attr.MaxLocals = 0;
  Attr.Code = B.build();
  M.Code = std::move(Attr);
  CF.Methods.push_back(std::move(M));

  EXPECT_FALSE(verify(CF, makeHotSpot8Policy()).has_value())
      << "HotSpot misses the incompatible reference argument";
  auto OnGij = verify(CF, makeGijPolicy());
  ASSERT_TRUE(OnGij.has_value()) << "GIJ flags the unsafe cast";
  EXPECT_EQ(OnGij->Kind, JvmErrorKind::VerifyError);
}

TEST_F(VerifierTest, Problem2UninitializedMerge) {
  // Merge of an initialized and an uninitialized object: GIJ reports a
  // VerifyError, HotSpot lets it merge to top (and only fails on use).
  ClassFile CF2;
  CF2.ThisClass = "T";
  CF2.SuperClass = "java/lang/Object";
  CodeBuilder B2(CF2.CP);
  auto Else2 = B2.newLabel();
  auto End2 = B2.newLabel();
  B2.pushInt(0);
  B2.branch(OP_ifeq, Else2);
  B2.newObject("java/lang/Object"); // Uninit on this path.
  B2.branch(OP_goto, End2);
  B2.bind(Else2);
  B2.pushString("initialized"); // Ref on this path.
  B2.bind(End2);
  B2.emit(OP_pop);
  B2.emit(OP_return);
  MethodInfo M;
  M.Name = "m";
  M.Descriptor = "()V";
  M.AccessFlags = ACC_PUBLIC | ACC_STATIC;
  CodeAttr Attr;
  Attr.MaxStack = 1;
  Attr.MaxLocals = 0;
  Attr.Code = B2.build();
  M.Code = std::move(Attr);
  CF2.Methods.push_back(std::move(M));

  EXPECT_FALSE(verify(CF2, makeHotSpot8Policy()).has_value());
  auto OnGij = verify(CF2, makeGijPolicy());
  ASSERT_TRUE(OnGij.has_value());
  EXPECT_NE(OnGij->Message.find("uninitialized"), std::string::npos);
}

TEST_F(VerifierTest, RejectsJsrRet) {
  ClassFile CF = makeCodeClass({OP_jsr, 0x00, 0x03, OP_return}, 1, 0);
  EXPECT_TRUE(verify(CF, makeHotSpot8Policy()).has_value());
}

TEST_F(VerifierTest, RejectsUndefinedOpcode) {
  ClassFile CF = makeCodeClass({0xF4, OP_return}, 0, 0);
  EXPECT_TRUE(verify(CF, makeHotSpot8Policy()).has_value());
}

TEST_F(VerifierTest, RejectsLdcOfBadIndex) {
  ClassFile CF = makeCodeClass({OP_ldc, 0x63, OP_pop, OP_return}, 1, 0);
  EXPECT_TRUE(verify(CF, makeHotSpot8Policy()).has_value());
}

TEST_F(VerifierTest, ExceptionHandlerFrameHasThrowable) {
  // try { nop } catch (Throwable t) { astore_0 }; return.
  ClassFile CF;
  CF.ThisClass = "T";
  CF.SuperClass = "java/lang/Object";
  CodeBuilder B(CF.CP);
  auto End = B.newLabel();
  B.emit(OP_nop);                 // 0 (protected)
  B.branch(OP_goto, End);         // 1
  B.storeLocal('a', 0);           // 4: handler
  B.bind(End);
  B.emit(OP_return);              // 5
  MethodInfo M;
  M.Name = "m";
  M.Descriptor = "()V";
  M.AccessFlags = ACC_PUBLIC | ACC_STATIC;
  CodeAttr Attr;
  Attr.MaxStack = 1;
  Attr.MaxLocals = 1;
  Attr.Code = B.build();
  ExceptionTableEntry E;
  E.StartPc = 0;
  E.EndPc = 1;
  E.HandlerPc = 4;
  E.CatchType = "java/lang/Exception";
  Attr.ExceptionTable.push_back(E);
  M.Code = std::move(Attr);
  CF.Methods.push_back(std::move(M));
  EXPECT_FALSE(verify(CF, makeHotSpot8Policy()).has_value());
}

TEST_F(VerifierTest, RejectsMalformedExceptionTable) {
  ClassFile CF = makeCodeClass({OP_nop, OP_return}, 0, 0);
  ExceptionTableEntry E;
  E.StartPc = 0;
  E.EndPc = 0; // start >= end
  E.HandlerPc = 1;
  CF.Methods[0].Code->ExceptionTable.push_back(E);
  EXPECT_TRUE(verify(CF, makeHotSpot8Policy()).has_value());
}

TEST_F(VerifierTest, AbstractMethodVerifiesTrivially) {
  ClassFile CF;
  CF.ThisClass = "T";
  CF.SuperClass = "java/lang/Object";
  MethodInfo M;
  M.Name = "m";
  M.Descriptor = "()V";
  M.AccessFlags = ACC_PUBLIC | ACC_ABSTRACT;
  CF.Methods.push_back(std::move(M));
  EXPECT_FALSE(
      verifyMethod(CF, CF.Methods[0], makeHotSpot8Policy(), Lookup,
                   nullptr)
          .has_value());
}

TEST_F(VerifierTest, IsRefAssignableWalksHierarchy) {
  EXPECT_TRUE(isRefAssignable("java/lang/String", "java/lang/Object",
                              Lookup));
  EXPECT_TRUE(isRefAssignable("java/lang/NullPointerException",
                              "java/lang/Exception", Lookup));
  EXPECT_TRUE(isRefAssignable("java/lang/String", "java/lang/Comparable",
                              Lookup));
  EXPECT_FALSE(isRefAssignable("java/lang/String", "java/util/Map",
                               Lookup));
  EXPECT_FALSE(isRefAssignable("java/lang/Object", "java/lang/String",
                               Lookup));
  EXPECT_TRUE(isRefAssignable("Unknown", "java/lang/Object", Lookup));
  EXPECT_FALSE(isRefAssignable("Unknown", "java/lang/String", Lookup));
}
