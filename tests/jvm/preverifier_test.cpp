//===- tests/jvm/preverifier_test.cpp --------------------------------------===//
//
// The structural pre-verifier (J9's eager pass under lazy full
// verification): depth-only dataflow, max_stack/max_locals limits, and
// the division of labor with the lazy type checker.
//
//===----------------------------------------------------------------------===//

#include "../TestHelpers.h"
#include "jvm/Phase.h"
#include "jvm/Verifier.h"

#include <gtest/gtest.h>

using namespace classfuzz;
using namespace classfuzz::testhelpers;

namespace {

ClassFile makeCodeClass(Bytes Code, uint16_t MaxStack, uint16_t MaxLocals,
                        const std::string &Desc = "()V") {
  ClassFile CF;
  CF.ThisClass = "T";
  CF.SuperClass = "java/lang/Object";
  MethodInfo M;
  M.Name = "m";
  M.Descriptor = Desc;
  M.AccessFlags = ACC_PUBLIC | ACC_STATIC;
  CodeAttr Attr;
  Attr.MaxStack = MaxStack;
  Attr.MaxLocals = MaxLocals;
  Attr.Code = std::move(Code);
  M.Code = std::move(Attr);
  CF.Methods.push_back(std::move(M));
  return CF;
}

std::optional<CheckFailure> preverify(const ClassFile &CF) {
  return verifyMethodStructural(CF, CF.Methods[0], makeJ9Policy(),
                                nullptr);
}

} // namespace

TEST(PreVerifier, AcceptsBalancedCode) {
  ClassFile CF =
      makeCodeClass({OP_iconst_1, OP_iconst_2, OP_iadd, OP_pop,
                     OP_return},
                    2, 0);
  EXPECT_FALSE(preverify(CF).has_value());
}

TEST(PreVerifier, CatchesStackOverflow) {
  ClassFile CF =
      makeCodeClass({OP_iconst_1, OP_iconst_2, OP_pop, OP_pop,
                     OP_return},
                    1, 0); // Needs depth 2, declares 1.
  auto F = preverify(CF);
  ASSERT_TRUE(F.has_value());
  EXPECT_NE(F->Message.find("overflow"), std::string::npos);
}

TEST(PreVerifier, CatchesUnderflow) {
  ClassFile CF = makeCodeClass({OP_pop, OP_return}, 2, 0);
  auto F = preverify(CF);
  ASSERT_TRUE(F.has_value());
  EXPECT_NE(F->Message.find("stack shape inconsistent"),
            std::string::npos);
}

TEST(PreVerifier, CatchesDepthMismatchAtJoin) {
  // One path reaches the join with depth 1, the other with depth 0.
  Bytes Code = {
      OP_iconst_0,         // 0
      OP_ifeq, 0x00, 0x05, // 1 -> 6
      OP_iconst_1,         // 4
      OP_nop,              // 5 (falls into 6 with depth 1)
      OP_return,           // 6 (reached with depth 0 from the branch)
  };
  ClassFile CF = makeCodeClass(Code, 2, 0);
  auto F = preverify(CF);
  ASSERT_TRUE(F.has_value());
  EXPECT_NE(F->Message.find("stack shape inconsistent"),
            std::string::npos);
}

TEST(PreVerifier, CatchesArgsExceedingMaxLocals) {
  ClassFile CF = makeCodeClass({OP_return}, 0, 1, "(II)V");
  auto F = preverify(CF);
  ASSERT_TRUE(F.has_value());
  EXPECT_NE(F->Message.find("max_locals"), std::string::npos);
}

TEST(PreVerifier, CatchesLocalIndexOutOfRange) {
  ClassFile CF = makeCodeClass({OP_iload, 5, OP_pop, OP_return}, 1, 2);
  EXPECT_TRUE(preverify(CF).has_value());
}

TEST(PreVerifier, IgnoresTypeConfusion) {
  // An int stored, loaded as a reference: depth-wise fine; only the
  // full (lazy) verifier rejects it. This is exactly the J9 behavior
  // that lets type-broken-but-uninvoked methods load.
  ClassFile CF = makeCodeClass(
      {OP_iconst_0, OP_istore_0, OP_aload_0, OP_pop, OP_return}, 1, 1);
  EXPECT_FALSE(preverify(CF).has_value());
  // The full verifier does reject it.
  ClassLookupFn NoLookup;
  EXPECT_TRUE(verifyMethod(CF, CF.Methods[0], makeJ9Policy(), NoLookup,
                           nullptr)
                  .has_value());
}

TEST(PreVerifier, HandlerEntryDepthIsOne) {
  // Handler pops the exception: balanced. Protected region is [0, 1).
  ClassFile CF = makeCodeClass(
      {OP_nop, OP_goto, 0x00, 0x04, /*4:*/ OP_pop, OP_return}, 1, 0);
  ExceptionTableEntry E;
  E.StartPc = 0;
  E.EndPc = 1;
  E.HandlerPc = 4;
  CF.Methods[0].Code->ExceptionTable.push_back(E);
  EXPECT_FALSE(preverify(CF).has_value());
}

TEST(PreVerifier, EndToEndJ9RejectsEagerlyHotSpotToo) {
  // A broken-depth method that is never invoked: with the pre-verifier,
  // J9 now rejects it at link time just like HotSpot.
  ClassFile CF = makeHelloClass("Depth");
  MethodInfo M;
  M.Name = "unused";
  M.Descriptor = "()V";
  M.AccessFlags = ACC_PUBLIC | ACC_STATIC;
  CodeAttr Code;
  Code.MaxStack = 0; // iconst_0 needs 1.
  Code.MaxLocals = 0;
  Code.Code = {OP_iconst_0, OP_pop, OP_return};
  M.Code = std::move(Code);
  CF.Methods.push_back(std::move(M));
  Bytes Data = serialize(CF);
  JvmResult OnJ9 = runOn(makeJ9Policy(), {{"Depth", Data}}, "Depth");
  EXPECT_EQ(OnJ9.Error, JvmErrorKind::VerifyError);
  EXPECT_EQ(encodePhase(OnJ9), 2);
}

TEST(PreVerifier, TypeOnlyBreakageStillPassesJ9) {
  // The complementary case: type confusion in an uninvoked method loads
  // fine on J9 (lazy full verification) but not on HotSpot.
  ClassFile CF = makeHelloClass("TypeOnly");
  MethodInfo M;
  M.Name = "unused";
  M.Descriptor = "()V";
  M.AccessFlags = ACC_PUBLIC | ACC_STATIC;
  CodeAttr Code;
  Code.MaxStack = 1;
  Code.MaxLocals = 1;
  Code.Code = {OP_iconst_0, OP_istore_0, OP_aload_0, OP_pop, OP_return};
  M.Code = std::move(Code);
  CF.Methods.push_back(std::move(M));
  Bytes Data = serialize(CF);
  JvmResult OnJ9 =
      runOn(makeJ9Policy(), {{"TypeOnly", Data}}, "TypeOnly");
  EXPECT_TRUE(OnJ9.Invoked) << OnJ9.toString();
  JvmResult OnHs =
      runOn(makeHotSpot8Policy(), {{"TypeOnly", Data}}, "TypeOnly");
  EXPECT_EQ(OnHs.Error, JvmErrorKind::VerifyError);
}
