//===- tests/jvm/interp_test.cpp -------------------------------------------===//
//
// Interpreter behavior: arithmetic, control flow, objects, arrays,
// exceptions, natives, and resource limits.
//
//===----------------------------------------------------------------------===//

#include "../TestHelpers.h"
#include "jvm/Phase.h"

#include <gtest/gtest.h>

using namespace classfuzz;
using namespace classfuzz::testhelpers;

namespace {

/// Builds a class whose main body is produced by \p Emit, then runs it
/// on HotSpot8 and returns the result. \p Table is read after Emit runs,
/// so emitters may fill a table they captured by reference.
template <typename EmitFn>
JvmResult runMain(EmitFn Emit, uint16_t MaxStack = 4,
                  uint16_t MaxLocals = 4,
                  const std::vector<ExceptionTableEntry> &Table = {},
                  JvmPolicy Policy = makeHotSpot8Policy()) {
  ClassFile CF = makeHelloClass("T");
  MethodInfo *Main = CF.findMethod("main", "([Ljava/lang/String;)V");
  CodeBuilder B(CF.CP);
  Emit(B);
  Main->Code->Code = B.build();
  Main->Code->MaxStack = MaxStack;
  Main->Code->MaxLocals = MaxLocals;
  Main->Code->ExceptionTable = Table;
  return runOn(Policy, {{"T", serialize(CF)}}, "T");
}

/// Emits println(int-on-stack).
void printTopInt(CodeBuilder &B) {
  B.invokeVirtual("java/io/PrintStream", "println", "(I)V");
}

void pushOut(CodeBuilder &B) {
  B.getStatic("java/lang/System", "out", "Ljava/io/PrintStream;");
}

} // namespace

TEST(Interp, IntegerArithmetic) {
  JvmResult R = runMain([](CodeBuilder &B) {
    pushOut(B);
    B.pushInt(6);
    B.pushInt(7);
    B.emit(OP_imul);
    printTopInt(B);
    B.emit(OP_return);
  });
  ASSERT_TRUE(R.Invoked) << R.toString();
  ASSERT_EQ(R.Output.size(), 1u);
  EXPECT_EQ(R.Output[0], "42");
}

TEST(Interp, DivisionByZeroThrows) {
  JvmResult R = runMain([](CodeBuilder &B) {
    B.pushInt(1);
    B.pushInt(0);
    B.emit(OP_idiv);
    B.emit(OP_pop);
    B.emit(OP_return);
  });
  EXPECT_FALSE(R.Invoked);
  EXPECT_EQ(R.Error, JvmErrorKind::ArithmeticException);
  EXPECT_EQ(encodePhase(R), 4);
}

TEST(Interp, LoopComputesSum) {
  // sum 0..9 = 45 via backward branch and iinc.
  JvmResult R = runMain([](CodeBuilder &B) {
    B.pushInt(0);
    B.storeLocal('i', 1);
    B.pushInt(0);
    B.storeLocal('i', 2);
    auto Head = B.newLabel();
    auto Done = B.newLabel();
    B.bind(Head);
    B.loadLocal('i', 2);
    B.pushInt(10);
    B.branch(OP_if_icmpge, Done);
    B.loadLocal('i', 1);
    B.loadLocal('i', 2);
    B.emit(OP_iadd);
    B.storeLocal('i', 1);
    B.iinc(2, 1);
    B.branch(OP_goto, Head);
    B.bind(Done);
    pushOut(B);
    B.loadLocal('i', 1);
    printTopInt(B);
    B.emit(OP_return);
  });
  ASSERT_TRUE(R.Invoked) << R.toString();
  EXPECT_EQ(R.Output[0], "45");
}

TEST(Interp, ObjectFieldsRoundTrip) {
  // new T; putfield f=13; getfield f; print.
  ClassFile CF = makeHelloClass("T");
  FieldInfo F;
  F.Name = "f";
  F.Descriptor = "I";
  F.AccessFlags = ACC_PUBLIC;
  CF.Fields.push_back(F);
  MethodInfo *Main = CF.findMethod("main", "([Ljava/lang/String;)V");
  CodeBuilder B(CF.CP);
  B.newObject("T");
  B.emit(OP_dup);
  B.invokeSpecial("T", "<init>", "()V");
  B.storeLocal('a', 1);
  B.loadLocal('a', 1);
  B.pushInt(13);
  B.putField("T", "f", "I");
  pushOut(B);
  B.loadLocal('a', 1);
  B.getField("T", "f", "I");
  printTopInt(B);
  B.emit(OP_return);
  Main->Code->Code = B.build();
  Main->Code->MaxStack = 3;
  Main->Code->MaxLocals = 2;
  JvmResult R = runOn(makeHotSpot8Policy(), {{"T", serialize(CF)}}, "T");
  ASSERT_TRUE(R.Invoked) << R.toString();
  EXPECT_EQ(R.Output[0], "13");
}

TEST(Interp, NullFieldAccessThrowsNpe) {
  JvmResult R = runMain([](CodeBuilder &B) {
    B.pushNull();
    B.getField("T", "f", "I");
    B.emit(OP_pop);
    B.emit(OP_return);
  });
  EXPECT_FALSE(R.Invoked);
  EXPECT_EQ(R.Error, JvmErrorKind::NullPointerException);
}

TEST(Interp, ArrayStoreLoadAndBounds) {
  JvmResult R = runMain([](CodeBuilder &B) {
    B.pushInt(3);
    B.emitU1(OP_newarray, 10);
    B.storeLocal('a', 1);
    B.loadLocal('a', 1);
    B.pushInt(2);
    B.pushInt(99);
    B.emit(OP_iastore);
    pushOut(B);
    B.loadLocal('a', 1);
    B.pushInt(2);
    B.emit(OP_iaload);
    printTopInt(B);
    B.emit(OP_return);
  });
  ASSERT_TRUE(R.Invoked) << R.toString();
  EXPECT_EQ(R.Output[0], "99");
}

TEST(Interp, ArrayIndexOutOfBounds) {
  JvmResult R = runMain([](CodeBuilder &B) {
    B.pushInt(1);
    B.emitU1(OP_newarray, 10);
    B.pushInt(5);
    B.emit(OP_iaload);
    B.emit(OP_pop);
    B.emit(OP_return);
  });
  EXPECT_FALSE(R.Invoked);
  EXPECT_EQ(R.Error, JvmErrorKind::ArrayIndexOutOfBoundsException);
}

TEST(Interp, NegativeArraySize) {
  JvmResult R = runMain([](CodeBuilder &B) {
    B.pushInt(-2);
    B.emitU1(OP_newarray, 10);
    B.emit(OP_pop);
    B.emit(OP_return);
  });
  EXPECT_FALSE(R.Invoked);
  EXPECT_EQ(R.Error, JvmErrorKind::NegativeArraySizeException);
}

TEST(Interp, ArrayLength) {
  JvmResult R = runMain([](CodeBuilder &B) {
    pushOut(B);
    B.pushInt(7);
    B.aNewArray("java/lang/String");
    B.emit(OP_arraylength);
    printTopInt(B);
    B.emit(OP_return);
  });
  ASSERT_TRUE(R.Invoked) << R.toString();
  EXPECT_EQ(R.Output[0], "7");
}

TEST(Interp, CheckcastFailureThrows) {
  JvmResult R = runMain([](CodeBuilder &B) {
    B.pushString("s");
    B.checkCast("java/lang/Thread");
    B.emit(OP_pop);
    B.emit(OP_return);
  });
  EXPECT_FALSE(R.Invoked);
  EXPECT_EQ(R.Error, JvmErrorKind::ClassCastException);
}

TEST(Interp, CheckcastOfNullSucceeds) {
  JvmResult R = runMain([](CodeBuilder &B) {
    B.pushNull();
    B.checkCast("java/lang/Thread");
    B.emit(OP_pop);
    B.emit(OP_return);
  });
  EXPECT_TRUE(R.Invoked) << R.toString();
}

TEST(Interp, InstanceofThroughInterface) {
  JvmResult R = runMain([](CodeBuilder &B) {
    pushOut(B);
    B.pushString("s");
    B.instanceOf("java/lang/Comparable"); // String implements it.
    printTopInt(B);
    B.emit(OP_return);
  });
  ASSERT_TRUE(R.Invoked) << R.toString();
  EXPECT_EQ(R.Output[0], "1");
}

TEST(Interp, TryCatchHandlesThrow) {
  std::vector<ExceptionTableEntry> Table;
  JvmResult R = runMain(
      [&](CodeBuilder &B) {
        uint32_t Start = B.currentOffset();
        B.pushInt(1);
        B.pushInt(0);
        B.emit(OP_idiv);
        B.emit(OP_pop);
        uint32_t End = B.currentOffset();
        auto Out = B.newLabel();
        B.branch(OP_goto, Out);
        uint32_t Handler = B.currentOffset();
        B.storeLocal('a', 1);
        pushOut(B);
        B.pushString("caught");
        B.invokeVirtual("java/io/PrintStream", "println",
                        "(Ljava/lang/String;)V");
        B.bind(Out);
        B.emit(OP_return);
        ExceptionTableEntry E;
        E.StartPc = static_cast<uint16_t>(Start);
        E.EndPc = static_cast<uint16_t>(End);
        E.HandlerPc = static_cast<uint16_t>(Handler);
        E.CatchType = "java/lang/ArithmeticException";
        Table.push_back(E);
      },
      4, 4, Table);
  ASSERT_TRUE(R.Invoked) << R.toString();
  EXPECT_EQ(R.Output[0], "caught");
}

TEST(Interp, CatchTypeMismatchPropagates) {
  std::vector<ExceptionTableEntry> Table;
  ExceptionTableEntry E;
  E.StartPc = 0;
  E.EndPc = 4;
  E.HandlerPc = 6;
  E.CatchType = "java/lang/ClassCastException"; // wrong type
  Table.push_back(E);
  JvmResult R = runMain(
      [&](CodeBuilder &B) {
        B.pushInt(1);  // 0
        B.pushInt(0);  // 1
        B.emit(OP_idiv);    // 2
        B.emit(OP_pop);     // 3
        B.emit(OP_return);  // 4? offsets small enough
        B.emit(OP_nop);     // filler so handler pc 6 exists
        B.storeLocal('a', 1);
        B.emit(OP_return);
      },
      4, 4, Table);
  EXPECT_FALSE(R.Invoked);
  EXPECT_EQ(R.Error, JvmErrorKind::ArithmeticException)
      << "handler with non-matching catch type must not fire";
}

TEST(Interp, VirtualDispatchPicksOverride) {
  // Base.describe -> "base", Sub.describe -> "sub"; call through Base.
  ClassFile Base = makeHelloClass("Base");
  Base.Methods.pop_back(); // drop main
  {
    MethodInfo M;
    M.Name = "describe";
    M.Descriptor = "()Ljava/lang/String;";
    M.AccessFlags = ACC_PUBLIC;
    CodeBuilder B(Base.CP);
    B.pushString("base");
    B.emit(OP_areturn);
    CodeAttr Code;
    Code.MaxStack = 1;
    Code.MaxLocals = 1;
    Code.Code = B.build();
    M.Code = std::move(Code);
    Base.Methods.push_back(std::move(M));
  }
  ClassFile Sub = makeHelloClass("Sub");
  Sub.SuperClass = "Base";
  {
    // Fix <init> to call Base.<init>.
    MethodInfo *Ctor = Sub.findMethod("<init>", "()V");
    CodeBuilder B(Sub.CP);
    B.loadLocal('a', 0);
    B.invokeSpecial("Base", "<init>", "()V");
    B.emit(OP_return);
    Ctor->Code->Code = B.build();
  }
  {
    MethodInfo M;
    M.Name = "describe";
    M.Descriptor = "()Ljava/lang/String;";
    M.AccessFlags = ACC_PUBLIC;
    CodeBuilder B(Sub.CP);
    B.pushString("sub");
    B.emit(OP_areturn);
    CodeAttr Code;
    Code.MaxStack = 1;
    Code.MaxLocals = 1;
    Code.Code = B.build();
    M.Code = std::move(Code);
    Sub.Methods.push_back(std::move(M));
  }
  {
    MethodInfo *Main = Sub.findMethod("main", "([Ljava/lang/String;)V");
    CodeBuilder B(Sub.CP);
    B.newObject("Sub");
    B.emit(OP_dup);
    B.invokeSpecial("Sub", "<init>", "()V");
    B.storeLocal('a', 1);
    B.getStatic("java/lang/System", "out", "Ljava/io/PrintStream;");
    B.loadLocal('a', 1);
    B.invokeVirtual("Base", "describe", "()Ljava/lang/String;");
    B.invokeVirtual("java/io/PrintStream", "println",
                    "(Ljava/lang/String;)V");
    B.emit(OP_return);
    Main->Code->Code = B.build();
    Main->Code->MaxStack = 3;
    Main->Code->MaxLocals = 2;
  }
  JvmResult R = runOn(
      makeHotSpot8Policy(),
      {{"Base", serialize(Base)}, {"Sub", serialize(Sub)}}, "Sub");
  ASSERT_TRUE(R.Invoked) << R.toString();
  EXPECT_EQ(R.Output[0], "sub");
}

TEST(Interp, MissingFieldIsNoSuchFieldError) {
  JvmResult R = runMain([](CodeBuilder &B) {
    B.getStatic("java/lang/System", "nonexistent", "I");
    B.emit(OP_pop);
    B.emit(OP_return);
  });
  EXPECT_FALSE(R.Invoked);
  EXPECT_EQ(R.Error, JvmErrorKind::NoSuchFieldError);
  EXPECT_EQ(encodePhase(R), 2) << "resolution errors are linking kind";
}

TEST(Interp, MissingMethodIsNoSuchMethodError) {
  JvmResult R = runMain([](CodeBuilder &B) {
    B.invokeStatic("java/lang/Math", "nonexistent", "()V");
    B.emit(OP_return);
  });
  EXPECT_FALSE(R.Invoked);
  EXPECT_EQ(R.Error, JvmErrorKind::NoSuchMethodError);
}

TEST(Interp, InstantiatingInterfaceFails) {
  JvmResult R = runMain([](CodeBuilder &B) {
    B.newObject("java/lang/Runnable");
    B.emit(OP_pop);
    B.emit(OP_return);
  });
  EXPECT_FALSE(R.Invoked);
  EXPECT_EQ(R.Error, JvmErrorKind::InstantiationError);
}

TEST(Interp, InfiniteLoopHitsStepBudget) {
  JvmResult R = runMain([](CodeBuilder &B) {
    auto Head = B.newLabel();
    B.bind(Head);
    B.branch(OP_goto, Head);
  });
  EXPECT_FALSE(R.Invoked);
  EXPECT_EQ(R.Error, JvmErrorKind::InternalError);
}

TEST(Interp, DeepRecursionHitsCallDepth) {
  ClassFile CF = makeHelloClass("Rec");
  {
    MethodInfo M;
    M.Name = "rec";
    M.Descriptor = "()V";
    M.AccessFlags = ACC_PUBLIC | ACC_STATIC;
    CodeBuilder B(CF.CP);
    B.invokeStatic("Rec", "rec", "()V");
    B.emit(OP_return);
    CodeAttr Code;
    Code.MaxStack = 0;
    Code.MaxLocals = 0;
    Code.Code = B.build();
    M.Code = std::move(Code);
    CF.Methods.push_back(std::move(M));
  }
  MethodInfo *Main = CF.findMethod("main", "([Ljava/lang/String;)V");
  CodeBuilder B(CF.CP);
  B.invokeStatic("Rec", "rec", "()V");
  B.emit(OP_return);
  Main->Code->Code = B.build();
  JvmResult R =
      runOn(makeHotSpot8Policy(), {{"Rec", serialize(CF)}}, "Rec");
  EXPECT_FALSE(R.Invoked);
  EXPECT_EQ(R.Error, JvmErrorKind::StackOverflowError);
}

TEST(Interp, StringNativesWork) {
  JvmResult R = runMain([](CodeBuilder &B) {
    pushOut(B);
    B.pushString("abc");
    B.invokeVirtual("java/lang/String", "length", "()I");
    printTopInt(B);
    B.emit(OP_return);
  });
  ASSERT_TRUE(R.Invoked) << R.toString();
  EXPECT_EQ(R.Output[0], "3");
}

TEST(Interp, StringBuilderChain) {
  JvmResult R = runMain([](CodeBuilder &B) {
    B.newObject("java/lang/StringBuilder");
    B.emit(OP_dup);
    B.invokeSpecial("java/lang/StringBuilder", "<init>", "()V");
    B.pushString("x=");
    B.invokeVirtual("java/lang/StringBuilder", "append",
                    "(Ljava/lang/String;)Ljava/lang/StringBuilder;");
    B.pushInt(5);
    B.invokeVirtual("java/lang/StringBuilder", "append",
                    "(I)Ljava/lang/StringBuilder;");
    B.invokeVirtual("java/lang/StringBuilder", "toString",
                    "()Ljava/lang/String;");
    B.storeLocal('a', 1);
    pushOut(B);
    B.loadLocal('a', 1);
    B.invokeVirtual("java/io/PrintStream", "println",
                    "(Ljava/lang/String;)V");
    B.emit(OP_return);
  });
  ASSERT_TRUE(R.Invoked) << R.toString();
  EXPECT_EQ(R.Output[0], "x=5");
}

TEST(Interp, InterfaceDispatch) {
  // Call run() through Runnable on a Thread subclass instance.
  JvmResult R = runMain([](CodeBuilder &B) {
    B.newObject("java/lang/Thread");
    B.emit(OP_dup);
    B.invokeSpecial("java/lang/Thread", "<init>", "()V");
    B.invokeInterface("java/lang/Runnable", "run", "()V");
    pushOut(B);
    B.pushString("dispatched");
    B.invokeVirtual("java/io/PrintStream", "println",
                    "(Ljava/lang/String;)V");
    B.emit(OP_return);
  });
  ASSERT_TRUE(R.Invoked) << R.toString();
  EXPECT_EQ(R.Output[0], "dispatched");
}
