//===- tests/jvm/formatchecker_test.cpp ------------------------------------===//
//
// Loading-phase format checks, including the policy differences behind
// the paper's Problems 1 and 4.
//
//===----------------------------------------------------------------------===//

#include "../TestHelpers.h"
#include "jvm/Phase.h"
#include "jvm/FormatChecker.h"

#include <gtest/gtest.h>

using namespace classfuzz;
using namespace classfuzz::testhelpers;

namespace {

std::optional<CheckFailure> check(const ClassFile &CF,
                                  const JvmPolicy &Policy) {
  return checkClassFormat(CF, Policy, nullptr);
}

/// Figure 2's class: a public abstract method named <clinit> without a
/// Code attribute, in an otherwise ordinary class.
ClassFile makeFigure2Class() {
  ClassFile CF = makeHelloClass("M1436188543");
  MethodInfo Clinit;
  Clinit.Name = "<clinit>";
  Clinit.Descriptor = "()V";
  Clinit.AccessFlags = ACC_PUBLIC | ACC_ABSTRACT;
  CF.Methods.push_back(std::move(Clinit));
  return CF;
}

} // namespace

TEST(FormatChecker, Problem1HotSpotAcceptsJ9Rejects) {
  ClassFile CF = makeFigure2Class();
  EXPECT_FALSE(check(CF, makeHotSpot8Policy()).has_value())
      << "HotSpot treats non-static <clinit> as an ordinary method";
  auto J9 = check(CF, makeJ9Policy());
  ASSERT_TRUE(J9.has_value()) << "J9 raises a format error";
  EXPECT_EQ(J9->Kind, JvmErrorKind::ClassFormatError);
  EXPECT_NE(J9->Message.find("<clinit>"), std::string::npos);
}

TEST(FormatChecker, Problem1EndToEndDiscrepancy) {
  // The full Figure 2 behavior: HotSpot invokes normally, J9 rejects.
  Bytes Data = serialize(makeFigure2Class());
  JvmResult OnHs = runOn(makeHotSpot8Policy(), {{"M1436188543", Data}},
                         "M1436188543");
  EXPECT_TRUE(OnHs.Invoked) << OnHs.toString();
  JvmResult OnJ9 =
      runOn(makeJ9Policy(), {{"M1436188543", Data}}, "M1436188543");
  EXPECT_EQ(OnJ9.Error, JvmErrorKind::ClassFormatError);
  EXPECT_EQ(encodePhase(OnJ9), 1);
}

TEST(FormatChecker, IsInitializationMethodFollowsPolicy) {
  MethodInfo Strict;
  Strict.Name = "<clinit>";
  Strict.Descriptor = "()V";
  Strict.AccessFlags = ACC_PUBLIC; // not static
  EXPECT_FALSE(isInitializationMethod(Strict, makeHotSpot8Policy()))
      << "SE 9 reading: non-static <clinit> is of no consequence";
  EXPECT_TRUE(isInitializationMethod(Strict, makeJ9Policy()));
  Strict.AccessFlags = ACC_STATIC;
  EXPECT_TRUE(isInitializationMethod(Strict, makeHotSpot8Policy()));
}

TEST(FormatChecker, Problem4InitShape) {
  ClassFile CF = makeHelloClass("BadCtor");
  CF.findMethod("<init>", "()V")->AccessFlags =
      ACC_PUBLIC | ACC_STATIC; // illegal
  auto OnHs = check(CF, makeHotSpot8Policy());
  ASSERT_TRUE(OnHs.has_value());
  EXPECT_EQ(OnHs->Kind, JvmErrorKind::ClassFormatError);
  EXPECT_FALSE(check(CF, makeGijPolicy()).has_value())
      << "GIJ accepts malformed <init> modifiers";
}

TEST(FormatChecker, Problem4InitReturnType) {
  // public java.lang.Thread <init>() -- rejected by HotSpot/J9, allowed
  // by GIJ.
  ClassFile CF = makeHelloClass("CtorReturns");
  MethodInfo M;
  M.Name = "<init>";
  M.Descriptor = "()Ljava/lang/Thread;";
  M.AccessFlags = ACC_PUBLIC;
  CodeBuilder B(CF.CP);
  B.pushNull();
  B.emit(OP_areturn);
  CodeAttr Code;
  Code.MaxStack = 1;
  Code.MaxLocals = 1;
  Code.Code = B.build();
  M.Code = std::move(Code);
  CF.Methods.push_back(std::move(M));

  EXPECT_TRUE(check(CF, makeHotSpot8Policy()).has_value());
  EXPECT_TRUE(check(CF, makeJ9Policy()).has_value());
  EXPECT_FALSE(check(CF, makeGijPolicy()).has_value());
}

TEST(FormatChecker, Problem4DuplicateFields) {
  ClassFile CF = makeHelloClass("DupFields");
  FieldInfo F;
  F.Name = "x";
  F.Descriptor = "I";
  F.AccessFlags = ACC_PUBLIC;
  CF.Fields.push_back(F);
  CF.Fields.push_back(F);
  EXPECT_TRUE(check(CF, makeHotSpot8Policy()).has_value());
  EXPECT_TRUE(check(CF, makeJ9Policy()).has_value());
  EXPECT_FALSE(check(CF, makeGijPolicy()).has_value())
      << "GIJ accepts duplicate fields";
}

TEST(FormatChecker, Problem4InterfaceMemberFlags) {
  ClassFile CF;
  CF.ThisClass = "BadIface";
  CF.SuperClass = "java/lang/Object";
  CF.AccessFlags = ACC_PUBLIC | ACC_INTERFACE | ACC_ABSTRACT;
  MethodInfo M;
  M.Name = "op";
  M.Descriptor = "()V";
  M.AccessFlags = ACC_PROTECTED | ACC_ABSTRACT; // not public
  CF.Methods.push_back(std::move(M));
  EXPECT_TRUE(check(CF, makeHotSpot8Policy()).has_value());
  EXPECT_FALSE(check(CF, makeGijPolicy()).has_value());
}

TEST(FormatChecker, Problem4InterfaceFieldFlags) {
  ClassFile CF;
  CF.ThisClass = "IfaceField";
  CF.SuperClass = "java/lang/Object";
  CF.AccessFlags = ACC_PUBLIC | ACC_INTERFACE | ACC_ABSTRACT;
  FieldInfo F;
  F.Name = "k";
  F.Descriptor = "I";
  F.AccessFlags = ACC_PUBLIC; // missing static+final
  CF.Fields.push_back(std::move(F));
  EXPECT_TRUE(check(CF, makeHotSpot8Policy()).has_value());
  EXPECT_FALSE(check(CF, makeGijPolicy()).has_value());
}

TEST(FormatChecker, Problem4InterfaceExtendingClass) {
  // "an interface extending java/lang/Exception": format error on
  // HotSpot/J9, missed by GIJ.
  ClassFile CF;
  CF.ThisClass = "BadSuperIface";
  CF.SuperClass = "java/lang/Exception";
  CF.AccessFlags = ACC_PUBLIC | ACC_INTERFACE | ACC_ABSTRACT;
  auto OnHs = check(CF, makeHotSpot8Policy());
  ASSERT_TRUE(OnHs.has_value());
  EXPECT_EQ(OnHs->Kind, JvmErrorKind::ClassFormatError);
  EXPECT_FALSE(check(CF, makeGijPolicy()).has_value());
}

TEST(FormatChecker, Problem4InterfaceMainEndToEnd) {
  // GIJ can execute an interface having a main method; the others cannot.
  ClassFile CF;
  CF.ThisClass = "IfaceMain";
  CF.SuperClass = "java/lang/Object";
  CF.AccessFlags = ACC_PUBLIC | ACC_INTERFACE | ACC_ABSTRACT;
  MethodInfo Main;
  Main.Name = "main";
  Main.Descriptor = "([Ljava/lang/String;)V";
  Main.AccessFlags = ACC_PUBLIC | ACC_STATIC;
  ConstantPool &CP = CF.CP;
  CodeBuilder B(CP);
  B.getStatic("java/lang/System", "out", "Ljava/io/PrintStream;");
  B.pushString("from-interface");
  B.invokeVirtual("java/io/PrintStream", "println",
                  "(Ljava/lang/String;)V");
  B.emit(OP_return);
  CodeAttr Code;
  Code.MaxStack = 2;
  Code.MaxLocals = 1;
  Code.Code = B.build();
  Main.Code = std::move(Code);
  CF.Methods.push_back(std::move(Main));
  Bytes Data = serialize(CF);

  JvmResult OnGij = runOn(makeGijPolicy(), {{"IfaceMain", Data}},
                          "IfaceMain");
  EXPECT_TRUE(OnGij.Invoked) << OnGij.toString();
  JvmResult OnHs = runOn(makeHotSpot8Policy(), {{"IfaceMain", Data}},
                         "IfaceMain");
  EXPECT_FALSE(OnHs.Invoked)
      << "interface main is static and non-abstract: HotSpot's strict "
         "interface-method check fires first";
}

TEST(FormatChecker, ConflictingVisibilityFlags) {
  ClassFile CF = makeHelloClass("ConflictVis");
  CF.findMethod("main", "([Ljava/lang/String;)V")->AccessFlags =
      ACC_PUBLIC | ACC_PRIVATE | ACC_STATIC;
  EXPECT_TRUE(check(CF, makeHotSpot8Policy()).has_value());
  EXPECT_FALSE(check(CF, makeGijPolicy()).has_value());
}

TEST(FormatChecker, FinalAbstractClassRejected) {
  ClassFile CF = makeHelloClass("FinAbs");
  CF.AccessFlags = ACC_PUBLIC | ACC_FINAL | ACC_ABSTRACT;
  EXPECT_TRUE(check(CF, makeHotSpot8Policy()).has_value());
}

TEST(FormatChecker, MalformedDescriptorRejected) {
  ClassFile CF = makeHelloClass("BadDesc");
  FieldInfo F;
  F.Name = "f";
  F.Descriptor = "Q"; // invalid
  F.AccessFlags = ACC_PUBLIC;
  CF.Fields.push_back(std::move(F));
  auto OnHs = check(CF, makeHotSpot8Policy());
  ASSERT_TRUE(OnHs.has_value());
  EXPECT_FALSE(check(CF, makeGijPolicy()).has_value())
      << "GIJ skips descriptor validation";
}

TEST(FormatChecker, MissingCodeOnConcreteMethod) {
  ClassFile CF = makeHelloClass("NoCode");
  MethodInfo M;
  M.Name = "helper";
  M.Descriptor = "()V";
  M.AccessFlags = ACC_PUBLIC; // concrete but no Code
  CF.Methods.push_back(std::move(M));
  auto OnHs = check(CF, makeHotSpot8Policy());
  ASSERT_TRUE(OnHs.has_value());
  EXPECT_EQ(OnHs->Kind, JvmErrorKind::ClassFormatError);
  // GIJ (RequireCode lazy) only fails when the method is invoked.
  EXPECT_FALSE(check(CF, makeGijPolicy()).has_value());
}

TEST(FormatChecker, AbstractMethodInConcreteClass) {
  ClassFile CF = makeHelloClass("ConcAbs");
  MethodInfo M;
  M.Name = "absent";
  M.Descriptor = "()V";
  M.AccessFlags = ACC_PUBLIC | ACC_ABSTRACT;
  CF.Methods.push_back(std::move(M));
  // J9 rejects eagerly at load; HotSpot defers (AbstractMethodError only
  // if invoked); GIJ ignores.
  EXPECT_TRUE(check(CF, makeJ9Policy()).has_value());
  EXPECT_FALSE(check(CF, makeHotSpot8Policy()).has_value());
  EXPECT_FALSE(check(CF, makeGijPolicy()).has_value());

  // End-to-end: the class still runs on HotSpot since `absent` is never
  // invoked -- a classic Problem 1-style discrepancy source.
  Bytes Data = serialize(CF);
  JvmResult OnHs =
      runOn(makeHotSpot8Policy(), {{"ConcAbs", Data}}, "ConcAbs");
  EXPECT_TRUE(OnHs.Invoked) << OnHs.toString();
  JvmResult OnJ9 = runOn(makeJ9Policy(), {{"ConcAbs", Data}}, "ConcAbs");
  EXPECT_EQ(OnJ9.Error, JvmErrorKind::ClassFormatError);
}

TEST(FormatChecker, CodeOnAbstractMethodRejected) {
  ClassFile CF = makeHelloClass("AbsWithCode");
  CF.AccessFlags |= ACC_ABSTRACT;
  MethodInfo M;
  M.Name = "weird";
  M.Descriptor = "()V";
  M.AccessFlags = ACC_PUBLIC | ACC_ABSTRACT;
  CodeAttr Code;
  Code.MaxStack = 0;
  Code.MaxLocals = 1;
  Code.Code = {OP_return};
  M.Code = std::move(Code);
  CF.Methods.push_back(std::move(M));
  EXPECT_TRUE(check(CF, makeHotSpot8Policy()).has_value());
}

TEST(FormatChecker, DuplicateMethodsRejectedEverywhere) {
  ClassFile CF = makeHelloClass("DupMethods");
  MethodInfo Copy = CF.Methods[1]; // duplicate main
  CF.Methods.push_back(Copy);
  for (const JvmPolicy &P : allJvmPolicies())
    EXPECT_TRUE(check(CF, P).has_value()) << P.Name;
}
