//===- tests/coverage/dd_uniqueness_test.cpp -------------------------------===//
//
// The Nezha-style δ-diversity criteria: cross-profile tuple novelty
// ([dd-coarse]/[dd-fine]), position dependence of the tuple hash, the
// coarse-vs-fine distinction, the Novelty decomposition reported by
// tryInsert, and criterion-scoped bookkeeping.
//
//===----------------------------------------------------------------------===//

#include "coverage/Uniqueness.h"

#include <gtest/gtest.h>

using namespace classfuzz;

namespace {

Tracefile makeTrace(std::initializer_list<uint32_t> Stmts,
                    std::initializer_list<uint32_t> BranchSites) {
  Tracefile T;
  for (uint32_t S : Stmts)
    T.addStmt(S);
  for (uint32_t B : BranchSites)
    T.addBranch(B, true);
  return T;
}

/// A hand-built observation: fixed coarse statistics so [dd-coarse] and
/// [dd-fine] verdicts can be steered independently via Encoded/Fp.
ProfileObservation obs(int Encoded, uint64_t Fp, size_t Stmts = 3,
                      size_t Branches = 2) {
  ProfileObservation O;
  O.Encoded = Encoded;
  O.StmtCount = Stmts;
  O.BranchCount = Branches;
  O.Fingerprint = Fp;
  return O;
}

using Batch = std::vector<ProfileObservation>;

} // namespace

TEST(DeltaDiversity, ObservationOfReadsTheTrace) {
  Tracefile T = makeTrace({1, 2, 3}, {1, 2});
  ProfileObservation O = ProfileObservation::of(3, T);
  EXPECT_EQ(O.Encoded, 3);
  EXPECT_EQ(O.StmtCount, 3u);
  EXPECT_EQ(O.BranchCount, 2u);
  EXPECT_EQ(O.Fingerprint, T.fingerprint());
}

TEST(DeltaDiversity, SameTupleRejectedNovelTupleAccepted) {
  DeltaDiversityChecker C(UniquenessCriterion::DdFine);
  Batch A = {obs(0, 0x10), obs(1, 0x20)};
  EXPECT_TRUE(C.isUnique(A));
  EXPECT_TRUE(static_cast<bool>(C.tryInsert(A)));
  EXPECT_FALSE(C.isUnique(A));
  EXPECT_FALSE(static_cast<bool>(C.tryInsert(A))) << "duplicate tuple";

  Batch B = {obs(0, 0x10), obs(2, 0x20)}; // One profile diverges.
  EXPECT_TRUE(C.isUnique(B));
  EXPECT_TRUE(static_cast<bool>(C.tryInsert(B)));
  EXPECT_EQ(C.size(), 2u) << "the rejected duplicate was not inserted";
  EXPECT_EQ(C.distinctTuples(), 2u);
}

TEST(DeltaDiversity, TupleHashIsPositionDependent) {
  // The same observations attributed to different profiles must form a
  // different tuple, exactly as the paper's encoding distinguishes
  // "0010" from "0100".
  DeltaDiversityChecker C(UniquenessCriterion::DdFine);
  Batch AB = {obs(0, 0x10), obs(1, 0x20)};
  Batch BA = {obs(1, 0x20), obs(0, 0x10)};
  EXPECT_NE(C.tupleHashOf(AB), C.tupleHashOf(BA));
  C.insert(AB);
  EXPECT_TRUE(C.isUnique(BA)) << "swapped profiles are a new behavior";
}

TEST(DeltaDiversity, CoarseIgnoresHitIdentityFineSeesIt) {
  // Same outcome, same (stmt, branch) statistics, different hit sets:
  // invisible to [dd-coarse], novel under [dd-fine].
  Tracefile T1 = makeTrace({1, 2, 3}, {1, 2});
  Tracefile T2 = makeTrace({7, 8, 9}, {4, 5});
  Batch A = {ProfileObservation::of(0, T1)};
  Batch B = {ProfileObservation::of(0, T2)};

  DeltaDiversityChecker Coarse(UniquenessCriterion::DdCoarse);
  Coarse.insert(A);
  EXPECT_FALSE(Coarse.isUnique(B)) << "equal statistics, equal tuple";

  DeltaDiversityChecker Fine(UniquenessCriterion::DdFine);
  Fine.insert(A);
  EXPECT_TRUE(Fine.isUnique(B)) << "fingerprints differ";

  // A statistic change is visible to both.
  Tracefile T3 = makeTrace({1, 2}, {1, 2});
  Batch Smaller = {ProfileObservation::of(0, T3)};
  EXPECT_TRUE(Coarse.isUnique(Smaller));
  EXPECT_TRUE(Fine.isUnique(Smaller));
}

TEST(DeltaDiversity, OutcomeFeedsTheProfileSignature) {
  // Identical coverage with a different encoded outcome is novel under
  // both criteria: the signature hashes the outcome alongside coverage.
  Tracefile T = makeTrace({1, 2, 3}, {1, 2});
  for (UniquenessCriterion Crit :
       {UniquenessCriterion::DdCoarse, UniquenessCriterion::DdFine}) {
    DeltaDiversityChecker C(Crit);
    C.insert({ProfileObservation::of(0, T)});
    EXPECT_TRUE(C.isUnique({ProfileObservation::of(1, T)}))
        << criterionName(Crit);
  }
}

TEST(DeltaDiversity, NoveltyDecomposition) {
  // Two profiles; four per-profile signatures A/A' (profile 0, encoded
  // 0) and B/B' (profile 1, encoded 1) recombined to isolate each
  // novelty bit.
  DeltaDiversityChecker C(UniquenessCriterion::DdFine);
  ProfileObservation A = obs(0, 0x10), APrime = obs(0, 0x11);
  ProfileObservation B = obs(1, 0x20), BPrime = obs(1, 0x21);

  // First batch: everything is new.
  DeltaDiversityChecker::Novelty N1 = C.tryInsert({A, B});
  EXPECT_TRUE(N1.Tuple);
  EXPECT_TRUE(N1.Outcome);
  EXPECT_TRUE(N1.Coverage);

  // Same outcome sequence "01", both coverage signatures fresh.
  DeltaDiversityChecker::Novelty N2 = C.tryInsert({APrime, BPrime});
  EXPECT_TRUE(N2.Tuple);
  EXPECT_FALSE(N2.Outcome) << "sequence 01 already seen";
  EXPECT_TRUE(N2.Coverage);

  // A fresh recombination of already-seen parts: only the tuple is new.
  DeltaDiversityChecker::Novelty N3 = C.tryInsert({A, BPrime});
  EXPECT_TRUE(N3.Tuple);
  EXPECT_FALSE(N3.Outcome);
  EXPECT_FALSE(N3.Coverage) << "both profile signatures already seen";

  // An exact duplicate: nothing is new, nothing is inserted.
  DeltaDiversityChecker::Novelty N4 = C.tryInsert({A, B});
  EXPECT_FALSE(N4.Tuple);
  EXPECT_FALSE(N4.Outcome);
  EXPECT_FALSE(N4.Coverage);
  EXPECT_FALSE(static_cast<bool>(N4));

  EXPECT_EQ(C.distinctTuples(), 3u);
  EXPECT_EQ(C.distinctOutcomes(), 1u);
  EXPECT_EQ(C.profileSignatures(0), 2u);
  EXPECT_EQ(C.profileSignatures(1), 2u);
}

TEST(DeltaDiversity, TrackedEntriesScopedToCriterion) {
  // One two-profile insert costs one tuple + one outcome sequence + two
  // per-profile signatures; the other δ criterion's structures must not
  // exist at all.
  for (UniquenessCriterion Crit :
       {UniquenessCriterion::DdCoarse, UniquenessCriterion::DdFine}) {
    DeltaDiversityChecker C(Crit);
    EXPECT_EQ(C.trackedEntries(), 0u) << criterionName(Crit);
    C.insert({obs(0, 0x10), obs(1, 0x20)});
    EXPECT_EQ(C.trackedEntries(), 4u) << criterionName(Crit);
  }
}

TEST(DeltaDiversity, IsUniqueIsSideEffectFree) {
  DeltaDiversityChecker C(UniquenessCriterion::DdCoarse);
  Batch A = {obs(0, 0x10)};
  EXPECT_TRUE(C.isUnique(A));
  EXPECT_TRUE(C.isUnique(A)) << "the check must not record the tuple";
  EXPECT_EQ(C.distinctTuples(), 0u);
  EXPECT_EQ(C.size(), 0u);
}
