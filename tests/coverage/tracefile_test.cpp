//===- tests/coverage/tracefile_test.cpp -----------------------------------===//

#include "coverage/Tracefile.h"

#include <gtest/gtest.h>

using namespace classfuzz;

TEST(Tracefile, CountsDistinctStatements) {
  Tracefile T;
  T.addStmt(1);
  T.addStmt(2);
  T.addStmt(1); // Duplicate: sets, not counters.
  EXPECT_EQ(T.stmtCount(), 2u);
}

TEST(Tracefile, BranchDirectionsAreDistinct) {
  Tracefile T;
  T.addBranch(10, true);
  T.addBranch(10, false);
  T.addBranch(10, true);
  EXPECT_EQ(T.branchCount(), 2u) << "taken and not-taken are separate";
}

TEST(Tracefile, MergeIsUnion) {
  Tracefile A, B;
  A.addStmt(1);
  A.addBranch(5, true);
  B.addStmt(2);
  B.addBranch(5, false);
  Tracefile M = A.mergedWith(B);
  EXPECT_EQ(M.stmtCount(), 2u);
  EXPECT_EQ(M.branchCount(), 2u);
  // ⊕ with a subset leaves the trace unchanged (the [tr] criterion).
  EXPECT_TRUE(M.mergedWith(A).sameSets(M));
}

TEST(Tracefile, SameSetsIsExact) {
  Tracefile A, B;
  A.addStmt(1);
  B.addStmt(1);
  EXPECT_TRUE(A.sameSets(B));
  B.addBranch(2, true);
  EXPECT_FALSE(A.sameSets(B));
}

TEST(Tracefile, FingerprintMatchesSetEquality) {
  Tracefile A, B;
  for (uint32_t I : {5u, 9u, 1u})
    A.addStmt(I);
  for (uint32_t I : {1u, 5u, 9u})
    B.addStmt(I); // Different insertion order, same set.
  EXPECT_EQ(A.fingerprint(), B.fingerprint());
  B.addStmt(100);
  EXPECT_NE(A.fingerprint(), B.fingerprint());
}

TEST(Tracefile, FingerprintSeparatesStmtsFromBranches) {
  Tracefile A, B;
  A.addStmt(4);
  B.addBranch(2, false); // Branch id 2<<1|0 = 4 in the branch set.
  EXPECT_NE(A.fingerprint(), B.fingerprint());
}

TEST(CoverageRecorder, AccumulatesAndResets) {
  CoverageRecorder Rec;
  Rec.stmt(1);
  Rec.branch(2, true);
  EXPECT_EQ(Rec.trace().stmtCount(), 1u);
  EXPECT_EQ(Rec.trace().branchCount(), 1u);
  Tracefile T = Rec.takeTrace();
  EXPECT_EQ(T.stmtCount(), 1u);
  EXPECT_TRUE(Rec.trace().empty()) << "takeTrace resets the recorder";
}
