//===- tests/coverage/uniqueness_test.cpp ----------------------------------===//
//
// The three acceptance criteria of §2.2.3 and greedyfuzz's accumulative
// coverage, including the paper's worked example: two classfiles with
// coverage 4938/2604 and 4938/2655 -- [st] takes one, [stbr] takes both.
//
//===----------------------------------------------------------------------===//

#include "coverage/Uniqueness.h"

#include <gtest/gtest.h>

using namespace classfuzz;

namespace {

Tracefile makeTrace(std::initializer_list<uint32_t> Stmts,
                    std::initializer_list<uint32_t> BranchSites) {
  Tracefile T;
  for (uint32_t S : Stmts)
    T.addStmt(S);
  for (uint32_t B : BranchSites)
    T.addBranch(B, true);
  return T;
}

} // namespace

TEST(Uniqueness, StComparesOnlyStatementCounts) {
  UniquenessChecker C(UniquenessCriterion::St);
  // The §3.2 example: same stmt statistic, different branch statistic.
  Tracefile A = makeTrace({1, 2, 3}, {1, 2});
  Tracefile B = makeTrace({4, 5, 6}, {1, 2, 3});
  EXPECT_TRUE(C.tryInsert(A));
  EXPECT_FALSE(C.isUnique(B)) << "[st] takes one of the two";
}

TEST(Uniqueness, StBrComparesBothStatistics) {
  UniquenessChecker C(UniquenessCriterion::StBr);
  Tracefile A = makeTrace({1, 2, 3}, {1, 2});
  Tracefile B = makeTrace({4, 5, 6}, {1, 2, 3});
  EXPECT_TRUE(C.tryInsert(A));
  EXPECT_TRUE(C.tryInsert(B)) << "[stbr] takes both";
  Tracefile Dup = makeTrace({7, 8, 9}, {4, 5});
  EXPECT_FALSE(C.isUnique(Dup)) << "same (3,2) statistics as A";
}

TEST(Uniqueness, TrDistinguishesEqualStatisticsDifferentSets) {
  UniquenessChecker C(UniquenessCriterion::Tr);
  Tracefile A = makeTrace({1, 2, 3}, {1, 2});
  Tracefile B = makeTrace({7, 8, 9}, {4, 5}); // Same stats, other sets.
  EXPECT_TRUE(C.tryInsert(A));
  EXPECT_TRUE(C.isUnique(B)) << "[tr] sees through equal statistics";
  EXPECT_TRUE(C.tryInsert(B));
  EXPECT_FALSE(C.isUnique(A)) << "identical tracefile rejected";
}

TEST(Uniqueness, TrIsStrictlyStrongerThanStBr) {
  // Any trace accepted by [tr] with fresh statistics is accepted by
  // [stbr] too; the converse fails for equal-stat different-set traces.
  UniquenessChecker StBr(UniquenessCriterion::StBr);
  UniquenessChecker Tr(UniquenessCriterion::Tr);
  Tracefile A = makeTrace({1}, {1});
  Tracefile B = makeTrace({2}, {9});
  ASSERT_TRUE(StBr.tryInsert(A));
  ASSERT_TRUE(Tr.tryInsert(A));
  EXPECT_FALSE(StBr.isUnique(B));
  EXPECT_TRUE(Tr.isUnique(B));
}

TEST(Uniqueness, EmptyTraceHandled) {
  UniquenessChecker C(UniquenessCriterion::StBr);
  Tracefile Empty;
  EXPECT_TRUE(C.tryInsert(Empty));
  EXPECT_FALSE(C.isUnique(Empty));
}

TEST(Uniqueness, SizeTracksInsertions) {
  UniquenessChecker C(UniquenessCriterion::St);
  EXPECT_EQ(C.size(), 0u);
  C.insert(makeTrace({1}, {}));
  C.insert(makeTrace({1, 2}, {}));
  EXPECT_EQ(C.size(), 2u);
}

TEST(Uniqueness, InsertTracksOnlyTheActiveCriterionsStructure) {
  // Each insert must cost one entry in the structure the criterion
  // reads, not one in each of the three (which bloats memory at corpus
  // scale without changing any verdict).
  Tracefile A = makeTrace({1, 2, 3}, {1, 2});
  Tracefile B = makeTrace({4, 5, 6, 7}, {1, 2, 3});
  for (UniquenessCriterion Crit :
       {UniquenessCriterion::St, UniquenessCriterion::StBr,
        UniquenessCriterion::Tr}) {
    UniquenessChecker C(Crit);
    EXPECT_EQ(C.trackedEntries(), 0u);
    C.insert(A);
    C.insert(B);
    EXPECT_EQ(C.trackedEntries(), 2u) << criterionName(Crit);
    // Verdicts are unchanged by the scoped bookkeeping.
    EXPECT_FALSE(C.isUnique(A)) << criterionName(Crit);
    EXPECT_FALSE(C.isUnique(B)) << criterionName(Crit);
  }
}

TEST(Uniqueness, CriterionNames) {
  EXPECT_STREQ(criterionName(UniquenessCriterion::St), "[st]");
  EXPECT_STREQ(criterionName(UniquenessCriterion::StBr), "[stbr]");
  EXPECT_STREQ(criterionName(UniquenessCriterion::Tr), "[tr]");
  EXPECT_STREQ(criterionName(UniquenessCriterion::DdCoarse), "[dd-coarse]");
  EXPECT_STREQ(criterionName(UniquenessCriterion::DdFine), "[dd-fine]");
  EXPECT_FALSE(isDeltaDiversity(UniquenessCriterion::Tr));
  EXPECT_TRUE(isDeltaDiversity(UniquenessCriterion::DdCoarse));
  EXPECT_TRUE(isDeltaDiversity(UniquenessCriterion::DdFine));
}

TEST(Uniqueness, TrFingerprintCollisionFallsBackToStoredHitSets) {
  // Force every tracefile to hash to the same 64-bit fingerprint: the
  // stored ground-truth hit sets must break the tie, so two genuinely
  // different traces are both accepted and the collision is counted.
  // Before the fallback such candidates were silently rejected.
  UniquenessChecker C(UniquenessCriterion::Tr,
                      [](const Tracefile &) { return 42ull; });
  Tracefile A = makeTrace({1, 2, 3}, {1, 2});
  Tracefile B = makeTrace({7, 8, 9}, {4, 5}); // Same stats, other sets.

  EXPECT_TRUE(C.tryInsert(A));
  EXPECT_EQ(C.fingerprintCollisions(), 0u);
  EXPECT_TRUE(C.tryInsert(B))
      << "a colliding fingerprint must not mask a distinct trace";
  EXPECT_EQ(C.fingerprintCollisions(), 1u);

  // Exact duplicates are still rejected via the stored sets, without
  // registering further collisions.
  EXPECT_FALSE(C.isUnique(A));
  EXPECT_FALSE(C.isUnique(B));
  EXPECT_EQ(C.fingerprintCollisions(), 1u);

  // A third distinct trace under the same colliding fingerprint: both
  // stored set pairs are consulted, neither matches, accepted.
  Tracefile D = makeTrace({4, 5, 6}, {8, 9});
  EXPECT_TRUE(C.tryInsert(D));
  EXPECT_EQ(C.fingerprintCollisions(), 2u);
  EXPECT_EQ(C.size(), 3u);
}

TEST(Uniqueness, TrRealFingerprintStillDedupes) {
  // Default fingerprint path: equal hit sets are rejected whether or
  // not their insertion order varies, and no collision is recorded.
  UniquenessChecker C(UniquenessCriterion::Tr);
  Tracefile A = makeTrace({1, 2, 3}, {1, 2});
  EXPECT_TRUE(C.tryInsert(A));
  Tracefile SameSets = makeTrace({3, 2, 1}, {2, 1});
  EXPECT_FALSE(C.isUnique(SameSets));
  EXPECT_EQ(C.fingerprintCollisions(), 0u);
}

TEST(AccumulativeCoverage, AcceptsOnlyNewCoverage) {
  AccumulativeCoverage Acc;
  Tracefile A = makeTrace({1, 2}, {1});
  EXPECT_TRUE(Acc.tryAdd(A));
  Tracefile Subset = makeTrace({1}, {1});
  EXPECT_FALSE(Acc.tryAdd(Subset)) << "no new statements or branches";
  Tracefile NewBranch = makeTrace({1}, {7});
  EXPECT_TRUE(Acc.tryAdd(NewBranch)) << "one new branch suffices";
  EXPECT_EQ(Acc.total().stmtCount(), 2u);
  EXPECT_EQ(Acc.total().branchCount(), 2u);
}

TEST(AccumulativeCoverage, GreedyAcceptsFewerThanUniqueness) {
  // The Table 4 shape: greedyfuzz's acceptance set is much smaller than
  // uniquefuzz's for the same stream of traces.
  AccumulativeCoverage Greedy;
  UniquenessChecker Unique(UniquenessCriterion::StBr);
  int GreedyAccepted = 0, UniqueAccepted = 0;
  // First a full trace, then strict subsets with distinct statistics:
  // greedy can only take the first; uniqueness takes every one.
  for (uint32_t Size : {8u, 1u, 2u, 3u, 4u, 5u, 6u, 7u}) {
    Tracefile T;
    for (uint32_t S = 0; S != Size; ++S)
      T.addStmt(S);
    GreedyAccepted += Greedy.tryAdd(T);
    UniqueAccepted += Unique.tryInsert(T);
  }
  EXPECT_EQ(GreedyAccepted, 1);
  EXPECT_EQ(UniqueAccepted, 8);
}
