//===- tests/coverage/frontier_test.cpp ------------------------------------===//
//
// The coverage-frontier tracker: per-branch/per-stmt hit counts folded
// at commit, first-hit attribution that latches on the first commit and
// never moves, the rare set at the configured threshold, and the census
// JSONL rendering (summary line + ascending-id branch/stmt lines).
//
//===----------------------------------------------------------------------===//

#include "coverage/Frontier.h"

#include "coverage/Tracefile.h"

#include <gtest/gtest.h>

using namespace classfuzz;

namespace {

FrontierTracker::CommitInfo commit(uint64_t Iter, const std::string &Seed,
                                   const std::string &Mutator, int Phase) {
  FrontierTracker::CommitInfo Info;
  Info.Iteration = Iter;
  Info.SeedIndex = 0;
  Info.SeedName = Seed;
  Info.MutatorIndex = 0;
  Info.MutatorId = Mutator;
  Info.Phase = Phase;
  return Info;
}

} // namespace

TEST(Frontier, CountsHitsAndReportsNewCoverageDeltas) {
  FrontierTracker FT({});
  Tracefile T1;
  T1.addStmt(1);
  T1.addStmt(2);
  T1.addBranch(10, true);
  auto D1 = FT.recordCommit(T1, commit(0, "S", "", -1));
  EXPECT_EQ(D1.NewStmts, 2u);
  EXPECT_EQ(D1.NewBranches, 1u);

  Tracefile T2;
  T2.addStmt(2); // Seen.
  T2.addStmt(3); // New.
  T2.addBranch(10, true);  // Seen.
  T2.addBranch(10, false); // New direction.
  auto D2 = FT.recordCommit(T2, commit(1, "S", "m1", 2));
  EXPECT_EQ(D2.NewStmts, 1u);
  EXPECT_EQ(D2.NewBranches, 1u);

  EXPECT_EQ(FT.commits(), 2u);
  EXPECT_EQ(FT.distinctStmts(), 3u);
  EXPECT_EQ(FT.distinctBranches(), 2u);
  EXPECT_EQ(FT.stmtHits(2), 2u);
  EXPECT_EQ(FT.stmtHits(3), 1u);
  EXPECT_EQ(FT.branchHits((10u << 1) | 1), 2u);
  EXPECT_EQ(FT.stmtHits(999), 0u) << "unseen ids count zero";
}

TEST(Frontier, FirstHitAttributionLatchesOnTheFirstCommit) {
  FrontierTracker FT({});
  Tracefile T;
  T.addStmt(7);
  FT.recordCommit(T, commit(3, "SeedA", "jir_stmt_swap", 4));
  FT.recordCommit(T, commit(9, "SeedB", "other", 1)); // Re-hit.

  const FrontierFirstHit *First = FT.stmtFirstHit(7);
  ASSERT_NE(First, nullptr);
  EXPECT_EQ(First->Iteration, 3u);
  EXPECT_EQ(First->SeedName, "SeedA");
  EXPECT_EQ(First->MutatorId, "jir_stmt_swap");
  EXPECT_EQ(First->Phase, 4);
  EXPECT_EQ(FT.stmtFirstHit(8), nullptr);
}

TEST(Frontier, RareSetsHonorTheThresholdAndSortAscending) {
  FrontierTracker::Options Opts;
  Opts.RareThreshold = 2;
  FrontierTracker FT(Opts);

  Tracefile Hot;
  Hot.addBranch(5, true);
  Hot.addStmt(1);
  for (int I = 0; I != 3; ++I) // 3 hits: above the threshold.
    FT.recordCommit(Hot, commit(static_cast<uint64_t>(I), "S", "", -1));
  Tracefile Cold;
  Cold.addBranch(9, false);
  Cold.addBranch(2, true);
  FT.recordCommit(Cold, commit(3, "S", "", -1)); // 1 hit each: rare.

  EXPECT_EQ(FT.rareThreshold(), 2u);
  auto Rare = FT.rareBranches();
  ASSERT_EQ(Rare.size(), 2u);
  EXPECT_EQ(Rare[0], (2u << 1) | 1);
  EXPECT_EQ(Rare[1], (9u << 1) | 0);
  EXPECT_TRUE(FT.rareStmts().empty()) << "stmt 1 has 3 hits";
}

TEST(Frontier, CensusJsonlIsSortedCompleteAndDeterministic) {
  FrontierTracker::Options Opts;
  Opts.RareThreshold = 1;
  FrontierTracker FT(Opts);
  Tracefile T;
  T.addStmt(20);
  T.addStmt(4);
  T.addBranch(3, true);
  FT.recordCommit(T, commit(0, "Seed", "mut", 2));
  Tracefile T2;
  T2.addStmt(4);
  FT.recordCommit(T2, commit(1, "Seed", "mut", 2));

  std::string Census = FT.renderCensusJsonl();
  EXPECT_EQ(Census, FT.renderCensusJsonl()) << "pure function of state";

  // Summary first, then branches, then stmts ascending by id.
  EXPECT_EQ(Census.find("{\"type\":\"frontier_summary\",\"commits\":2,"
                        "\"stmts\":2,\"branches\":1,\"rare_branches\":1,"
                        "\"rare_stmts\":1,\"rare_threshold\":1}"),
            0u);
  size_t Branch = Census.find("\"type\":\"branch\"");
  size_t Stmt4 = Census.find("\"id\":4");
  size_t Stmt20 = Census.find("\"id\":20");
  ASSERT_NE(Branch, std::string::npos);
  ASSERT_NE(Stmt4, std::string::npos);
  ASSERT_NE(Stmt20, std::string::npos);
  EXPECT_LT(Branch, Stmt4);
  EXPECT_LT(Stmt4, Stmt20);
  EXPECT_NE(Census.find("\"site\":3,\"taken\":true"), std::string::npos);
  // Stmt 4 has 2 hits (not rare at threshold 1); stmt 20 has 1 (rare).
  EXPECT_NE(Census.find("\"id\":4,\"hits\":2,\"first_iter\":0,"
                        "\"seed\":\"Seed\",\"mutator\":\"mut\","
                        "\"phase\":2,\"rare\":false"),
            std::string::npos);
  EXPECT_NE(Census.find("\"id\":20,\"hits\":1"), std::string::npos);
}
