//===- tests/TestHelpers.h - Shared fixtures for the test suite ----------===//
//
// Part of classfuzz-cpp (PLDI 2016 classfuzz reproduction).
//
//===----------------------------------------------------------------------===//

#ifndef CLASSFUZZ_TESTS_TESTHELPERS_H
#define CLASSFUZZ_TESTS_TESTHELPERS_H

#include "classfile/ClassWriter.h"
#include "classfile/CodeBuilder.h"
#include "classfile/Opcodes.h"
#include "jvm/Policy.h"
#include "jvm/Vm.h"
#include "runtime/RuntimeLib.h"

#include <gtest/gtest.h>

namespace classfuzz {
namespace testhelpers {

/// Builds a valid "hello" class: default ctor + main printing "Completed!".
inline ClassFile makeHelloClass(const std::string &Name) {
  ClassFile CF;
  CF.ThisClass = Name;
  CF.SuperClass = "java/lang/Object";
  CF.AccessFlags = ACC_PUBLIC | ACC_SUPER;
  CF.MajorVersion = MajorVersionJava7;

  {
    MethodInfo Ctor;
    Ctor.Name = "<init>";
    Ctor.Descriptor = "()V";
    Ctor.AccessFlags = ACC_PUBLIC;
    CodeBuilder B(CF.CP);
    B.loadLocal('a', 0);
    B.invokeSpecial("java/lang/Object", "<init>", "()V");
    B.emit(OP_return);
    CodeAttr Code;
    Code.MaxStack = 1;
    Code.MaxLocals = 1;
    Code.Code = B.build();
    Ctor.Code = std::move(Code);
    CF.Methods.push_back(std::move(Ctor));
  }
  {
    MethodInfo Main;
    Main.Name = "main";
    Main.Descriptor = "([Ljava/lang/String;)V";
    Main.AccessFlags = ACC_PUBLIC | ACC_STATIC;
    CodeBuilder B(CF.CP);
    B.getStatic("java/lang/System", "out", "Ljava/io/PrintStream;");
    B.pushString("Completed!");
    B.invokeVirtual("java/io/PrintStream", "println",
                    "(Ljava/lang/String;)V");
    B.emit(OP_return);
    CodeAttr Code;
    Code.MaxStack = 2;
    Code.MaxLocals = 1;
    Code.Code = B.build();
    Main.Code = std::move(Code);
    CF.Methods.push_back(std::move(Main));
  }
  return CF;
}

/// Serializes, asserting success.
inline Bytes serialize(ClassFile CF) {
  auto Data = writeClassFile(CF);
  EXPECT_TRUE(Data.ok()) << (Data.ok() ? "" : Data.error());
  return Data.ok() ? Data.take() : Bytes{};
}

/// jre8 library + the given extra classes.
inline ClassPath makeEnv(
    const std::vector<std::pair<std::string, Bytes>> &Extra = {},
    const std::string &LibVersion = "jre8") {
  ClassPath Env = buildRuntimeLibrary(LibVersion);
  for (const auto &[Name, Data] : Extra)
    Env.add(Name, Data);
  return Env;
}

/// One-shot: run \p MainName on a fresh Vm with \p Policy over the jre
/// matching the policy plus \p Extra classes.
inline JvmResult
runOn(const JvmPolicy &Policy,
      const std::vector<std::pair<std::string, Bytes>> &Extra,
      const std::string &MainName) {
  ClassPath Env = runtimeLibraryFor(Policy);
  for (const auto &[Name, Data] : Extra)
    Env.add(Name, Data);
  Vm Jvm(Policy, Env);
  return Jvm.run(MainName);
}

} // namespace testhelpers
} // namespace classfuzz

#endif // CLASSFUZZ_TESTS_TESTHELPERS_H
