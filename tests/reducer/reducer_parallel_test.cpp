//===- tests/reducer/reducer_parallel_test.cpp ----------------------------===//
//
// Parallel probe lanes must be invisible: for any ReducerOptions::Jobs
// the reduced bytes, every ReductionStats field, and the budget
// accounting are identical to the sequential run (presumed-rejection
// speculation with in-order commit, as in the campaign pipeline).
//
//===----------------------------------------------------------------------===//

#include "../TestHelpers.h"
#include "reducer/Reducer.h"

#include <gtest/gtest.h>

using namespace classfuzz;
using namespace classfuzz::testhelpers;

namespace {

/// A wide class so speculation depth actually matters: junk fields,
/// noise methods, a padded main, and the Problem 1 trigger.
ClassFile makeWideDiscrepancyClass() {
  ClassFile CF = makeHelloClass("Wide");
  for (int I = 0; I != 12; ++I) {
    FieldInfo F;
    F.Name = "junk" + std::to_string(I);
    F.Descriptor = I % 2 ? "I" : "J";
    F.AccessFlags = ACC_PUBLIC;
    CF.Fields.push_back(std::move(F));
  }
  for (int I = 0; I != 5; ++I) {
    MethodInfo M;
    M.Name = "noise" + std::to_string(I);
    M.Descriptor = "()V";
    M.AccessFlags = ACC_PUBLIC;
    CodeAttr Code;
    Code.MaxStack = 1;
    Code.MaxLocals = 1;
    Code.Code = {OP_iconst_0, OP_pop, OP_return};
    M.Code = std::move(Code);
    M.Exceptions.push_back("java/lang/Exception");
    CF.Methods.push_back(std::move(M));
  }
  MethodInfo Clinit;
  Clinit.Name = "<clinit>";
  Clinit.Descriptor = "()V";
  Clinit.AccessFlags = ACC_PUBLIC | ACC_ABSTRACT;
  CF.Methods.push_back(std::move(Clinit));
  return CF;
}

/// Thread-safe oracle: every call builds its own environment and VMs.
bool problem1Persists(const std::string &Name, const Bytes &Data) {
  JvmResult OnHs = runOn(makeHotSpot8Policy(), {{Name, Data}}, Name);
  JvmResult OnJ9 = runOn(makeJ9Policy(), {{Name, Data}}, Name);
  return OnHs.Invoked && !OnJ9.Invoked &&
         OnJ9.Error == JvmErrorKind::ClassFormatError;
}

void expectSameStats(const ReductionStats &A, const ReductionStats &B,
                     size_t Jobs) {
  EXPECT_EQ(A.OracleQueries, B.OracleQueries) << "jobs=" << Jobs;
  EXPECT_EQ(A.CacheHits, B.CacheHits) << "jobs=" << Jobs;
  EXPECT_EQ(A.CacheMisses, B.CacheMisses) << "jobs=" << Jobs;
  EXPECT_EQ(A.DeletionsKept, B.DeletionsKept) << "jobs=" << Jobs;
  EXPECT_EQ(A.ChunkDeletionsKept, B.ChunkDeletionsKept) << "jobs=" << Jobs;
  EXPECT_EQ(A.LargestChunkKept, B.LargestChunkKept) << "jobs=" << Jobs;
  EXPECT_EQ(A.SkippedStructural, B.SkippedStructural) << "jobs=" << Jobs;
  EXPECT_EQ(A.AssemblyFailures, B.AssemblyFailures) << "jobs=" << Jobs;
  EXPECT_EQ(A.MethodsRemoved, B.MethodsRemoved) << "jobs=" << Jobs;
  EXPECT_EQ(A.FieldsRemoved, B.FieldsRemoved) << "jobs=" << Jobs;
  EXPECT_EQ(A.StatementsRemoved, B.StatementsRemoved) << "jobs=" << Jobs;
  EXPECT_EQ(A.InterfacesRemoved, B.InterfacesRemoved) << "jobs=" << Jobs;
  EXPECT_EQ(A.ThrowsRemoved, B.ThrowsRemoved) << "jobs=" << Jobs;
  EXPECT_EQ(A.BudgetExhausted, B.BudgetExhausted) << "jobs=" << Jobs;
}

} // namespace

TEST(ReducerParallel, ReducedBytesAndStatsAreIdenticalAcrossJobCounts) {
  Bytes Input = serialize(makeWideDiscrepancyClass());
  ASSERT_TRUE(problem1Persists("Wide", Input));

  ReducerOptions Seq;
  ReductionStats SeqStats;
  auto SeqOut = reduceClassfile(Input, problem1Persists, Seq, &SeqStats);
  ASSERT_TRUE(SeqOut.ok()) << SeqOut.error();
  EXPECT_LT(SeqOut->size(), Input.size());

  for (size_t Jobs : {size_t(2), size_t(8)}) {
    ReducerOptions Par;
    Par.Jobs = Jobs;
    ReductionStats ParStats;
    auto ParOut = reduceClassfile(Input, problem1Persists, Par, &ParStats);
    ASSERT_TRUE(ParOut.ok()) << ParOut.error();
    EXPECT_EQ(*SeqOut, *ParOut) << "reduced bytes differ at jobs=" << Jobs;
    expectSameStats(SeqStats, ParStats, Jobs);
  }
}

TEST(ReducerParallel, BudgetAccountingIsJobsInvariant) {
  // Speculative probes must not charge the budget: a tight budget stops
  // at the same query count, with the same best-so-far bytes, no matter
  // how many probes were in flight.
  Bytes Input = serialize(makeWideDiscrepancyClass());
  ReducerOptions Seq;
  Seq.MaxOracleQueries = 7;
  ReductionStats SeqStats;
  auto SeqOut = reduceClassfile(Input, problem1Persists, Seq, &SeqStats);
  ASSERT_TRUE(SeqOut.ok()) << SeqOut.error();
  EXPECT_TRUE(SeqStats.BudgetExhausted);
  EXPECT_LE(SeqStats.OracleQueries, 7u);

  ReducerOptions Par;
  Par.MaxOracleQueries = 7;
  Par.Jobs = 8;
  ReductionStats ParStats;
  auto ParOut = reduceClassfile(Input, problem1Persists, Par, &ParStats);
  ASSERT_TRUE(ParOut.ok()) << ParOut.error();
  EXPECT_EQ(*SeqOut, *ParOut);
  expectSameStats(SeqStats, ParStats, 8);
}

TEST(ReducerParallel, LegacyModeIsAlsoJobsInvariant) {
  // The one-element-at-a-time baseline shares the probe pipeline, so it
  // must honor the same determinism contract.
  Bytes Input = serialize(makeWideDiscrepancyClass());
  ReducerOptions Seq;
  Seq.ChunkedHdd = false;
  ReductionStats SeqStats;
  auto SeqOut = reduceClassfile(Input, problem1Persists, Seq, &SeqStats);
  ASSERT_TRUE(SeqOut.ok()) << SeqOut.error();

  ReducerOptions Par;
  Par.ChunkedHdd = false;
  Par.Jobs = 4;
  ReductionStats ParStats;
  auto ParOut = reduceClassfile(Input, problem1Persists, Par, &ParStats);
  ASSERT_TRUE(ParOut.ok()) << ParOut.error();
  EXPECT_EQ(*SeqOut, *ParOut);
  expectSameStats(SeqStats, ParStats, 4);
}
