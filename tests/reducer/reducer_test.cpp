//===- tests/reducer/reducer_test.cpp --------------------------------------===//
//
// Hierarchical delta debugging (§2.3): reduction keeps the discrepancy,
// removes irrelevant members, and respects the oracle budget.
//
//===----------------------------------------------------------------------===//

#include "../TestHelpers.h"
#include "classfile/ClassReader.h"
#include "reducer/Reducer.h"

#include <gtest/gtest.h>

using namespace classfuzz;
using namespace classfuzz::testhelpers;

namespace {

/// A bloated Figure 2-style class: the discrepancy-relevant non-static
/// <clinit> plus unrelated fields and methods the reducer should strip.
ClassFile makeBloatedDiscrepancyClass() {
  ClassFile CF = makeHelloClass("Bloated");
  for (int I = 0; I != 4; ++I) {
    FieldInfo F;
    F.Name = "junk" + std::to_string(I);
    F.Descriptor = "I";
    F.AccessFlags = ACC_PUBLIC;
    CF.Fields.push_back(std::move(F));
  }
  for (int I = 0; I != 3; ++I) {
    MethodInfo M;
    M.Name = "noise" + std::to_string(I);
    M.Descriptor = "()V";
    M.AccessFlags = ACC_PUBLIC;
    CodeAttr Code;
    Code.MaxStack = 0;
    Code.MaxLocals = 1;
    Code.Code = {OP_return};
    M.Code = std::move(Code);
    CF.Methods.push_back(std::move(M));
  }
  // The discrepancy trigger (Problem 1).
  MethodInfo Clinit;
  Clinit.Name = "<clinit>";
  Clinit.Descriptor = "()V";
  Clinit.AccessFlags = ACC_PUBLIC | ACC_ABSTRACT;
  CF.Methods.push_back(std::move(Clinit));
  return CF;
}

/// Oracle: the class runs on HotSpot 8 but J9 reports a format error.
bool problem1Persists(const std::string &Name, const Bytes &Data) {
  JvmResult OnHs = runOn(makeHotSpot8Policy(), {{Name, Data}}, Name);
  JvmResult OnJ9 = runOn(makeJ9Policy(), {{Name, Data}}, Name);
  return OnHs.Invoked && !OnJ9.Invoked &&
         OnJ9.Error == JvmErrorKind::ClassFormatError;
}

} // namespace

TEST(Reducer, StripsIrrelevantMembersKeepingTheDiscrepancy) {
  Bytes Input = serialize(makeBloatedDiscrepancyClass());
  ASSERT_TRUE(problem1Persists("Bloated", Input));

  ReductionStats Stats;
  auto Reduced = reduceClassfile(Input, problem1Persists, &Stats);
  ASSERT_TRUE(Reduced.ok()) << Reduced.error();
  EXPECT_LT(Reduced->size(), Input.size());
  EXPECT_TRUE(problem1Persists("Bloated", *Reduced));

  auto CF = parseClassFile(*Reduced);
  ASSERT_TRUE(CF.ok());
  EXPECT_TRUE(CF->Fields.empty()) << "all junk fields removed";
  EXPECT_NE(CF->findMethodByName("<clinit>"), nullptr)
      << "the trigger survives";
  EXPECT_EQ(CF->findMethodByName("noise0"), nullptr);
  EXPECT_NE(CF->findMethodByName("main"), nullptr)
      << "main is needed for 'runs on HotSpot'";
  EXPECT_GT(Stats.DeletionsKept, 4u);
  EXPECT_GT(Stats.OracleQueries, Stats.DeletionsKept);
}

TEST(Reducer, RejectsInputThatDoesNotTrigger) {
  Bytes Plain = serialize(makeHelloClass("Plain"));
  auto Out = reduceClassfile(Plain, problem1Persists);
  ASSERT_FALSE(Out.ok());
  EXPECT_NE(Out.error().find("oracle"), std::string::npos);
}

TEST(Reducer, RespectsQueryBudget) {
  Bytes Input = serialize(makeBloatedDiscrepancyClass());
  ReductionStats Stats;
  auto Out = reduceClassfile(Input, problem1Persists, &Stats,
                             /*MaxOracleQueries=*/5);
  ASSERT_TRUE(Out.ok());
  EXPECT_LE(Stats.OracleQueries, 5u);
}

TEST(Reducer, StatementReductionShrinksBodies) {
  // Oracle: class prints "Completed!" on HotSpot 8. Padding statements
  // (nops and dead constants) around the print must disappear.
  ClassFile CF = makeHelloClass("Padded");
  MethodInfo *Main = CF.findMethod("main", "([Ljava/lang/String;)V");
  CodeBuilder B(CF.CP);
  B.emit(OP_nop);
  B.emit(OP_nop);
  B.pushInt(7);
  B.emit(OP_pop);
  B.getStatic("java/lang/System", "out", "Ljava/io/PrintStream;");
  B.pushString("Completed!");
  B.invokeVirtual("java/io/PrintStream", "println",
                  "(Ljava/lang/String;)V");
  B.emit(OP_nop);
  B.emit(OP_return);
  Main->Code->Code = B.build();
  Bytes Input = serialize(CF);

  auto stillPrints = [](const std::string &Name, const Bytes &Data) {
    JvmResult R = runOn(makeHotSpot8Policy(), {{Name, Data}}, Name);
    return R.Invoked && R.Output.size() == 1 &&
           R.Output[0] == "Completed!";
  };
  ASSERT_TRUE(stillPrints("Padded", Input));

  ReductionStats Stats;
  auto Reduced = reduceClassfile(Input, stillPrints, &Stats);
  ASSERT_TRUE(Reduced.ok()) << Reduced.error();
  EXPECT_GE(Stats.StatementsRemoved, 4u)
      << "nops and the dead constant are deleted";
  EXPECT_TRUE(stillPrints("Padded", *Reduced));
}
