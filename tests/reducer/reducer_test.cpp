//===- tests/reducer/reducer_test.cpp --------------------------------------===//
//
// Hierarchical delta debugging (§2.3): reduction keeps the discrepancy,
// removes irrelevant members, and respects the oracle budget.
//
//===----------------------------------------------------------------------===//

#include "../TestHelpers.h"
#include "classfile/ClassReader.h"
#include "reducer/Reducer.h"

#include <gtest/gtest.h>

using namespace classfuzz;
using namespace classfuzz::testhelpers;

namespace {

/// A bloated Figure 2-style class: the discrepancy-relevant non-static
/// <clinit> plus unrelated fields and methods the reducer should strip.
ClassFile makeBloatedDiscrepancyClass() {
  ClassFile CF = makeHelloClass("Bloated");
  for (int I = 0; I != 4; ++I) {
    FieldInfo F;
    F.Name = "junk" + std::to_string(I);
    F.Descriptor = "I";
    F.AccessFlags = ACC_PUBLIC;
    CF.Fields.push_back(std::move(F));
  }
  for (int I = 0; I != 3; ++I) {
    MethodInfo M;
    M.Name = "noise" + std::to_string(I);
    M.Descriptor = "()V";
    M.AccessFlags = ACC_PUBLIC;
    CodeAttr Code;
    Code.MaxStack = 0;
    Code.MaxLocals = 1;
    Code.Code = {OP_return};
    M.Code = std::move(Code);
    CF.Methods.push_back(std::move(M));
  }
  // The discrepancy trigger (Problem 1).
  MethodInfo Clinit;
  Clinit.Name = "<clinit>";
  Clinit.Descriptor = "()V";
  Clinit.AccessFlags = ACC_PUBLIC | ACC_ABSTRACT;
  CF.Methods.push_back(std::move(Clinit));
  return CF;
}

/// Oracle: the class runs on HotSpot 8 but J9 reports a format error.
bool problem1Persists(const std::string &Name, const Bytes &Data) {
  JvmResult OnHs = runOn(makeHotSpot8Policy(), {{Name, Data}}, Name);
  JvmResult OnJ9 = runOn(makeJ9Policy(), {{Name, Data}}, Name);
  return OnHs.Invoked && !OnJ9.Invoked &&
         OnJ9.Error == JvmErrorKind::ClassFormatError;
}

/// Oracle: the class prints exactly "Completed!" on HotSpot 8.
bool printsCompleted(const std::string &Name, const Bytes &Data) {
  JvmResult R = runOn(makeHotSpot8Policy(), {{Name, Data}}, Name);
  return R.Invoked && R.Output.size() == 1 && R.Output[0] == "Completed!";
}

} // namespace

TEST(Reducer, StripsIrrelevantMembersKeepingTheDiscrepancy) {
  Bytes Input = serialize(makeBloatedDiscrepancyClass());
  ASSERT_TRUE(problem1Persists("Bloated", Input));

  ReductionStats Stats;
  auto Reduced = reduceClassfile(Input, problem1Persists, &Stats);
  ASSERT_TRUE(Reduced.ok()) << Reduced.error();
  EXPECT_LT(Reduced->size(), Input.size());
  EXPECT_TRUE(problem1Persists("Bloated", *Reduced));

  auto CF = parseClassFile(*Reduced);
  ASSERT_TRUE(CF.ok());
  EXPECT_TRUE(CF->Fields.empty()) << "all junk fields removed";
  EXPECT_NE(CF->findMethodByName("<clinit>"), nullptr)
      << "the trigger survives";
  EXPECT_EQ(CF->findMethodByName("noise0"), nullptr);
  EXPECT_NE(CF->findMethodByName("main"), nullptr)
      << "main is needed for 'runs on HotSpot'";
  // Chunked deletion keeps whole windows per probe, so count removals
  // per kind rather than kept probes.
  EXPECT_EQ(Stats.FieldsRemoved, 4u);
  EXPECT_GE(Stats.MethodsRemoved, 3u);
  EXPECT_GE(Stats.DeletionsKept, 1u);
  EXPECT_GT(Stats.OracleQueries, Stats.DeletionsKept);
  EXPECT_EQ(Stats.CacheMisses, Stats.OracleQueries);
}

TEST(Reducer, RejectsInputThatDoesNotTrigger) {
  Bytes Plain = serialize(makeHelloClass("Plain"));
  auto Out = reduceClassfile(Plain, problem1Persists);
  ASSERT_FALSE(Out.ok());
  EXPECT_NE(Out.error().find("oracle"), std::string::npos);
}

TEST(Reducer, RespectsQueryBudget) {
  Bytes Input = serialize(makeBloatedDiscrepancyClass());
  ReductionStats Stats;
  auto Out = reduceClassfile(Input, problem1Persists, &Stats,
                             /*MaxOracleQueries=*/5);
  ASSERT_TRUE(Out.ok());
  EXPECT_LE(Stats.OracleQueries, 5u);
  // Budget exhaustion mid-run is progress, not failure: the flag is
  // set, and the returned bytes are the best oracle-accepted candidate.
  EXPECT_TRUE(Stats.BudgetExhausted);
  EXPECT_TRUE(problem1Persists("Bloated", *Out));
}

TEST(Reducer, ZeroBudgetIsABudgetErrorNotOracleRejection) {
  // MaxOracleQueries == 0 used to report "input does not satisfy the
  // reduction oracle" even though the oracle was never asked.
  Bytes Input = serialize(makeBloatedDiscrepancyClass());
  ReducerOptions Opts;
  Opts.MaxOracleQueries = 0;
  ReductionStats Stats;
  auto Out = reduceClassfile(Input, problem1Persists, Opts, &Stats);
  ASSERT_FALSE(Out.ok());
  EXPECT_NE(Out.error().find("budget"), std::string::npos) << Out.error();
  EXPECT_EQ(Out.error().find("does not satisfy"), std::string::npos)
      << Out.error();
  EXPECT_TRUE(Stats.BudgetExhausted);
  EXPECT_EQ(Stats.OracleQueries, 0u);
}

TEST(Reducer, StatementReductionShrinksBodies) {
  // Oracle: class prints "Completed!" on HotSpot 8. Padding statements
  // (nops and dead constants) around the print must disappear.
  ClassFile CF = makeHelloClass("Padded");
  MethodInfo *Main = CF.findMethod("main", "([Ljava/lang/String;)V");
  CodeBuilder B(CF.CP);
  B.emit(OP_nop);
  B.emit(OP_nop);
  B.pushInt(7);
  B.emit(OP_pop);
  B.getStatic("java/lang/System", "out", "Ljava/io/PrintStream;");
  B.pushString("Completed!");
  B.invokeVirtual("java/io/PrintStream", "println",
                  "(Ljava/lang/String;)V");
  B.emit(OP_nop);
  B.emit(OP_return);
  Main->Code->Code = B.build();
  Bytes Input = serialize(CF);

  ASSERT_TRUE(printsCompleted("Padded", Input));

  ReductionStats Stats;
  auto Reduced = reduceClassfile(Input, printsCompleted, &Stats);
  ASSERT_TRUE(Reduced.ok()) << Reduced.error();
  EXPECT_GE(Stats.StatementsRemoved, 4u)
      << "nops and the dead constant are deleted";
  EXPECT_TRUE(printsCompleted("Padded", *Reduced));
}

TEST(Reducer, BranchToDeletedTrailingStatementIsSkippedStructurally) {
  // main ends with `goto L; L: return`. Deleting the trailing return
  // leaves the goto with nothing to retarget to; the old decrement-only
  // fixup produced a target one past the end (an unassemblable
  // candidate), the structural check now skips it before assembly.
  ClassFile CF = makeHelloClass("Branchy");
  MethodInfo *Main = CF.findMethod("main", "([Ljava/lang/String;)V");
  CodeBuilder B(CF.CP);
  B.getStatic("java/lang/System", "out", "Ljava/io/PrintStream;");
  B.pushString("Completed!");
  B.invokeVirtual("java/io/PrintStream", "println",
                  "(Ljava/lang/String;)V");
  CodeBuilder::Label L = B.newLabel();
  B.branch(OP_goto, L);
  B.bind(L);
  B.emit(OP_return);
  Main->Code->Code = B.build();
  Bytes Input = serialize(CF);
  ASSERT_TRUE(printsCompleted("Branchy", Input));

  ReducerOptions Opts;
  ReductionStats Stats;
  auto Reduced = reduceClassfile(Input, printsCompleted, Opts, &Stats);
  ASSERT_TRUE(Reduced.ok()) << Reduced.error();
  EXPECT_TRUE(printsCompleted("Branchy", *Reduced));
  EXPECT_EQ(Stats.AssemblyFailures, 0u)
      << "every doomed deletion is caught before assembly";
  EXPECT_GT(Stats.SkippedStructural, 0u);
  // The goto itself is dead and must be deleted (with its target fixed).
  auto Out = lowerClassBytes(*Reduced);
  ASSERT_TRUE(Out.ok());
  for (const JirMethod &M : Out->Methods)
    for (const JirStmt &S : M.Body)
      EXPECT_FALSE(S.isBranch());
}

TEST(Reducer, EmptiedMethodBodiesAreNeverProbed) {
  // Deleting a whole body cannot help (the methods level deletes whole
  // methods); such windows are skipped without oracle or assembly work,
  // and no surviving method ends up with an empty body. main's body is
  // a single return, so the statement level must probe (and skip) the
  // whole-body window.
  ClassFile CF = makeHelloClass("Solo");
  MethodInfo *Main = CF.findMethod("main", "([Ljava/lang/String;)V");
  Main->Code->Code = {OP_return};
  Main->Code->MaxStack = 0;
  Bytes Input = serialize(CF);
  ReductionOracle Runs = [](const std::string &Name, const Bytes &Data) {
    return runOn(makeHotSpot8Policy(), {{Name, Data}}, Name).Invoked;
  };
  ASSERT_TRUE(Runs("Solo", Input));

  ReducerOptions Opts;
  ReductionStats Stats;
  auto Reduced = reduceClassfile(Input, Runs, Opts, &Stats);
  ASSERT_TRUE(Reduced.ok()) << Reduced.error();
  EXPECT_GT(Stats.SkippedStructural, 0u)
      << "whole-body windows are structural skips";
  EXPECT_EQ(Stats.AssemblyFailures, 0u);
  auto Out = parseClassFile(*Reduced);
  ASSERT_TRUE(Out.ok());
  for (const MethodInfo &M : Out->Methods) {
    if (M.Code)
      EXPECT_FALSE(M.Code->Code.empty()) << M.Name;
  }
}

TEST(Reducer, ChunkedDeletionBeatsPerElementOnBloatedInput) {
  // 40 junk fields collapse in a handful of chunk probes; the legacy
  // one-element pass pays one probe per field per sweep.
  ClassFile CF = makeBloatedDiscrepancyClass();
  for (int I = 0; I != 36; ++I) {
    FieldInfo F;
    F.Name = "pad" + std::to_string(I);
    F.Descriptor = "I";
    F.AccessFlags = ACC_PUBLIC;
    CF.Fields.push_back(std::move(F));
  }
  Bytes Input = serialize(CF);
  ASSERT_TRUE(problem1Persists("Bloated", Input));

  ReducerOptions Chunked;
  ReductionStats ChunkedStats;
  auto ChunkedOut =
      reduceClassfile(Input, problem1Persists, Chunked, &ChunkedStats);
  ASSERT_TRUE(ChunkedOut.ok()) << ChunkedOut.error();

  ReducerOptions Legacy;
  Legacy.ChunkedHdd = false;
  ReductionStats LegacyStats;
  auto LegacyOut =
      reduceClassfile(Input, problem1Persists, Legacy, &LegacyStats);
  ASSERT_TRUE(LegacyOut.ok()) << LegacyOut.error();

  // Both fully strip the 40 junk fields; chunking does it with multi-
  // element deletions and fewer oracle queries.
  EXPECT_EQ(ChunkedStats.FieldsRemoved, 40u);
  EXPECT_EQ(LegacyStats.FieldsRemoved, 40u);
  EXPECT_GE(ChunkedStats.ChunkDeletionsKept, 1u);
  EXPECT_GE(ChunkedStats.LargestChunkKept, 2u);
  EXPECT_EQ(LegacyStats.ChunkDeletionsKept, 0u);
  EXPECT_LT(ChunkedStats.OracleQueries, LegacyStats.OracleQueries);
  EXPECT_TRUE(problem1Persists("Bloated", *ChunkedOut));
  EXPECT_TRUE(problem1Persists("Bloated", *LegacyOut));
}

TEST(Reducer, CacheHitsNeverReinvokeTheOracle) {
  // Every statement of main is load-bearing for the print, so the
  // statement level only rejects: the unaligned pair scan and the final
  // fixed-point sweep re-probe byte-identical candidates, which the
  // memo cache must answer without reaching the oracle.
  Bytes Input = serialize(makeHelloClass("Solo"));
  size_t Invocations = 0;
  ReductionOracle Counting = [&](const std::string &Name,
                                 const Bytes &Data) {
    ++Invocations;
    return printsCompleted(Name, Data);
  };
  ReducerOptions Opts; // Jobs = 1: every oracle call is a committed probe.
  ReductionStats Stats;
  auto Reduced = reduceClassfile(Input, Counting, Opts, &Stats);
  ASSERT_TRUE(Reduced.ok()) << Reduced.error();
  EXPECT_EQ(Invocations, Stats.OracleQueries)
      << "cache hits must not reach the oracle";
  EXPECT_GT(Stats.CacheHits, 0u)
      << "the fixed-point sweep re-probes candidates the cache answers";
  EXPECT_EQ(Stats.CacheMisses, Stats.OracleQueries);
}
