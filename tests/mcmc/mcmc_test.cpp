//===- tests/mcmc/mcmc_test.cpp --------------------------------------------===//
//
// Metropolis-Hastings mutator selection (§2.2.2): parameter estimation,
// ranking maintenance, and the selection-frequency property (Finding 2).
//
//===----------------------------------------------------------------------===//

#include "mcmc/McmcSelector.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

using namespace classfuzz;

TEST(McmcParams, PaperParameterRangeReproduced) {
  PBounds Bounds = estimatePBounds(129, 0.001);
  // The paper: "the initial value of p needs to be in the range
  // (0.022, 0.025)".
  EXPECT_NEAR(Bounds.Lo, 0.023, 0.002);
  EXPECT_NEAR(Bounds.Hi, 0.025, 0.002);
}

TEST(McmcParams, ChosenPSatisfiesAllConditions) {
  double P = defaultGeometricP(129);
  EXPECT_NEAR(P, 3.0 / 129.0, 1e-12);
  EXPECT_TRUE(satisfiesPConditions(P, 129, 0.001));
}

TEST(McmcParams, ConditionBoundariesRejectOutliers) {
  EXPECT_FALSE(satisfiesPConditions(0.001, 129))
      << "condition 2: p >= 1/129";
  EXPECT_FALSE(satisfiesPConditions(0.2, 129))
      << "condition 3: the worst mutator keeps a chance";
  EXPECT_FALSE(satisfiesPConditions(0.0, 129));
  EXPECT_FALSE(satisfiesPConditions(1.0, 129));
}

TEST(McmcSelector, InitialRankingIsByIndex) {
  McmcSelector S(10);
  for (size_t I = 0; I != 10; ++I)
    EXPECT_EQ(S.rankOf(I), I);
}

TEST(McmcSelector, SuccessRateBookkeeping) {
  McmcSelector S(5);
  S.recordOutcome(2, true);
  S.recordOutcome(2, false);
  S.recordOutcome(3, true);
  EXPECT_DOUBLE_EQ(S.successRate(2), 0.5);
  EXPECT_DOUBLE_EQ(S.successRate(3), 1.0);
  EXPECT_DOUBLE_EQ(S.successRate(0), 1.0)
      << "never-selected mutators carry the optimistic prior";
  EXPECT_EQ(S.timesSelected(2), 2u);
  EXPECT_EQ(S.timesSucceeded(2), 1u);
}

TEST(McmcSelector, RankingSortsBySuccessRateDescending) {
  McmcSelector S(4);
  S.recordOutcome(3, true); // rate 1.0
  S.recordOutcome(1, true);
  S.recordOutcome(1, false); // rate 0.5
  S.recordOutcome(0, false); // rate 0.0
  // Mutator 2 was never selected: optimistic prior 1.0 ties with 3;
  // stable sort keeps the lower index first.
  EXPECT_EQ(S.ranking()[0], 2u);
  EXPECT_EQ(S.ranking()[1], 3u);
  EXPECT_EQ(S.ranking()[2], 1u);
  EXPECT_EQ(S.ranking()[3], 0u);
  EXPECT_EQ(S.rankOf(3), 1u);
  EXPECT_EQ(S.rankOf(1), 2u);
}

TEST(McmcSelector, IncrementalRankingMatchesStableSort) {
  // recordOutcome moves only the updated mutator; this must reproduce
  // exactly the ranking a full stable re-sort after every outcome (the
  // previous implementation) would produce, ties and all.
  const size_t N = 17;
  McmcSelector S(N, 3.0 / N);
  Rng R(123);
  std::vector<size_t> Shadow(N);
  for (size_t I = 0; I != N; ++I)
    Shadow[I] = I;
  auto RateOf = [&](size_t Mu) {
    return S.timesSelected(Mu) == 0
               ? 1.0
               : static_cast<double>(S.timesSucceeded(Mu)) /
                     static_cast<double>(S.timesSelected(Mu));
  };
  for (int Iter = 0; Iter != 3000; ++Iter) {
    size_t Mu = R.choiceIndex(N);
    S.recordOutcome(Mu, R.nextBool(0.1 + 0.4 * static_cast<double>(Mu % 3)));
    std::stable_sort(Shadow.begin(), Shadow.end(),
                     [&](size_t A, size_t B) { return RateOf(A) > RateOf(B); });
    ASSERT_EQ(S.ranking(), Shadow) << "diverged at outcome " << Iter;
    for (size_t K = 0; K != N; ++K)
      ASSERT_EQ(S.rankOf(Shadow[K]), K);
  }
}

TEST(McmcSelector, SelectNextTerminatesOnDegenerateP) {
  // A NaN p makes every Metropolis comparison false; an unbounded
  // proposal loop would spin forever. The attempt bound falls back to
  // the current mutator.
  McmcSelector S(7, std::nan(""));
  Rng R(3);
  size_t Picked = S.selectNext(R);
  EXPECT_EQ(Picked, S.current());
  EXPECT_LT(Picked, 7u);
}

TEST(McmcSelector, BetterProposalsAlwaysAccepted) {
  // With the current sample at the bottom rank, any proposal has
  // k2 <= k1, so acceptance is immediate; selection must terminate and
  // return a valid index.
  McmcSelector S(129);
  Rng R(5);
  for (int I = 0; I != 1000; ++I) {
    size_t Picked = S.selectNext(R);
    EXPECT_LT(Picked, 129u);
  }
}

TEST(McmcSelector, HighSuccessMutatorsSelectedMoreOften) {
  // Finding 2 / the §2.2.2 proposition: mutators with higher success
  // rates get selected more frequently. Simulate: mutator i succeeds
  // with probability depending on its index tier.
  const size_t N = 20;
  // Scale p to the mutator count (the paper's 3/129 rule, here 3/20),
  // otherwise the geometric bias is too flat for 20 ranks.
  McmcSelector S(N, 3.0 / N);
  Rng R(99);
  std::vector<size_t> Freq(N, 0);
  for (int Iter = 0; Iter != 8000; ++Iter) {
    size_t Mu = S.selectNext(R);
    ++Freq[Mu];
    double TrueRate = Mu < 5 ? 0.8 : (Mu < 10 ? 0.3 : 0.02);
    S.recordOutcome(Mu, R.nextBool(TrueRate));
  }
  size_t GoodTier = 0, BadTier = 0;
  for (size_t I = 0; I != 5; ++I)
    GoodTier += Freq[I];
  for (size_t I = 10; I != 20; ++I)
    BadTier += Freq[I];
  // 5 good mutators should collectively out-draw 10 bad ones.
  EXPECT_GT(GoodTier, BadTier);
  // And the per-mutator average frequency gap should be clear.
  EXPECT_GT(GoodTier / 5.0, 2.0 * (BadTier / 10.0));
}

TEST(McmcSelector, GeometricTargetApproximatedOnStableRanking) {
  // With frozen success rates (no recording), the chain's stationary
  // distribution over ranks should be near-geometric: rank 0 most
  // likely, monotonically decreasing in tiers.
  const size_t N = 129;
  McmcSelector S(N);
  // Pre-shape the ranking: mutator i gets success rate descending in i.
  for (size_t I = 0; I != N; ++I) {
    size_t Successes = N - I;
    for (size_t K = 0; K != Successes; ++K)
      S.recordOutcome(I, true);
    for (size_t K = 0; K != I; ++K)
      S.recordOutcome(I, false);
  }
  EXPECT_EQ(S.ranking()[0], 0u);

  Rng R(7);
  std::vector<size_t> Freq(N, 0);
  for (int Iter = 0; Iter != 30000; ++Iter)
    ++Freq[S.selectNext(R)];

  size_t Top = 0, Mid = 0, Bottom = 0;
  for (size_t I = 0; I != 20; ++I)
    Top += Freq[S.ranking()[I]];
  for (size_t I = 50; I != 70; ++I)
    Mid += Freq[S.ranking()[I]];
  for (size_t I = 109; I != 129; ++I)
    Bottom += Freq[S.ranking()[I]];
  EXPECT_GT(Top, Mid);
  EXPECT_GT(Mid, Bottom);
}

TEST(McmcSelector, DeepRewardBlendsIntoSuccessRate) {
  McmcSelector S(5, 3.0 / 5);
  S.setDeepReward(0.5);
  EXPECT_DOUBLE_EQ(S.deepReward(), 0.5);
  // Never-selected keeps the optimistic prior regardless of weight.
  EXPECT_DOUBLE_EQ(S.successRate(0), 1.0);

  // 4 selections, 1 acceptance, 2 deep reaches:
  // (1 + 0.5 * 2) / 4 = 0.5.
  S.recordOutcome(0, true);
  S.recordOutcome(0, false);
  S.recordOutcome(0, false);
  S.recordOutcome(0, false);
  S.recordDeepReach(0);
  S.recordDeepReach(0);
  EXPECT_EQ(S.deepHits(0), 2u);
  EXPECT_DOUBLE_EQ(S.successRate(0), 0.5);

  // At weight 0 the same history is the paper's pure rate: 1/4.
  S.setDeepReward(0.0);
  EXPECT_DOUBLE_EQ(S.successRate(0), 0.25);
}

TEST(McmcSelector, DeepReachReRankMatchesStableSort) {
  // recordDeepReach moves only the updated mutator, like recordOutcome;
  // the incremental bubble must reproduce a full stable re-sort under
  // the blended rate, ties and all.
  const size_t N = 17;
  const double W = 0.7;
  McmcSelector S(N, 3.0 / N);
  S.setDeepReward(W);
  Rng R(456);
  std::vector<size_t> Shadow(N);
  for (size_t I = 0; I != N; ++I)
    Shadow[I] = I;
  auto RateOf = [&](size_t Mu) {
    return S.timesSelected(Mu) == 0
               ? 1.0
               : (static_cast<double>(S.timesSucceeded(Mu)) +
                  W * static_cast<double>(S.deepHits(Mu))) /
                     static_cast<double>(S.timesSelected(Mu));
  };
  for (int Iter = 0; Iter != 3000; ++Iter) {
    size_t Mu = R.choiceIndex(N);
    S.recordOutcome(Mu, R.nextBool(0.1 + 0.4 * static_cast<double>(Mu % 3)));
    if (R.nextBool(0.3))
      S.recordDeepReach(Mu);
    std::stable_sort(Shadow.begin(), Shadow.end(),
                     [&](size_t A, size_t B) { return RateOf(A) > RateOf(B); });
    ASSERT_EQ(S.ranking(), Shadow) << "diverged at outcome " << Iter;
    for (size_t K = 0; K != N; ++K)
      ASSERT_EQ(S.rankOf(Shadow[K]), K);
  }
}

TEST(McmcSelector, ZeroWeightDeepReachLeavesRankingAlone) {
  // With the default weight, recordDeepReach re-ranks on an unchanged
  // rate -- the ordering (including tie order) must not move, so a
  // weightless campaign is indistinguishable from one that never
  // recorded deep reaches.
  const size_t N = 9;
  McmcSelector S(N, 3.0 / N);
  Rng R(789);
  for (int Iter = 0; Iter != 500; ++Iter) {
    size_t Mu = R.choiceIndex(N);
    S.recordOutcome(Mu, R.nextBool(0.3));
    auto Before = S.ranking();
    S.recordDeepReach(Mu);
    ASSERT_EQ(S.ranking(), Before) << "moved at outcome " << Iter;
  }
}
