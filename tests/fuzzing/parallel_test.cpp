//===- tests/fuzzing/parallel_test.cpp -------------------------------------===//
//
// The parallel campaign pipeline: speculative lookahead with an in-order
// commit stage must reproduce the sequential loop's trajectory exactly,
// so a campaign's results are a function of (config, RngSeed) alone --
// never of the worker count.
//
//===----------------------------------------------------------------------===//

#include "fuzzing/Campaign.h"
#include "mutation/Mutator.h"

#include <gtest/gtest.h>

using namespace classfuzz;

namespace {

CampaignConfig jobsConfig(FuzzAlgorithm Algo, size_t Jobs,
                          size_t Iterations = 150, uint64_t Seed = 11) {
  CampaignConfig Config;
  Config.Algo = Algo;
  Config.Iterations = Iterations;
  Config.RngSeed = Seed;
  Config.NumSeeds = 13;
  Config.Jobs = Jobs;
  return Config;
}

/// Full-strength equality: generated classes (names, bytes, provenance),
/// accepted-class set, and per-mutator statistics.
void expectIdenticalResults(const CampaignResult &A,
                            const CampaignResult &B) {
  ASSERT_EQ(A.Iterations, B.Iterations);
  ASSERT_EQ(A.numGenerated(), B.numGenerated());
  for (size_t I = 0; I != A.GenClasses.size(); ++I) {
    EXPECT_EQ(A.GenClasses[I].Name, B.GenClasses[I].Name);
    EXPECT_EQ(A.GenClasses[I].Data, B.GenClasses[I].Data);
    EXPECT_EQ(A.GenClasses[I].MutatorIndex, B.GenClasses[I].MutatorIndex);
    EXPECT_EQ(A.GenClasses[I].Representative,
              B.GenClasses[I].Representative);
    EXPECT_TRUE(A.GenClasses[I].Trace.sameSets(B.GenClasses[I].Trace));
  }
  EXPECT_EQ(A.TestClassIndices, B.TestClassIndices);
  EXPECT_EQ(A.MutatorSelected, B.MutatorSelected);
  EXPECT_EQ(A.MutatorSucceeded, B.MutatorSucceeded);
}

} // namespace

TEST(ParallelCampaign, JobsOneMatchesJobsFourStBr) {
  auto Seq = runCampaign(jobsConfig(FuzzAlgorithm::ClassfuzzStBr, 1));
  auto Par = runCampaign(jobsConfig(FuzzAlgorithm::ClassfuzzStBr, 4));
  expectIdenticalResults(Seq, Par);
}

TEST(ParallelCampaign, JobsOneMatchesJobsFourUniquefuzz) {
  auto Seq = runCampaign(jobsConfig(FuzzAlgorithm::Uniquefuzz, 1));
  auto Par = runCampaign(jobsConfig(FuzzAlgorithm::Uniquefuzz, 4));
  expectIdenticalResults(Seq, Par);
}

TEST(ParallelCampaign, JobsOneMatchesJobsFourGreedyfuzz) {
  auto Seq = runCampaign(jobsConfig(FuzzAlgorithm::Greedyfuzz, 1));
  auto Par = runCampaign(jobsConfig(FuzzAlgorithm::Greedyfuzz, 4));
  expectIdenticalResults(Seq, Par);
}

TEST(ParallelCampaign, ParallelRunsAreDeterministicAcrossRepeats) {
  auto A = runCampaign(jobsConfig(FuzzAlgorithm::ClassfuzzStBr, 4, 120));
  auto B = runCampaign(jobsConfig(FuzzAlgorithm::ClassfuzzStBr, 4, 120));
  expectIdenticalResults(A, B);
}

TEST(ParallelCampaign, JobCountsTwoAndEightAgree) {
  auto Two = runCampaign(jobsConfig(FuzzAlgorithm::ClassfuzzStBr, 2, 100));
  auto Eight = runCampaign(jobsConfig(FuzzAlgorithm::ClassfuzzStBr, 8, 100));
  expectIdenticalResults(Two, Eight);
}

TEST(ParallelCampaign, RandfuzzIgnoresJobs) {
  // randfuzz collects no coverage, so there is nothing to offload; the
  // sequential loop runs regardless and results must match.
  auto Seq = runCampaign(jobsConfig(FuzzAlgorithm::Randfuzz, 1));
  auto Par = runCampaign(jobsConfig(FuzzAlgorithm::Randfuzz, 4));
  expectIdenticalResults(Seq, Par);
}

TEST(ParallelCampaign, FeedbackAblationAlsoDeterministic) {
  auto MakeConfig = [](size_t Jobs) {
    CampaignConfig Config = jobsConfig(FuzzAlgorithm::ClassfuzzStBr, Jobs);
    Config.FeedbackAcceptedMutants = false;
    return Config;
  };
  auto Seq = runCampaign(MakeConfig(1));
  auto Par = runCampaign(MakeConfig(4));
  expectIdenticalResults(Seq, Par);
}

TEST(ParallelCampaign, MutatorStatisticsStayConsistent) {
  auto R = runCampaign(jobsConfig(FuzzAlgorithm::ClassfuzzStBr, 4, 200));
  ASSERT_EQ(R.MutatorSelected.size(), mutatorRegistry().size());
  size_t TotalSelected = 0, TotalSucceeded = 0;
  for (size_t I = 0; I != R.MutatorSelected.size(); ++I) {
    TotalSelected += R.MutatorSelected[I];
    TotalSucceeded += R.MutatorSucceeded[I];
    EXPECT_LE(R.MutatorSucceeded[I], R.MutatorSelected[I]);
  }
  EXPECT_EQ(TotalSelected, R.Iterations);
  EXPECT_EQ(TotalSucceeded, R.numTests());
}

TEST(ParallelCampaign, TierDiffCensusIsJobsInvariant) {
  auto WithTierDiff = [](size_t Jobs) {
    CampaignConfig Config =
        jobsConfig(FuzzAlgorithm::ClassfuzzStBr, Jobs, 120);
    Config.TierDiff = true;
    return Config;
  };
  auto Seq = runCampaign(WithTierDiff(1));
  auto Par = runCampaign(WithTierDiff(4));
  expectIdenticalResults(Seq, Par);
  EXPECT_EQ(Seq.TierOutcomeCounts, Par.TierOutcomeCounts);
  EXPECT_EQ(Seq.TierDisagreements, Par.TierDisagreements);
  // Every produced mutant carries its two-code tier encoding...
  size_t Produced = 0;
  for (size_t I = 0; I != Seq.GenClasses.size(); ++I) {
    ASSERT_EQ(Seq.GenClasses[I].TierEncoded.size(), 2u) << I;
    EXPECT_EQ(Seq.GenClasses[I].TierEncoded, Par.GenClasses[I].TierEncoded);
    ++Produced;
  }
  // ...and the census sums to the produced count.
  size_t Census = 0;
  for (const auto &[Encoded, Count] : Seq.TierOutcomeCounts)
    Census += Count;
  EXPECT_EQ(Census, Produced);
}

TEST(ParallelCampaign, TierDiffAlsoRidesDeltaDiversityBatches) {
  auto WithTierDiff = [](size_t Jobs) {
    CampaignConfig Config =
        jobsConfig(FuzzAlgorithm::ClassfuzzDdCoarse, Jobs, 80);
    Config.TierDiff = true;
    return Config;
  };
  auto Seq = runCampaign(WithTierDiff(1));
  auto Par = runCampaign(WithTierDiff(4));
  expectIdenticalResults(Seq, Par);
  EXPECT_EQ(Seq.TierOutcomeCounts, Par.TierOutcomeCounts);
  EXPECT_EQ(Seq.TierDisagreements, Par.TierDisagreements);
  for (const GeneratedClass &G : Seq.GenClasses)
    EXPECT_EQ(G.TierEncoded.size(), 2u) << G.Name;
}

TEST(ParallelCampaign, RandfuzzIgnoresTierDiff) {
  // randfuzz has no execution stage for the tier pair to ride.
  CampaignConfig Config = jobsConfig(FuzzAlgorithm::Randfuzz, 1, 60);
  Config.TierDiff = true;
  auto R = runCampaign(Config);
  EXPECT_TRUE(R.TierOutcomeCounts.empty());
  EXPECT_EQ(R.TierDisagreements, 0u);
  for (const GeneratedClass &G : R.GenClasses)
    EXPECT_TRUE(G.TierEncoded.empty()) << G.Name;
}
