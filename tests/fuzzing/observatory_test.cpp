//===- tests/fuzzing/observatory_test.cpp ----------------------------------===//
//
// The campaign observatory end to end: the commit-stage time series and
// the frontier/attribution census must be byte-identical across --jobs
// values (the same determinism contract every other artifact honors),
// the saturation detector must latch -- and stop, under StopOnPlateau --
// at the same committed iteration regardless of worker count, and the
// frontier's attribution must reference real campaign provenance.
//
//===----------------------------------------------------------------------===//

#include "fuzzing/Campaign.h"

#include "coverage/Frontier.h"
#include "telemetry/Telemetry.h"
#include "telemetry/TimeSeries.h"

#include <gtest/gtest.h>

#include <memory>

using namespace classfuzz;
namespace tel = classfuzz::telemetry;

namespace {

/// Telemetry is process-global: enable for the test, reset the registry
/// so sampled values reflect this campaign alone, restore on exit.
struct ObservatoryGuard {
  ObservatoryGuard() {
    tel::setEnabled(true);
    tel::metrics().reset();
  }
  ~ObservatoryGuard() {
    tel::setEnabled(false);
    tel::metrics().reset();
  }
};

struct ObservedRun {
  CampaignResult Result;
  std::vector<std::string> TsRows;
};

ObservedRun runObserved(size_t Jobs, size_t Iterations = 200,
                        size_t PlateauWindow = 0,
                        bool StopOnPlateau = false) {
  tel::metrics().reset();
  tel::TimeSeriesSampler::Options TsOpts;
  TsOpts.SampleEvery = 16;
  tel::TimeSeriesSampler Sampler(TsOpts);

  CampaignConfig Config;
  Config.Algo = FuzzAlgorithm::ClassfuzzStBr;
  Config.Iterations = Iterations;
  Config.RngSeed = 11;
  Config.NumSeeds = 6;
  Config.Jobs = Jobs;
  Config.TrackFrontier = true;
  Config.RareBranchThreshold = 4;
  Config.TimeSeries = &Sampler;
  Config.PlateauWindow = PlateauWindow;
  Config.StopOnPlateau = StopOnPlateau;

  ObservedRun Run;
  Run.Result = runCampaign(Config);
  Run.TsRows = Sampler.rows();
  return Run;
}

} // namespace

TEST(Observatory, TimeSeriesAndCensusAreByteIdenticalAcrossJobs) {
  ObservatoryGuard Guard;
  ObservedRun Seq = runObserved(1);
  ObservedRun Par = runObserved(8);

  ASSERT_FALSE(Seq.TsRows.empty());
  EXPECT_EQ(Seq.TsRows, Par.TsRows);
  // Every row ends the series at the final committed iteration.
  EXPECT_NE(Seq.TsRows.back().find("\"final\":true"), std::string::npos);

  ASSERT_NE(Seq.Result.Frontier, nullptr);
  ASSERT_NE(Par.Result.Frontier, nullptr);
  EXPECT_EQ(Seq.Result.Frontier->renderCensusJsonl(),
            Par.Result.Frontier->renderCensusJsonl());
}

TEST(Observatory, FrontierAttributionReferencesRealProvenance) {
  ObservatoryGuard Guard;
  ObservedRun Run = runObserved(1);
  const FrontierTracker &FT = *Run.Result.Frontier;
  EXPECT_GT(FT.distinctStmts(), 0u);
  EXPECT_GT(FT.distinctBranches(), 0u);
  // Seed registrations fold in at iteration 0 with no mutator; any
  // coverage first reached by a mutant carries its mutator id. Either
  // way the attributed seed exists in the result's provenance universe.
  bool SawMutantAttribution = false;
  for (uint32_t Id : FT.rareStmts()) {
    const FrontierFirstHit *First = FT.stmtFirstHit(Id);
    ASSERT_NE(First, nullptr);
    EXPECT_FALSE(First->SeedName.empty());
    if (!First->MutatorId.empty()) {
      SawMutantAttribution = true;
      EXPECT_GT(First->Iteration, 0u);
    }
  }
  // The census renders every tracked site exactly once.
  std::string Census = FT.renderCensusJsonl();
  size_t Lines = 0;
  for (char C : Census)
    Lines += C == '\n';
  EXPECT_EQ(Lines, 1 + FT.distinctStmts() + FT.distinctBranches());
  (void)SawMutantAttribution; // Coverage growth may stop before mutants.
}

TEST(Observatory, PlateauLatchesAndStopsAtTheSameIterationAcrossJobs) {
  ObservatoryGuard Guard;
  // A tiny window over a long budget guarantees a plateau well before
  // the budget: the pool saturates and acceptance dries up.
  ObservedRun Seq = runObserved(1, /*Iterations=*/4000,
                                /*PlateauWindow=*/20,
                                /*StopOnPlateau=*/true);
  ObservedRun Par = runObserved(8, /*Iterations=*/4000,
                                /*PlateauWindow=*/20,
                                /*StopOnPlateau=*/true);

  ASSERT_TRUE(Seq.Result.Plateaued);
  ASSERT_TRUE(Par.Result.Plateaued);
  EXPECT_LT(Seq.Result.Iterations, 4000u) << "the stop actually stopped";
  EXPECT_EQ(Seq.Result.PlateauAt, Par.Result.PlateauAt);
  EXPECT_EQ(Seq.Result.Iterations, Par.Result.Iterations);
  EXPECT_EQ(Seq.Result.Iterations, Seq.Result.PlateauAt)
      << "the latching commit is the last commit";
  EXPECT_EQ(Seq.TsRows, Par.TsRows);

  // The latch is observable in the metrics snapshot.
  ObservedRun Again = runObserved(1, 4000, 20, true);
  std::string Snapshot = tel::metrics().snapshotJson("campaign.plateau");
  EXPECT_NE(Snapshot.find("\"campaign.plateau_at\":" +
                          std::to_string(Again.Result.PlateauAt)),
            std::string::npos);
}

TEST(Observatory, PlateauDetectionWithoutStopOnlyLatches) {
  ObservatoryGuard Guard;
  ObservedRun Run = runObserved(1, /*Iterations=*/600,
                                /*PlateauWindow=*/20,
                                /*StopOnPlateau=*/false);
  // Detection without the stop flag runs the full budget.
  EXPECT_EQ(Run.Result.Iterations, 600u);
  if (Run.Result.Plateaued) {
    EXPECT_GT(Run.Result.PlateauAt, 0u);
  }
}

TEST(Observatory, FrontierOffByDefaultAndResultStaysLean) {
  ObservatoryGuard Guard;
  CampaignConfig Config;
  Config.Algo = FuzzAlgorithm::ClassfuzzStBr;
  Config.Iterations = 40;
  Config.RngSeed = 11;
  Config.NumSeeds = 4;
  CampaignResult R = runCampaign(Config);
  EXPECT_EQ(R.Frontier, nullptr);
  EXPECT_FALSE(R.Plateaued);
}
