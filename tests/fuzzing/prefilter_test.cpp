//===- tests/fuzzing/prefilter_test.cpp ------------------------------------===//
//
// The analyzer-gated pre-filter and the MCMC deep-phase reward
// (DESIGN.md §17): the speculation-stage skip decision and its audit
// sampling must leave the campaign trajectory a pure function of
// (config, RngSeed) -- byte-identical across --jobs values and across
// audit fractions -- and the audited skips must validate the analyzer's
// predictions against the reference VM.
//
//===----------------------------------------------------------------------===//

#include "fuzzing/Campaign.h"
#include "mutation/Mutator.h"

#include <gtest/gtest.h>

using namespace classfuzz;

namespace {

CampaignConfig prefilterConfig(FuzzAlgorithm Algo, size_t Jobs,
                               double Audit = 0.3) {
  CampaignConfig Config;
  Config.Algo = Algo;
  Config.Iterations = 200;
  Config.RngSeed = 17;
  Config.NumSeeds = 10;
  Config.Jobs = Jobs;
  Config.Prefilter = true;
  Config.PrefilterAudit = Audit;
  return Config;
}

/// Trajectory equality plus the prefilter and deep-phase accounting.
void expectIdenticalResults(const CampaignResult &A,
                            const CampaignResult &B) {
  ASSERT_EQ(A.Iterations, B.Iterations);
  ASSERT_EQ(A.numGenerated(), B.numGenerated());
  for (size_t I = 0; I != A.GenClasses.size(); ++I) {
    EXPECT_EQ(A.GenClasses[I].Name, B.GenClasses[I].Name);
    EXPECT_EQ(A.GenClasses[I].Data, B.GenClasses[I].Data);
    EXPECT_EQ(A.GenClasses[I].MutatorIndex, B.GenClasses[I].MutatorIndex);
    EXPECT_EQ(A.GenClasses[I].Representative,
              B.GenClasses[I].Representative);
    EXPECT_EQ(A.GenClasses[I].RefPhase, B.GenClasses[I].RefPhase);
  }
  EXPECT_EQ(A.TestClassIndices, B.TestClassIndices);
  EXPECT_EQ(A.MutatorSelected, B.MutatorSelected);
  EXPECT_EQ(A.MutatorSucceeded, B.MutatorSucceeded);
  EXPECT_EQ(A.PrefilterSkipped, B.PrefilterSkipped);
  EXPECT_EQ(A.PrefilterPassed, B.PrefilterPassed);
  EXPECT_EQ(A.PrefilterAudited, B.PrefilterAudited);
  EXPECT_EQ(A.PrefilterMispredicts, B.PrefilterMispredicts);
  EXPECT_EQ(A.MutatorDeepestPhase, B.MutatorDeepestPhase);
  EXPECT_EQ(A.MutatorDeepHits, B.MutatorDeepHits);
}

} // namespace

TEST(Prefilter, SkipsCandidatesAndCountsAddUp) {
  auto R = runCampaign(prefilterConfig(FuzzAlgorithm::ClassfuzzStBr, 1));
  // A mutation campaign produces plenty of statically dead classes; the
  // filter must actually fire to be worth anything.
  EXPECT_GT(R.PrefilterSkipped, 0u);
  EXPECT_GT(R.PrefilterPassed, 0u);
  EXPECT_EQ(R.PrefilterSkipped + R.PrefilterPassed, R.numGenerated());
  EXPECT_LE(R.PrefilterAudited, R.PrefilterSkipped);
  EXPECT_LE(R.PrefilterMispredicts, R.PrefilterAudited);
  // Skipped mutants commit with no reference execution attached
  // (unless audited, which still leaves the stored record bare so the
  // trajectory cannot depend on the audit fraction).
  for (const GeneratedClass &G : R.GenClasses)
    if (G.RefPhase < 0)
      EXPECT_FALSE(G.Representative) << G.Name;
}

TEST(Prefilter, FullAuditObservesZeroMispredicts) {
  // --prefilter-audit 1.0 executes every skipped mutant anyway: the
  // analyzer's RejectLoading/RejectLinking verdicts are definite, so
  // the reference VM must agree with every one of them.
  auto Config = prefilterConfig(FuzzAlgorithm::ClassfuzzStBr, 1, 1.0);
  auto R = runCampaign(Config);
  EXPECT_GT(R.PrefilterSkipped, 0u);
  EXPECT_EQ(R.PrefilterAudited, R.PrefilterSkipped);
  EXPECT_EQ(R.PrefilterMispredicts, 0u);
}

TEST(Prefilter, AuditFractionDoesNotPerturbTheTrajectory) {
  // Audited skips run the reference VM for validation only; whether a
  // skip is in the audit sample must not leak into the committed state.
  auto None = runCampaign(prefilterConfig(FuzzAlgorithm::ClassfuzzStBr, 1,
                                          0.0));
  auto Full = runCampaign(prefilterConfig(FuzzAlgorithm::ClassfuzzStBr, 1,
                                          1.0));
  EXPECT_EQ(None.PrefilterAudited, 0u);
  EXPECT_GT(Full.PrefilterAudited, 0u);
  ASSERT_EQ(None.numGenerated(), Full.numGenerated());
  for (size_t I = 0; I != None.GenClasses.size(); ++I) {
    EXPECT_EQ(None.GenClasses[I].Name, Full.GenClasses[I].Name);
    EXPECT_EQ(None.GenClasses[I].Data, Full.GenClasses[I].Data);
    EXPECT_EQ(None.GenClasses[I].Representative,
              Full.GenClasses[I].Representative);
  }
  EXPECT_EQ(None.PrefilterSkipped, Full.PrefilterSkipped);
  EXPECT_EQ(None.PrefilterPassed, Full.PrefilterPassed);
  EXPECT_EQ(None.MutatorSelected, Full.MutatorSelected);
  EXPECT_EQ(None.MutatorSucceeded, Full.MutatorSucceeded);
}

TEST(Prefilter, JobsOneMatchesJobsEightStBr) {
  auto Seq = runCampaign(prefilterConfig(FuzzAlgorithm::ClassfuzzStBr, 1));
  auto Par = runCampaign(prefilterConfig(FuzzAlgorithm::ClassfuzzStBr, 8));
  expectIdenticalResults(Seq, Par);
}

TEST(Prefilter, JobsOneMatchesJobsEightDdFine) {
  auto Seq = runCampaign(prefilterConfig(FuzzAlgorithm::ClassfuzzDdFine, 1));
  auto Par = runCampaign(prefilterConfig(FuzzAlgorithm::ClassfuzzDdFine, 8));
  expectIdenticalResults(Seq, Par);
}

namespace {

CampaignConfig deepRewardConfig(size_t Jobs) {
  CampaignConfig Config;
  Config.Algo = FuzzAlgorithm::ClassfuzzDdFine;
  Config.Iterations = 200;
  Config.RngSeed = 23;
  Config.NumSeeds = 10;
  Config.Jobs = Jobs;
  Config.TypedMutators = true;
  Config.DeepRewardWeight = 0.5;
  Config.Prefilter = true;
  Config.PrefilterAudit = 0.3;
  return Config;
}

} // namespace

TEST(DeepReward, FullStackIsJobsInvariant) {
  // Everything at once -- typed mutators, deep reward, prefilter with
  // sampled audit -- through both pipeline shapes. The deep-reach
  // selector updates ride the same rewind path as acceptance, so this
  // is where a missed rollback would surface.
  auto Seq = runCampaign(deepRewardConfig(1));
  auto Par = runCampaign(deepRewardConfig(8));
  expectIdenticalResults(Seq, Par);
}

TEST(DeepReward, FoldsDeepestPhasePerMutator) {
  auto R = runCampaign(deepRewardConfig(1));
  ASSERT_EQ(R.MutatorDeepestPhase.size(), extendedMutatorRegistry().size());
  ASSERT_EQ(R.MutatorDeepHits.size(), extendedMutatorRegistry().size());

  size_t Reached = 0, DeepHits = 0;
  for (size_t I = 0; I != R.MutatorDeepestPhase.size(); ++I) {
    int P = R.MutatorDeepestPhase[I];
    EXPECT_GE(P, -1);
    EXPECT_LE(P, 4);
    Reached += P >= 0;
    DeepHits += R.MutatorDeepHits[I];
    // A mutator with deep hits must have observed a deep (or normal)
    // deepest phase: 0 = completed normally, >= 3 = init/runtime death.
    if (R.MutatorDeepHits[I] > 0)
      EXPECT_TRUE(P == 0 || P >= 3) << "mutator " << I;
  }
  EXPECT_GT(Reached, 0u);
  EXPECT_GT(DeepHits, 0u) << "no mutant survived loading/linking";
}
