//===- tests/fuzzing/property_test.cpp -------------------------------------===//
//
// Property-based robustness tests over the whole pipeline: random
// mutation chains, random byte corruption, and the invariants that must
// survive them (no crashes, parser totality, bounded interpretation,
// deterministic coverage).
//
//===----------------------------------------------------------------------===//

#include "../TestHelpers.h"
#include "classfile/ClassReader.h"
#include "coverage/Tracefile.h"
#include "jvm/Phase.h"
#include "jir/Jir.h"
#include "mutation/Engine.h"
#include "runtime/SeedCorpus.h"

#include <gtest/gtest.h>

using namespace classfuzz;
using namespace classfuzz::testhelpers;

namespace {

std::vector<std::string> knownClasses() {
  static std::vector<std::string> Known =
      buildRuntimeLibrary("jre8").names();
  return Known;
}

/// Applies \p Chain random mutations in sequence, feeding each produced
/// mutant back as the next seed. Returns the final produced bytes (or
/// the original seed when every step failed).
Bytes mutateChain(Bytes Seed, Rng &R, int Chain, MutationContext &Ctx) {
  Bytes Current = std::move(Seed);
  for (int Step = 0; Step != Chain; ++Step) {
    size_t MutatorIndex = R.choiceIndex(NumMutators);
    MutationOutcome Out = mutateClass(Current, MutatorIndex, Ctx);
    if (Out.Produced)
      Current = std::move(Out.Data);
  }
  return Current;
}

} // namespace

/// Parameterized over independent random universes.
class PipelineProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PipelineProperty, MutationChainsNeverBreakTheParser) {
  Rng R(GetParam());
  auto Known = knownClasses();
  MutationContext Ctx{R, Known};
  auto Seeds = generateSeedCorpus(R, 4);
  for (const SeedClass &Seed : Seeds) {
    Bytes Mutant = mutateChain(Seed.Data, R, 8, Ctx);
    // Whatever the engine emitted must be structurally parseable: the
    // engine only returns bytes it assembled itself.
    auto CF = parseClassFile(Mutant);
    EXPECT_TRUE(CF.ok()) << CF.error();
  }
}

TEST_P(PipelineProperty, MutantsAlwaysTerminateOnEveryJvm) {
  Rng R(GetParam() * 31 + 7);
  auto Known = knownClasses();
  MutationContext Ctx{R, Known};
  auto Seeds = generateSeedCorpus(R, 3);
  for (const SeedClass &Seed : Seeds) {
    Bytes Mutant = mutateChain(Seed.Data, R, 5, Ctx);
    auto CF = parseClassFile(Mutant);
    ASSERT_TRUE(CF.ok());
    std::vector<std::pair<std::string, Bytes>> Extra = {
        {CF->ThisClass, Mutant}};
    for (const auto &H : Seed.Helpers)
      Extra.push_back(H);
    for (const JvmPolicy &P : allJvmPolicies()) {
      // The property: run() returns (bounded interpretation); any
      // outcome is legal, crashes/hangs are not.
      JvmResult Res = runOn(P, Extra, CF->ThisClass);
      int Code = encodePhase(Res);
      EXPECT_GE(Code, 0);
      EXPECT_LE(Code, 4);
    }
  }
}

TEST_P(PipelineProperty, CoverageIsDeterministicPerClassfile) {
  Rng R(GetParam() * 131 + 17);
  auto Known = knownClasses();
  MutationContext Ctx{R, Known};
  auto Seeds = generateSeedCorpus(R, 2);
  Bytes Mutant = mutateChain(Seeds[0].Data, R, 4, Ctx);
  auto CF = parseClassFile(Mutant);
  ASSERT_TRUE(CF.ok());

  auto traceOnce = [&]() {
    ClassPath Env = buildRuntimeLibrary("jre9");
    Env.add(CF->ThisClass, Mutant);
    CoverageRecorder Rec;
    Vm Jvm(referenceJvmPolicy(), Env, &Rec);
    Jvm.run(CF->ThisClass);
    return Rec.takeTrace();
  };
  Tracefile A = traceOnce();
  Tracefile B = traceOnce();
  EXPECT_TRUE(A.sameSets(B))
      << "re-running the same classfile must produce the same tracefile";
  EXPECT_EQ(A.fingerprint(), B.fingerprint());
}

TEST_P(PipelineProperty, RandomByteCorruptionNeverCrashesTheJvm) {
  Rng R(GetParam() * 977 + 3);
  auto Seeds = generateSeedCorpus(R, 2);
  for (const SeedClass &Seed : Seeds) {
    for (int Trial = 0; Trial != 24; ++Trial) {
      Bytes Corrupt = Seed.Data;
      // Flip 1-4 random bytes (the Sirer/Bershad-style binary fuzzing
      // the paper contrasts with).
      int Flips = static_cast<int>(R.nextInRange(1, 4));
      for (int F = 0; F != Flips; ++F)
        Corrupt[R.choiceIndex(Corrupt.size())] =
            static_cast<uint8_t>(R.nextBelow(256));
      for (const JvmPolicy &P : allJvmPolicies()) {
        JvmResult Res =
            runOn(P, {{Seed.Name, Corrupt}}, Seed.Name);
        // Any encoded outcome is fine; undefined behavior is not.
        EXPECT_GE(encodePhase(Res), 0);
        EXPECT_LE(encodePhase(Res), 4);
      }
    }
  }
}

TEST_P(PipelineProperty, TruncationAlwaysRejectedAtLoading) {
  Rng R(GetParam() * 41 + 11);
  auto Seeds = generateSeedCorpus(R, 1);
  const Bytes &Data = Seeds[0].Data;
  for (size_t Cut : {size_t(1), Data.size() / 4, Data.size() / 2,
                     Data.size() - 1}) {
    Bytes Truncated(Data.begin(), Data.begin() + Cut);
    JvmResult Res = runOn(makeHotSpot8Policy(),
                          {{Seeds[0].Name, Truncated}}, Seeds[0].Name);
    EXPECT_FALSE(Res.Invoked);
    EXPECT_EQ(Res.Error, JvmErrorKind::ClassFormatError) << Cut;
  }
}

TEST_P(PipelineProperty, JirRoundTripIsSemanticallyStable) {
  // lower(assemble(lower(x))) == lower(x) structurally: name, members,
  // statement opcodes.
  Rng R(GetParam() * 613 + 29);
  auto Seeds = generateSeedCorpus(R, 5);
  for (const SeedClass &Seed : Seeds) {
    auto J1 = lowerClassBytes(Seed.Data);
    ASSERT_TRUE(J1.ok());
    auto Bytes1 = assembleToBytes(*J1);
    ASSERT_TRUE(Bytes1.ok());
    auto J2 = lowerClassBytes(*Bytes1);
    ASSERT_TRUE(J2.ok()) << J2.error();
    EXPECT_EQ(J1->Name, J2->Name);
    ASSERT_EQ(J1->Methods.size(), J2->Methods.size());
    for (size_t M = 0; M != J1->Methods.size(); ++M) {
      const JirMethod &A = J1->Methods[M];
      const JirMethod &B = J2->Methods[M];
      EXPECT_EQ(A.Name, B.Name);
      EXPECT_EQ(A.Descriptor, B.Descriptor);
      ASSERT_EQ(A.Body.size(), B.Body.size()) << A.Name;
      for (size_t S = 0; S != A.Body.size(); ++S) {
        EXPECT_EQ(A.Body[S].Op, B.Body[S].Op);
        EXPECT_EQ(A.Body[S].TargetIndex, B.Body[S].TargetIndex);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Universes, PipelineProperty,
                         ::testing::Range<uint64_t>(1, 9));
