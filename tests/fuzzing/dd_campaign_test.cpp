//===- tests/fuzzing/dd_campaign_test.cpp ----------------------------------===//
//
// The δ-diversity campaign pipeline: every candidate mutant executes on
// all five profiles during acceptance, and the tuple decisions + census
// happen at the deterministic in-order commit stage -- so accept/reject
// trajectories, encoded sequences, and the differential census must be
// identical for any --jobs value.
//
//===----------------------------------------------------------------------===//

#include "fuzzing/Campaign.h"

#include <gtest/gtest.h>

using namespace classfuzz;

namespace {

CampaignConfig ddConfig(FuzzAlgorithm Algo, size_t Jobs,
                        size_t Iterations = 120, uint64_t Seed = 11) {
  CampaignConfig Config;
  Config.Algo = Algo;
  Config.Iterations = Iterations;
  Config.RngSeed = Seed;
  Config.NumSeeds = 13;
  Config.Jobs = Jobs;
  return Config;
}

/// parallel_test's full-strength equality plus the δ-diversity surface:
/// per-mutant encoded sequences, the outcome census, and the
/// discrepancy count.
void expectIdenticalDdResults(const CampaignResult &A,
                              const CampaignResult &B) {
  ASSERT_EQ(A.Iterations, B.Iterations);
  ASSERT_EQ(A.numGenerated(), B.numGenerated());
  for (size_t I = 0; I != A.GenClasses.size(); ++I) {
    EXPECT_EQ(A.GenClasses[I].Name, B.GenClasses[I].Name);
    EXPECT_EQ(A.GenClasses[I].Data, B.GenClasses[I].Data);
    EXPECT_EQ(A.GenClasses[I].MutatorIndex, B.GenClasses[I].MutatorIndex);
    EXPECT_EQ(A.GenClasses[I].Representative,
              B.GenClasses[I].Representative);
    EXPECT_EQ(A.GenClasses[I].DdEncoded, B.GenClasses[I].DdEncoded);
    EXPECT_TRUE(A.GenClasses[I].Trace.sameSets(B.GenClasses[I].Trace));
  }
  EXPECT_EQ(A.TestClassIndices, B.TestClassIndices);
  EXPECT_EQ(A.MutatorSelected, B.MutatorSelected);
  EXPECT_EQ(A.MutatorSucceeded, B.MutatorSucceeded);
  EXPECT_EQ(A.DdOutcomeCounts, B.DdOutcomeCounts);
  EXPECT_EQ(A.DdDiscrepancies, B.DdDiscrepancies);
  EXPECT_EQ(A.ddDistinctDiscrepancies(), B.ddDistinctDiscrepancies());
}

} // namespace

TEST(DdCampaign, JobsOneMatchesJobsEightDdFine) {
  auto Seq = runCampaign(ddConfig(FuzzAlgorithm::ClassfuzzDdFine, 1));
  auto Par = runCampaign(ddConfig(FuzzAlgorithm::ClassfuzzDdFine, 8));
  expectIdenticalDdResults(Seq, Par);
}

TEST(DdCampaign, JobsOneMatchesJobsEightDdCoarse) {
  auto Seq = runCampaign(ddConfig(FuzzAlgorithm::ClassfuzzDdCoarse, 1));
  auto Par = runCampaign(ddConfig(FuzzAlgorithm::ClassfuzzDdCoarse, 8));
  expectIdenticalDdResults(Seq, Par);
}

TEST(DdCampaign, EveryProducedMutantIsInTheCensus) {
  auto R = runCampaign(ddConfig(FuzzAlgorithm::ClassfuzzDdFine, 1));
  ASSERT_TRUE(usesDeltaDiversity(R.Algo));

  // Every produced mutant carries a five-profile encoded sequence, and
  // the census sums to exactly the produced count (no double counting,
  // no skipped batches).
  size_t Discrepancies = 0;
  for (const GeneratedClass &G : R.GenClasses) {
    ASSERT_EQ(G.DdEncoded.size(), 5u) << G.Name;
    bool Constant = true;
    for (char C : G.DdEncoded)
      Constant &= C == G.DdEncoded[0];
    Discrepancies += !Constant;
  }
  size_t CensusTotal = 0;
  for (const auto &[Sequence, Count] : R.DdOutcomeCounts) {
    EXPECT_EQ(Sequence.size(), 5u);
    CensusTotal += Count;
  }
  EXPECT_EQ(CensusTotal, R.numGenerated());
  EXPECT_EQ(R.DdDiscrepancies, Discrepancies);
  EXPECT_LE(R.ddDistinctDiscrepancies(), R.DdDiscrepancies);
}

TEST(DdCampaign, ReferenceAlgorithmsLeaveTheDdSurfaceEmpty) {
  CampaignConfig Config =
      ddConfig(FuzzAlgorithm::ClassfuzzStBr, 1, 60);
  auto R = runCampaign(Config);
  EXPECT_FALSE(usesDeltaDiversity(R.Algo));
  EXPECT_TRUE(R.DdOutcomeCounts.empty());
  EXPECT_EQ(R.DdDiscrepancies, 0u);
  EXPECT_EQ(R.ddDistinctDiscrepancies(), 0u);
  for (const GeneratedClass &G : R.GenClasses)
    EXPECT_TRUE(G.DdEncoded.empty());
}

TEST(DdCampaign, AlgorithmNamesAndPredicate) {
  EXPECT_STREQ(fuzzAlgorithmName(FuzzAlgorithm::ClassfuzzDdCoarse),
               "classfuzz[dd-coarse]");
  EXPECT_STREQ(fuzzAlgorithmName(FuzzAlgorithm::ClassfuzzDdFine),
               "classfuzz[dd-fine]");
  EXPECT_TRUE(usesDeltaDiversity(FuzzAlgorithm::ClassfuzzDdCoarse));
  EXPECT_TRUE(usesDeltaDiversity(FuzzAlgorithm::ClassfuzzDdFine));
  EXPECT_FALSE(usesDeltaDiversity(FuzzAlgorithm::ClassfuzzStBr));
  EXPECT_FALSE(usesDeltaDiversity(FuzzAlgorithm::Randfuzz));
}
