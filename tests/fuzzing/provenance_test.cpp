//===- tests/fuzzing/provenance_test.cpp -----------------------------------===//
//
// Mutation provenance and deterministic replay (DESIGN.md §9): every
// campaign mutant's lineage re-derives its exact bytes offline, the
// captured lineage is identical across --jobs values, and lineage.json
// round-trips through the parser.
//
//===----------------------------------------------------------------------===//

#include "fuzzing/Provenance.h"

#include "fuzzing/Campaign.h"

#include <gtest/gtest.h>

using namespace classfuzz;

namespace {

CampaignConfig smallConfig(size_t Jobs = 1) {
  CampaignConfig Config;
  Config.Algo = FuzzAlgorithm::ClassfuzzStBr;
  Config.Iterations = 150;
  Config.RngSeed = 31;
  Config.NumSeeds = 12;
  Config.Jobs = Jobs;
  return Config;
}

CampaignEnvSpec specFor(const CampaignConfig &Config) {
  CampaignEnvSpec Spec;
  Spec.RngSeed = Config.RngSeed;
  Spec.NumSeeds = Config.NumSeeds;
  Spec.ReferencePolicyName = Config.ReferencePolicy.Name;
  Spec.TierName = "threaded";
  Spec.TierDiff = Config.TierDiff;
  return Spec;
}

} // namespace

TEST(Provenance, EveryGeneratedMutantCarriesAReplayableLineage) {
  auto Config = smallConfig();
  auto R = runCampaign(Config);
  ASSERT_GT(R.numGenerated(), 0u);

  auto Known = rebuildKnownClasses(specFor(Config), R.Seeds);
  size_t MultiStep = 0;
  for (const GeneratedClass &G : R.GenClasses) {
    ASSERT_FALSE(G.Prov.Steps.empty()) << G.Name;
    ASSERT_LT(G.Prov.RootSeedIndex, R.Seeds.size());
    const SeedClass &Root = R.Seeds[G.Prov.RootSeedIndex];
    EXPECT_EQ(Root.Name, G.Prov.RootSeedName);
    MultiStep += G.Prov.Steps.size() > 1;

    auto Replayed = replayLineage(Root.Data, G.Prov.Steps, Known);
    ASSERT_TRUE(Replayed) << G.Name << ": " << Replayed.error();
    EXPECT_EQ(Replayed->ClassName, G.Name);
    EXPECT_EQ(Replayed->Data, G.Data) << G.Name;
    EXPECT_EQ(Replayed->Ancestors.size(), G.Prov.Steps.size() - 1);
  }
  // The feedback loop must have bred at least one multi-generation
  // mutant, or the ancestor-replay path went untested.
  EXPECT_GT(MultiStep, 0u) << "config too small to breed descendants";
}

TEST(Provenance, LineageIsIdenticalAcrossJobCounts) {
  auto Sequential = runCampaign(smallConfig(1));
  auto Parallel = runCampaign(smallConfig(8));
  ASSERT_EQ(Sequential.numGenerated(), Parallel.numGenerated());
  for (size_t I = 0; I != Sequential.GenClasses.size(); ++I) {
    EXPECT_EQ(Sequential.GenClasses[I].Prov, Parallel.GenClasses[I].Prov)
        << Sequential.GenClasses[I].Name;
  }
}

TEST(Provenance, RebuiltSeedCorpusMatchesTheCampaigns) {
  auto Config = smallConfig();
  auto R = runCampaign(Config);
  auto Seeds = rebuildSeedCorpus(specFor(Config));
  ASSERT_TRUE(Seeds) << Seeds.error();
  ASSERT_EQ(Seeds->size(), R.Seeds.size());
  for (size_t I = 0; I != Seeds->size(); ++I) {
    EXPECT_EQ((*Seeds)[I].Name, R.Seeds[I].Name);
    EXPECT_EQ((*Seeds)[I].Data, R.Seeds[I].Data);
  }
}

TEST(Provenance, LineageJsonRoundTrips) {
  auto Config = smallConfig();
  auto R = runCampaign(Config);
  ASSERT_GT(R.numGenerated(), 0u);
  // Pick the deepest lineage for a meaningful round-trip.
  const GeneratedClass *Deepest = &R.GenClasses[0];
  for (const GeneratedClass &G : R.GenClasses)
    if (G.Prov.Steps.size() > Deepest->Prov.Steps.size())
      Deepest = &G;

  CampaignEnvSpec Spec = specFor(Config);
  std::string Json =
      lineageJson(Deepest->Prov, Spec, Deepest->Name, "00012");
  auto Parsed = parseLineageJson(Json);
  ASSERT_TRUE(Parsed) << Parsed.error();
  EXPECT_EQ(Parsed->Prov, Deepest->Prov);
  EXPECT_EQ(Parsed->MutantName, Deepest->Name);
  EXPECT_EQ(Parsed->ExpectedEncoded, "00012");
  EXPECT_EQ(Parsed->Spec.RngSeed, Spec.RngSeed);
  EXPECT_EQ(Parsed->Spec.NumSeeds, Spec.NumSeeds);
  EXPECT_EQ(Parsed->Spec.SeedDir, Spec.SeedDir);
  EXPECT_EQ(Parsed->Spec.ReferencePolicyName, Spec.ReferencePolicyName);
  EXPECT_EQ(Parsed->Spec.TierName, Spec.TierName);
  EXPECT_EQ(Parsed->Spec.TierDiff, Spec.TierDiff);
  // Serialization is stable: re-serializing the parse is byte-identical.
  EXPECT_EQ(lineageJson(Parsed->Prov, Parsed->Spec, Parsed->MutantName,
                        Parsed->ExpectedEncoded),
            Json);
}

TEST(Provenance, ParserRejectsMalformedLineage) {
  EXPECT_FALSE(parseLineageJson(""));
  EXPECT_FALSE(parseLineageJson("[]"));
  EXPECT_FALSE(parseLineageJson("{\"version\": 1}"));
  EXPECT_FALSE(parseLineageJson(
      "{\"env\": {}, \"root_seed\": {}, \"steps\": []}"));
  EXPECT_FALSE(parseLineageJson(
      "{\"env\": {}, \"root_seed\": {}, "
      "\"steps\": [{\"mutator\": 1, \"rng\": [\"0x1\"]}]}"));
  // Unknown keys are tolerated; a well-formed minimal document parses.
  auto Ok = parseLineageJson(
      "{\"future_field\": null, \"env\": {\"rng_seed\": \"0x2a\"}, "
      "\"root_seed\": {\"index\": 3, \"name\": \"S\"}, "
      "\"steps\": [{\"mutator\": 7, \"draws\": 2, "
      "\"rng\": [\"0x1\", \"0x2\", \"0x3\", \"0x4\", \"0x5\"]}]}");
  ASSERT_TRUE(Ok) << Ok.error();
  EXPECT_EQ(Ok->Spec.RngSeed, 42u);
  // Pre-tier documents parse with the tier defaults (replay warns and
  // runs on threaded).
  EXPECT_TRUE(Ok->Spec.TierName.empty());
  EXPECT_FALSE(Ok->Spec.TierDiff);
  EXPECT_EQ(Ok->Prov.RootSeedIndex, 3u);
  EXPECT_EQ(Ok->Prov.Steps[0].RngBefore.Words[3], 4u);
  EXPECT_EQ(Ok->Prov.Steps[0].RngBefore.Draws, 5u);
}

TEST(Provenance, ReplayFailsCleanlyOnEnvironmentMismatch) {
  auto Config = smallConfig();
  auto R = runCampaign(Config);
  ASSERT_GT(R.numGenerated(), 0u);
  const GeneratedClass &G = R.GenClasses[0];
  const SeedClass &Root = R.Seeds[G.Prov.RootSeedIndex];

  // Out-of-range mutator index: diagnostic, not UB.
  auto Steps = G.Prov.Steps;
  Steps[0].MutatorIndex = 1u << 20;
  auto Known = rebuildKnownClasses(specFor(Config), R.Seeds);
  EXPECT_FALSE(replayLineage(Root.Data, Steps, Known));
  // Empty chain is rejected.
  EXPECT_FALSE(replayLineage(Root.Data, {}, Known));
}
