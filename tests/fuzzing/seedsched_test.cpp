//===- tests/fuzzing/seedsched_test.cpp ------------------------------------===//
//
// The seed scheduler (fuzzing/SeedScheduler.h) and its campaign wiring.
// The load-bearing property is the determinism contract: every policy
// consumes exactly one nextBelow(entries()) per pick, so switching
// --seed-sched never perturbs the Rng stream feeding mutator selection,
// and the committed trajectory stays identical across --jobs values.
//
//===----------------------------------------------------------------------===//

#include "fuzzing/Campaign.h"
#include "fuzzing/SeedScheduler.h"

#include <gtest/gtest.h>

#include <vector>

using namespace classfuzz;

namespace {

Tracefile traceOf(std::initializer_list<uint32_t> Sites) {
  Tracefile T;
  for (uint32_t S : Sites)
    T.addBranch(S, true);
  return T;
}

CampaignConfig schedConfig(FuzzAlgorithm Algo, SeedSchedPolicy Policy,
                           size_t Jobs, size_t Iterations = 150) {
  CampaignConfig Config;
  Config.Algo = Algo;
  Config.Iterations = Iterations;
  Config.RngSeed = 11;
  Config.NumSeeds = 13;
  Config.Jobs = Jobs;
  Config.SeedSched = Policy;
  return Config;
}

/// Trajectory equality plus the scheduler census.
void expectIdenticalSchedResults(const CampaignResult &A,
                                 const CampaignResult &B) {
  ASSERT_EQ(A.Iterations, B.Iterations);
  ASSERT_EQ(A.numGenerated(), B.numGenerated());
  for (size_t I = 0; I != A.GenClasses.size(); ++I) {
    EXPECT_EQ(A.GenClasses[I].Name, B.GenClasses[I].Name);
    EXPECT_EQ(A.GenClasses[I].Data, B.GenClasses[I].Data);
    EXPECT_EQ(A.GenClasses[I].MutatorIndex, B.GenClasses[I].MutatorIndex);
  }
  EXPECT_EQ(A.TestClassIndices, B.TestClassIndices);
  EXPECT_EQ(A.MutatorSelected, B.MutatorSelected);
  EXPECT_EQ(A.SchedDraws, B.SchedDraws);
  EXPECT_EQ(A.SchedRareDraws, B.SchedRareDraws);
  EXPECT_EQ(A.SchedEpochs, B.SchedEpochs);
}

} // namespace

TEST(SeedSchedPolicyNames, ParseAndPrintRoundTrip) {
  for (SeedSchedPolicy P :
       {SeedSchedPolicy::Uniform, SeedSchedPolicy::Rare,
        SeedSchedPolicy::Cluster}) {
    SeedSchedPolicy Parsed;
    ASSERT_TRUE(parseSeedSchedPolicy(seedSchedPolicyName(P), Parsed));
    EXPECT_EQ(Parsed, P);
  }
  SeedSchedPolicy Out;
  EXPECT_FALSE(parseSeedSchedPolicy("greedy", Out));
  EXPECT_FALSE(parseSeedSchedPolicy("", Out));
}

TEST(SeedScheduler, UniformIsBitCompatibleWithChoiceIndex) {
  // The uniform policy must reproduce the historical
  // R.choiceIndex(Pool.size()) draw exactly -- same picks, same Rng
  // state afterwards.
  SeedScheduler::Options Opts;
  SeedScheduler Sched(Opts);
  for (uint32_t I = 0; I != 7; ++I)
    Sched.addEntry(traceOf({I, I + 10}));
  Sched.rebuild();
  Rng A(42), B(42);
  for (int I = 0; I != 200; ++I)
    EXPECT_EQ(Sched.pick(A), B.choiceIndex(7));
  EXPECT_EQ(A.state(), B.state());
}

TEST(SeedScheduler, EveryPolicyConsumesIdenticalDraws) {
  // One nextBelow(entries()) per pick for every policy: after any
  // number of picks the three Rng streams are in the same state, so
  // whatever the campaign draws next is policy-independent.
  std::vector<SeedScheduler> Scheds;
  for (SeedSchedPolicy P :
       {SeedSchedPolicy::Uniform, SeedSchedPolicy::Rare,
        SeedSchedPolicy::Cluster}) {
    SeedScheduler::Options Opts;
    Opts.Policy = P;
    Scheds.emplace_back(Opts);
  }
  for (SeedScheduler &S : Scheds) {
    S.addEntry(traceOf({1, 2, 3}));
    S.addEntry(traceOf({1, 2, 3}));
    S.addEntry(traceOf({4}));
    S.addEntry(traceOf({5, 6}));
    S.addEntryNoCoverage();
    for (int I = 0; I != 9; ++I)
      S.noteTrace(traceOf({1, 2, 3}));
    S.rebuild();
  }
  Rng U(9), Ra(9), Cl(9);
  for (int I = 0; I != 300; ++I) {
    size_t PU = Scheds[0].pick(U);
    size_t PR = Scheds[1].pick(Ra);
    size_t PC = Scheds[2].pick(Cl);
    EXPECT_LT(PU, 5u);
    EXPECT_LT(PR, 5u);
    EXPECT_LT(PC, 5u);
    ASSERT_EQ(U.state(), Ra.state());
    ASSERT_EQ(U.state(), Cl.state());
  }
}

TEST(SeedScheduler, RareRoutesAllMassToRareCoveringEntries) {
  // Entry 0 covers a site folded once (rare at the default threshold);
  // entry 1 covers only a site folded far past it. Largest-remainder
  // apportionment then gives entry 0 both slots.
  SeedScheduler::Options Opts;
  Opts.Policy = SeedSchedPolicy::Rare;
  SeedScheduler Sched(Opts);
  Sched.addEntry(traceOf({100}));
  Sched.addEntry(traceOf({200}));
  Sched.noteTrace(traceOf({100}));
  for (int I = 0; I != 50; ++I)
    Sched.noteTrace(traceOf({200}));
  Sched.rebuild();
  EXPECT_GT(Sched.rareScore(0), 0u);
  EXPECT_EQ(Sched.rareScore(1), 0u);
  EXPECT_EQ(Sched.rareEntries(), 1u);
  Rng R(3);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(Sched.pick(R), 0u);
}

TEST(SeedScheduler, RareWithNothingRareFallsBackToUniform) {
  SeedScheduler::Options Opts;
  Opts.Policy = SeedSchedPolicy::Rare;
  Opts.RareThreshold = 2;
  SeedScheduler Sched(Opts);
  for (uint32_t I = 0; I != 4; ++I)
    Sched.addEntry(traceOf({I}));
  for (int Fold = 0; Fold != 8; ++Fold)
    Sched.noteTrace(traceOf({0, 1, 2, 3}));
  Sched.rebuild();
  EXPECT_EQ(Sched.rareEntries(), 0u);
  Rng A(5), B(5);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(Sched.pick(A), B.choiceIndex(4));
}

TEST(SeedScheduler, ClusterSplitsMassEquallyAcrossFingerprints) {
  // Entries 0-2 share one coverage fingerprint, entry 3 has its own:
  // two clusters, two slots each. The redundant trio shares its
  // cluster's budget (round-robin -> entries 0 and 1), while entry 3
  // fills its cluster's both slots -- half the total mass.
  SeedScheduler::Options Opts;
  Opts.Policy = SeedSchedPolicy::Cluster;
  SeedScheduler Sched(Opts);
  Sched.addEntry(traceOf({1, 2}));
  Sched.addEntry(traceOf({1, 2}));
  Sched.addEntry(traceOf({1, 2}));
  Sched.addEntry(traceOf({9}));
  Sched.rebuild();
  EXPECT_EQ(Sched.clusters(), 2u);
  Rng R(7);
  size_t Counts[4] = {0, 0, 0, 0};
  constexpr int Picks = 4000;
  for (int I = 0; I != Picks; ++I)
    ++Counts[Sched.pick(R)];
  EXPECT_EQ(Counts[2], 0u) << "third redundant member gets no slot";
  EXPECT_GT(Counts[3], Picks / 3) << "singleton cluster holds half the mass";
  EXPECT_EQ(Counts[0] + Counts[1] + Counts[3], static_cast<size_t>(Picks));
}

TEST(SeedSchedCampaign, RareIsJobsInvariant) {
  auto Seq = runCampaign(schedConfig(FuzzAlgorithm::ClassfuzzDdFine,
                                     SeedSchedPolicy::Rare, 1));
  auto Par = runCampaign(schedConfig(FuzzAlgorithm::ClassfuzzDdFine,
                                     SeedSchedPolicy::Rare, 8));
  expectIdenticalSchedResults(Seq, Par);
  EXPECT_EQ(Seq.SchedDraws, Seq.Iterations);
  EXPECT_GE(Seq.SchedEpochs, 1u);
}

TEST(SeedSchedCampaign, ClusterIsJobsInvariant) {
  auto Seq = runCampaign(schedConfig(FuzzAlgorithm::ClassfuzzStBr,
                                     SeedSchedPolicy::Cluster, 1));
  auto Par = runCampaign(schedConfig(FuzzAlgorithm::ClassfuzzStBr,
                                     SeedSchedPolicy::Cluster, 8));
  expectIdenticalSchedResults(Seq, Par);
  EXPECT_EQ(Seq.SchedDraws, Seq.Iterations);
}

TEST(SeedSchedCampaign, RareWorksWithoutFrontierTracking) {
  // The scheduler owns its hit-count table; --frontier is not required.
  CampaignConfig Config = schedConfig(FuzzAlgorithm::ClassfuzzDdFine,
                                      SeedSchedPolicy::Rare, 1, 80);
  ASSERT_FALSE(Config.TrackFrontier);
  auto R = runCampaign(Config);
  EXPECT_EQ(R.SchedDraws, R.Iterations);
  EXPECT_GE(R.SchedEpochs, 1u);
}

TEST(SeedSchedCampaign, RandfuzzDegradesToUniform) {
  // randfuzz never collects coverage, so a learned policy has no signal
  // to learn from; the campaign runs it as uniform and no draw is ever
  // attributed to a rare entry.
  auto Rare = runCampaign(
      schedConfig(FuzzAlgorithm::Randfuzz, SeedSchedPolicy::Rare, 1, 100));
  auto Uniform = runCampaign(schedConfig(FuzzAlgorithm::Randfuzz,
                                         SeedSchedPolicy::Uniform, 1, 100));
  expectIdenticalSchedResults(Rare, Uniform);
  EXPECT_EQ(Rare.SchedRareDraws, 0u);
  EXPECT_EQ(Rare.SchedDraws, Rare.Iterations);
}

TEST(SeedSchedCampaign, UniformMatchesThePreSchedulerTrajectory) {
  // Sanity pin: the uniform policy must be a pure refactor of the old
  // R.choiceIndex(Pool.size()) pick -- same classes out, for the exact
  // config the parallel determinism suite runs.
  auto A = runCampaign(schedConfig(FuzzAlgorithm::ClassfuzzStBr,
                                   SeedSchedPolicy::Uniform, 1));
  auto B = runCampaign(schedConfig(FuzzAlgorithm::ClassfuzzStBr,
                                   SeedSchedPolicy::Uniform, 4));
  expectIdenticalSchedResults(A, B);
}
