//===- tests/fuzzing/integration_test.cpp ----------------------------------===//
//
// The full workflow of the paper, end to end across every module:
// campaign (Algorithm 1) -> differential testing (§2.3) -> reduction of
// a found discrepancy (§2.3 Step 1/2) -> report. This is the pipeline a
// user of the library runs; the test pins its cross-module contracts.
//
//===----------------------------------------------------------------------===//

#include "difftest/Report.h"
#include "fuzzing/Campaign.h"
#include "jir/Jir.h"
#include "mutation/Mutator.h"
#include "reducer/Reducer.h"

#include <gtest/gtest.h>

using namespace classfuzz;

TEST(Integration, CampaignDiffReduceReport) {
  // 1. Campaign: enough iterations to reliably find discrepancies.
  CampaignConfig Config;
  Config.Algo = FuzzAlgorithm::ClassfuzzStBr;
  Config.Iterations = 600;
  Config.NumSeeds = 25;
  Config.RngSeed = 20160613;
  CampaignResult R = runCampaign(Config);
  ASSERT_GT(R.numTests(), 20u);

  // 2. Differential testing of the accepted suite.
  auto Tester = DifferentialTester::withAllProfiles(
      R.corpusClassPath(), EnvironmentMode::PerJvm);
  DiffStats Stats;
  std::vector<DiscrepancyRecord> Records;
  const GeneratedClass *FirstDiscrepancy = nullptr;
  DiffOutcome FirstOutcome;
  for (size_t I : R.TestClassIndices) {
    const GeneratedClass &G = R.GenClasses[I];
    DiffOutcome O = Tester.testClass(G.Name);
    Stats.add(O);
    if (O.isDiscrepancy()) {
      Records.push_back(
          {G.Name, O, mutatorRegistry()[G.MutatorIndex].Description});
      if (!FirstDiscrepancy) {
        FirstDiscrepancy = &G;
        FirstOutcome = O;
      }
    }
  }
  ASSERT_GT(Stats.Discrepancies, 0u)
      << "a 600-iteration campaign finds discrepancies";
  ASSERT_NE(FirstDiscrepancy, nullptr);
  EXPECT_EQ(Stats.Discrepancies, Records.size());

  // 3. Reduce the first discrepancy, preserving its category. The
  // oracle re-tests on all five JVMs, exactly §2.3 Step 2.
  std::string Category = FirstOutcome.encodedString();
  ReductionOracle Oracle = [&](const std::string &Name,
                               const Bytes &Data) {
    DiffOutcome O = Tester.testClass(Name, Data);
    return O.isDiscrepancy() && O.encodedString() == Category;
  };
  ReductionStats RStats;
  auto Reduced =
      reduceClassfile(FirstDiscrepancy->Data, Oracle, &RStats, 400);
  ASSERT_TRUE(Reduced.ok()) << Reduced.error();
  EXPECT_LE(Reduced->size(), FirstDiscrepancy->Data.size());
  EXPECT_TRUE(Oracle(FirstDiscrepancy->Name, *Reduced))
      << "the reduced classfile still triggers category " << Category;

  // The reduced classfile is still inspectable through JIR.
  auto J = lowerClassBytes(*Reduced);
  ASSERT_TRUE(J.ok()) << J.error();
  EXPECT_FALSE(printJir(*J).empty());

  // 4. Report.
  std::string Report =
      renderDiscrepancyReport(Tester.policies(), Records, Stats);
  EXPECT_NE(Report.find("# JVM discrepancy report"), std::string::npos);
  EXPECT_NE(Report.find("Category `" + Category + "`"),
            std::string::npos);
  EXPECT_NE(Report.find(FirstDiscrepancy->Name), std::string::npos);
}

TEST(Integration, SharedEnvironmentIsolatesDefectIndicative) {
  // Definition 1 vs Definition 2 on the same suite: the shared
  // environment can only remove (compatibility) discrepancies, never
  // add new categories beyond policy effects.
  CampaignConfig Config;
  Config.Algo = FuzzAlgorithm::ClassfuzzStBr;
  Config.Iterations = 300;
  Config.NumSeeds = 25;
  Config.RngSeed = 99;
  CampaignResult R = runCampaign(Config);

  auto PerJvm = DifferentialTester::withAllProfiles(
      R.corpusClassPath(), EnvironmentMode::PerJvm);
  auto Shared = DifferentialTester::withAllProfiles(
      R.corpusClassPath(), EnvironmentMode::Shared, "jre8");

  size_t PerJvmDiscrepancies = 0, SharedDiscrepancies = 0;
  size_t SkewOnly = 0;
  for (size_t I : R.TestClassIndices) {
    const std::string &Name = R.GenClasses[I].Name;
    bool D1 = PerJvm.testClass(Name).isDiscrepancy();
    bool D2 = Shared.testClass(Name).isDiscrepancy();
    PerJvmDiscrepancies += D1;
    SharedDiscrepancies += D2;
    SkewOnly += (D1 && !D2);
  }
  // The shared environment typically keeps most discrepancies (policy
  // differences) and strips environment-skew ones.
  EXPECT_LE(SharedDiscrepancies, PerJvmDiscrepancies + SkewOnly);
  EXPECT_GT(PerJvmDiscrepancies, 0u);
}
