//===- tests/fuzzing/campaign_test.cpp -------------------------------------===//
//
// The campaign drivers: determinism, Algorithm 1 invariants, and the
// between-algorithm relationships behind Findings 1 and 2 (at reduced
// scale -- the benches run the full-size versions).
//
//===----------------------------------------------------------------------===//

#include "fuzzing/Campaign.h"
#include "mutation/Mutator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

using namespace classfuzz;

namespace {

CampaignConfig smallConfig(FuzzAlgorithm Algo, size_t Iterations = 150,
                           uint64_t Seed = 11) {
  CampaignConfig Config;
  Config.Algo = Algo;
  Config.Iterations = Iterations;
  Config.RngSeed = Seed;
  Config.NumSeeds = 13;
  return Config;
}

} // namespace

TEST(Campaign, DeterministicForEqualSeeds) {
  auto A = runCampaign(smallConfig(FuzzAlgorithm::ClassfuzzStBr, 80));
  auto B = runCampaign(smallConfig(FuzzAlgorithm::ClassfuzzStBr, 80));
  ASSERT_EQ(A.numGenerated(), B.numGenerated());
  ASSERT_EQ(A.numTests(), B.numTests());
  for (size_t I = 0; I != A.GenClasses.size(); ++I) {
    EXPECT_EQ(A.GenClasses[I].Name, B.GenClasses[I].Name);
    EXPECT_EQ(A.GenClasses[I].Data, B.GenClasses[I].Data);
    EXPECT_EQ(A.GenClasses[I].MutatorIndex,
              B.GenClasses[I].MutatorIndex);
  }
}

TEST(Campaign, GeneratesAndAcceptsClasses) {
  auto R = runCampaign(smallConfig(FuzzAlgorithm::ClassfuzzStBr));
  EXPECT_GT(R.numGenerated(), 20u);
  EXPECT_GT(R.numTests(), 5u);
  EXPECT_LE(R.numTests(), R.numGenerated());
  EXPECT_GT(R.successRatePercent(), 0.0);
  EXPECT_LE(R.successRatePercent(), 100.0);
}

TEST(Campaign, TestClassesAreUniqueUnderStBr) {
  auto R = runCampaign(smallConfig(FuzzAlgorithm::ClassfuzzStBr));
  std::set<std::pair<size_t, size_t>> Stats;
  for (size_t I : R.TestClassIndices) {
    const GeneratedClass &G = R.GenClasses[I];
    EXPECT_TRUE(G.Representative);
    EXPECT_TRUE(Stats.insert({G.Trace.stmtCount(), G.Trace.branchCount()})
                    .second)
        << "two accepted tests share (stmt, br) statistics";
  }
}

TEST(Campaign, StAcceptsFewerThanStBr) {
  auto St = runCampaign(smallConfig(FuzzAlgorithm::ClassfuzzSt, 250));
  auto StBr = runCampaign(smallConfig(FuzzAlgorithm::ClassfuzzStBr, 250));
  // [st] collapses everything with the same stmt statistic (§3.2:
  // "classfuzz[stbr] ... produce more representative tests than
  // classfuzz[st]").
  EXPECT_LE(St.numTests(), StBr.numTests());
}

TEST(Campaign, GreedyAcceptsFarFewerThanUniqueness) {
  auto Greedy = runCampaign(smallConfig(FuzzAlgorithm::Greedyfuzz, 250));
  auto Unique = runCampaign(smallConfig(FuzzAlgorithm::Uniquefuzz, 250));
  EXPECT_LT(Greedy.numTests(), Unique.numTests())
      << "greedyfuzz takes a small fraction (98/1432 in the paper)";
}

TEST(Campaign, RandfuzzKeepsEveryProducedMutant) {
  auto R = runCampaign(smallConfig(FuzzAlgorithm::Randfuzz));
  EXPECT_EQ(R.numTests(), R.numGenerated());
  for (const GeneratedClass &G : R.GenClasses)
    EXPECT_TRUE(G.Trace.empty()) << "randfuzz collects no coverage";
}

TEST(Campaign, RandfuzzIsFasterPerClass) {
  auto Rand = runCampaign(smallConfig(FuzzAlgorithm::Randfuzz, 200));
  auto Directed =
      runCampaign(smallConfig(FuzzAlgorithm::ClassfuzzStBr, 200));
  ASSERT_GT(Rand.numGenerated(), 0u);
  ASSERT_GT(Directed.numGenerated(), 0u);
  double RandPerClass = Rand.ElapsedSeconds / Rand.numGenerated();
  double DirectedPerClass =
      Directed.ElapsedSeconds / Directed.numGenerated();
  EXPECT_LT(RandPerClass, DirectedPerClass)
      << "coverage collection dominates directed algorithms (Table 4)";
}

TEST(Campaign, McmcRecordsMutatorStatistics) {
  auto R = runCampaign(smallConfig(FuzzAlgorithm::ClassfuzzStBr, 300));
  ASSERT_EQ(R.MutatorSelected.size(), mutatorRegistry().size());
  size_t TotalSelected = 0, TotalSucceeded = 0;
  for (size_t I = 0; I != R.MutatorSelected.size(); ++I) {
    TotalSelected += R.MutatorSelected[I];
    TotalSucceeded += R.MutatorSucceeded[I];
    EXPECT_LE(R.MutatorSucceeded[I], R.MutatorSelected[I]);
  }
  EXPECT_EQ(TotalSelected, R.Iterations);
  EXPECT_EQ(TotalSucceeded, R.numTests());
}

TEST(Campaign, CorpusClassPathContainsSeedsAndMutants) {
  auto R = runCampaign(smallConfig(FuzzAlgorithm::ClassfuzzStBr, 60));
  ClassPath Corpus = R.corpusClassPath();
  for (const SeedClass &Seed : R.Seeds)
    EXPECT_TRUE(Corpus.has(Seed.Name));
  for (const GeneratedClass &G : R.GenClasses)
    EXPECT_TRUE(Corpus.has(G.Name));
}

TEST(Campaign, UniqueCoverageStatsBoundedByGenerated) {
  auto R = runCampaign(smallConfig(FuzzAlgorithm::Uniquefuzz, 150));
  EXPECT_LE(R.uniqueCoverageStats(), R.numGenerated() + 1);
  EXPECT_GE(R.uniqueCoverageStats(), R.numTests());
}

TEST(Campaign, TimeBudgetModeStopsByWallClock) {
  CampaignConfig Config = smallConfig(FuzzAlgorithm::ClassfuzzStBr);
  Config.Iterations = 10; // Would stop after 10 without a time budget.
  Config.TimeBudgetSeconds = 0.15;
  auto R = runCampaign(Config);
  EXPECT_GT(R.Iterations, 10u)
      << "the time budget overrides the iteration budget";
  EXPECT_GE(R.ElapsedSeconds, 0.15);
  EXPECT_LT(R.ElapsedSeconds, 5.0);
}

TEST(Campaign, CustomGeometricPIsHonored) {
  CampaignConfig Config = smallConfig(FuzzAlgorithm::ClassfuzzStBr, 120);
  Config.GeometricP = 0.2; // Much sharper concentration.
  auto R = runCampaign(Config);
  EXPECT_GT(R.numGenerated(), 0u);
  // A sharp p concentrates selections: the most-selected mutator should
  // clearly exceed the uniform expectation.
  size_t MaxSelected = 0;
  for (size_t N : R.MutatorSelected)
    MaxSelected = std::max(MaxSelected, N);
  EXPECT_GT(MaxSelected, R.Iterations / mutatorRegistry().size() + 2);
}

TEST(Campaign, ExternalSeedsReplaceGeneratedCorpus) {
  CampaignConfig Config = smallConfig(FuzzAlgorithm::ClassfuzzStBr, 60);
  Rng R(55);
  auto Seeds = generateSeedCorpus(R, 3);
  Config.ExternalSeeds = Seeds;
  auto Result = runCampaign(Config);
  ASSERT_EQ(Result.Seeds.size(), 3u);
  for (size_t I = 0; I != 3; ++I)
    EXPECT_EQ(Result.Seeds[I].Name, Seeds[I].Name);
  EXPECT_GT(Result.numGenerated(), 0u);
}

TEST(Campaign, AlgorithmNames) {
  EXPECT_STREQ(fuzzAlgorithmName(FuzzAlgorithm::ClassfuzzStBr),
               "classfuzz[stbr]");
  EXPECT_STREQ(fuzzAlgorithmName(FuzzAlgorithm::Randfuzz), "randfuzz");
  EXPECT_STREQ(fuzzAlgorithmName(FuzzAlgorithm::Greedyfuzz),
               "greedyfuzz");
}
