//===- tests/runtime/seedcorpus_test.cpp -----------------------------------===//

#include "../TestHelpers.h"
#include "classfile/ClassReader.h"
#include "fuzzing/Provenance.h"
#include "jvm/Phase.h"
#include "runtime/RuntimeLib.h"
#include "runtime/SeedCorpus.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

using namespace classfuzz;
using namespace classfuzz::testhelpers;

namespace {

/// True when \p Data mentions \p Needle (constant-pool Utf8 bytes are
/// stored verbatim, so a referenced class name is a substring).
bool mentions(const Bytes &Data, const std::string &Needle) {
  return std::search(Data.begin(), Data.end(), Needle.begin(),
                     Needle.end()) != Data.end();
}

/// Seeds that reference a version-skewed runtime class (the genSkewRef
/// kind): exactly the seeds whose bytes mention a skew-pool name.
bool isSkewRefSeed(const SeedClass &S) {
  VersionSkewedClasses Skew = versionSkewedClasses();
  std::vector<std::string> Pool = Skew.Jre7Plus;
  Pool.insert(Pool.end(), Skew.Jre8Plus.begin(), Skew.Jre8Plus.end());
  Pool.insert(Pool.end(), Skew.RemovedInJre9.begin(),
              Skew.RemovedInJre9.end());
  for (const std::string &Target : Pool)
    if (mentions(S.Data, Target))
      return true;
  return false;
}

} // namespace

TEST(SeedCorpus, DeterministicForEqualSeeds) {
  Rng A(100), B(100);
  auto SA = generateSeedCorpus(A, 20);
  auto SB = generateSeedCorpus(B, 20);
  ASSERT_EQ(SA.size(), SB.size());
  for (size_t I = 0; I != SA.size(); ++I) {
    EXPECT_EQ(SA[I].Name, SB[I].Name);
    EXPECT_EQ(SA[I].Data, SB[I].Data);
  }
}

TEST(SeedCorpus, NamesAreUniqueEnough) {
  Rng R(5);
  auto Seeds = generateSeedCorpus(R, 60);
  std::set<std::string> Names;
  for (const SeedClass &S : Seeds)
    Names.insert(S.Name);
  EXPECT_GE(Names.size(), 58u) << "collisions should be rare";
}

TEST(SeedCorpus, MostSeedsRunOnHotSpot) {
  // Seeds are valid classes; those with a main should complete on the
  // reference JVM. Interfaces and main-less shapes are rejected only at
  // the invocation step (encode 4).
  Rng R(7);
  auto Seeds = generateSeedCorpus(R, 26);
  int Invoked = 0, RejectedAtRuntime = 0, Other = 0;
  for (const SeedClass &Seed : Seeds) {
    std::vector<std::pair<std::string, Bytes>> Extra = {
        {Seed.Name, Seed.Data}};
    for (const auto &H : Seed.Helpers)
      Extra.push_back(H);
    JvmResult Res = runOn(makeHotSpot8Policy(), Extra, Seed.Name);
    if (Res.Invoked)
      ++Invoked;
    else if (encodePhase(Res) == 4)
      ++RejectedAtRuntime;
    else
      ++Other;
  }
  EXPECT_GE(Invoked, 18) << "the bulk of seeds executes cleanly";
  EXPECT_EQ(Other, 0) << "no seed fails loading/linking/init on HotSpot8";
}

TEST(SeedCorpus, LibraryCorpusIsMainless) {
  Rng R(11);
  auto Lib = generateLibraryCorpus(R, 40);
  int WithMain = 0;
  for (const SeedClass &S : Lib) {
    auto CF = parseClassFile(S.Data);
    ASSERT_TRUE(CF.ok()) << S.Name;
    if (CF->findMethodByName("main"))
      ++WithMain;
  }
  EXPECT_EQ(WithMain, 0);
}

TEST(SeedCorpus, LibraryCorpusContainsSkewReferences) {
  Rng R(13);
  auto Lib = generateLibraryCorpus(R, 60);
  int Skewed = 0;
  for (const SeedClass &S : Lib) {
    auto CF = parseClassFile(S.Data);
    ASSERT_TRUE(CF.ok());
    if (CF->SuperClass != "java/lang/Object")
      ++Skewed;
  }
  EXPECT_GT(Skewed, 0) << "some library classes reference skewed classes";
  EXPECT_LT(Skewed, 30) << "but only a small fraction";
}

TEST(SeedCorpus, TenThousandSeedsHaveNoDuplicateNames) {
  // The name draw retries until unique: a ~1e8 namespace yields
  // birthday collisions well within a 10-100x corpus, and duplicate
  // names silently shadow each other on the class path.
  Rng R(77);
  auto Seeds = generateSeedCorpus(R, 10000);
  std::set<std::string> Names;
  for (const SeedClass &S : Seeds)
    Names.insert(S.Name);
  EXPECT_EQ(Names.size(), Seeds.size());
}

TEST(SeedCorpus, SkewRefCadenceHoldsAcrossCorpusScales) {
  // One version-skew-referencing seed per generator cycle of 25, at
  // corpus-scale 1, 10, and 100 alike: the parameter sweep must not
  // disturb the paper's ~3% compatibility-discrepancy rate.
  for (size_t Count : {25u, 250u, 2500u}) {
    Rng R(21);
    auto Seeds = generateSeedCorpus(R, Count);
    size_t SkewRefs = 0;
    for (const SeedClass &S : Seeds)
      SkewRefs += isSkewRefSeed(S) ? 1 : 0;
    EXPECT_EQ(SkewRefs, Count / 25) << "at corpus size " << Count;
  }
}

TEST(SeedCorpus, LibraryCadencesHoldAcrossCorpusScales) {
  // Per 64 library classes: one finalized-superclass user, one sun/*
  // internal user; per 16: one interface. Scaling the corpus must keep
  // the preliminary study's skew background rate.
  VersionSkewedClasses Skew = versionSkewedClasses();
  for (size_t Count : {64u, 640u}) {
    Rng R(31);
    auto Lib = generateLibraryCorpus(R, Count);
    size_t FinalSubs = 0, SkewSupers = 0, Interfaces = 0;
    for (const SeedClass &S : Lib) {
      auto CF = parseClassFile(S.Data);
      ASSERT_TRUE(CF.ok()) << S.Name;
      if (CF->SuperClass == Skew.FinalizedClass)
        ++FinalSubs;
      else if (CF->SuperClass.rfind("sun/", 0) == 0)
        ++SkewSupers;
      if (CF->AccessFlags & ACC_INTERFACE)
        ++Interfaces;
    }
    EXPECT_EQ(FinalSubs, Count / 64) << "at corpus size " << Count;
    EXPECT_EQ(SkewSupers, Count / 64) << "at corpus size " << Count;
    EXPECT_EQ(Interfaces, Count / 16) << "at corpus size " << Count;
  }
}

TEST(SeedCorpus, ScaledCorpusKeepsTheRoundZeroPrefix) {
  // The first generator cycle of a scaled corpus is byte-identical to
  // an unscaled corpus: round 0 uses the neutral SeedShape, and the
  // name/parameter draws consume the Rng stream in the same order.
  Rng Small(3), Large(3);
  auto Base = generateSeedCorpus(Small, 25);
  auto Scaled = generateSeedCorpus(Large, 50);
  ASSERT_GE(Scaled.size(), Base.size());
  for (size_t I = 0; I != Base.size(); ++I) {
    EXPECT_EQ(Scaled[I].Name, Base[I].Name);
    EXPECT_EQ(Scaled[I].Data, Base[I].Data);
    EXPECT_EQ(Scaled[I].Helpers, Base[I].Helpers);
  }
}

TEST(SeedCorpus, LaterRoundShapesDifferButParse) {
  // Rounds past 0 sweep constant-pool padding, hierarchy depth,
  // exception-table geometry, and attribute soup; every swept seed
  // still parses, and at least one differs from its round-0 sibling.
  Rng R(41);
  auto Seeds = generateSeedCorpus(R, 100);
  size_t Divergent = 0;
  for (size_t I = 25; I != Seeds.size(); ++I) {
    auto CF = parseClassFile(Seeds[I].Data);
    ASSERT_TRUE(CF.ok()) << Seeds[I].Name;
    if (Seeds[I].Data.size() != Seeds[I % 25].Data.size())
      ++Divergent;
  }
  EXPECT_GT(Divergent, 50u) << "the sweep must actually change shapes";
}

TEST(SeedCorpus, RebuildRoundTripsAScaledCorpus) {
  // Provenance replay regenerates the corpus from (RngSeed, NumSeeds);
  // a scaled corpus must come back byte-for-byte.
  CampaignEnvSpec Spec;
  Spec.RngSeed = 97;
  Spec.NumSeeds = 200;
  auto Rebuilt = rebuildSeedCorpus(Spec);
  ASSERT_TRUE(Rebuilt.ok());
  Rng R(97);
  auto Direct = generateSeedCorpus(R, 200);
  ASSERT_EQ(Rebuilt->size(), Direct.size());
  for (size_t I = 0; I != Direct.size(); ++I) {
    EXPECT_EQ((*Rebuilt)[I].Name, Direct[I].Name);
    EXPECT_EQ((*Rebuilt)[I].Data, Direct[I].Data);
    EXPECT_EQ((*Rebuilt)[I].Helpers, Direct[I].Helpers);
  }
}

TEST(SeedCorpus, SweptRoundSeedsRunOnHotSpot) {
  // Rounds 1-2 (seeds 25..74) keep the HotSpot health bar of the
  // round-0 corpus: no seed may fail loading, linking, or init.
  Rng R(7);
  auto Seeds = generateSeedCorpus(R, 75);
  int Other = 0;
  for (size_t I = 25; I != Seeds.size(); ++I) {
    const SeedClass &Seed = Seeds[I];
    std::vector<std::pair<std::string, Bytes>> Extra = {
        {Seed.Name, Seed.Data}};
    for (const auto &H : Seed.Helpers)
      Extra.push_back(H);
    JvmResult Res = runOn(makeHotSpot8Policy(), Extra, Seed.Name);
    if (!Res.Invoked && encodePhase(Res) != 4)
      ++Other;
  }
  EXPECT_EQ(Other, 0) << "no swept seed fails loading/linking/init";
}
