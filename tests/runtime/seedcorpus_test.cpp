//===- tests/runtime/seedcorpus_test.cpp -----------------------------------===//

#include "../TestHelpers.h"
#include "classfile/ClassReader.h"
#include "jvm/Phase.h"
#include "runtime/SeedCorpus.h"

#include <gtest/gtest.h>

#include <set>

using namespace classfuzz;
using namespace classfuzz::testhelpers;

TEST(SeedCorpus, DeterministicForEqualSeeds) {
  Rng A(100), B(100);
  auto SA = generateSeedCorpus(A, 20);
  auto SB = generateSeedCorpus(B, 20);
  ASSERT_EQ(SA.size(), SB.size());
  for (size_t I = 0; I != SA.size(); ++I) {
    EXPECT_EQ(SA[I].Name, SB[I].Name);
    EXPECT_EQ(SA[I].Data, SB[I].Data);
  }
}

TEST(SeedCorpus, NamesAreUniqueEnough) {
  Rng R(5);
  auto Seeds = generateSeedCorpus(R, 60);
  std::set<std::string> Names;
  for (const SeedClass &S : Seeds)
    Names.insert(S.Name);
  EXPECT_GE(Names.size(), 58u) << "collisions should be rare";
}

TEST(SeedCorpus, MostSeedsRunOnHotSpot) {
  // Seeds are valid classes; those with a main should complete on the
  // reference JVM. Interfaces and main-less shapes are rejected only at
  // the invocation step (encode 4).
  Rng R(7);
  auto Seeds = generateSeedCorpus(R, 26);
  int Invoked = 0, RejectedAtRuntime = 0, Other = 0;
  for (const SeedClass &Seed : Seeds) {
    std::vector<std::pair<std::string, Bytes>> Extra = {
        {Seed.Name, Seed.Data}};
    for (const auto &H : Seed.Helpers)
      Extra.push_back(H);
    JvmResult Res = runOn(makeHotSpot8Policy(), Extra, Seed.Name);
    if (Res.Invoked)
      ++Invoked;
    else if (encodePhase(Res) == 4)
      ++RejectedAtRuntime;
    else
      ++Other;
  }
  EXPECT_GE(Invoked, 18) << "the bulk of seeds executes cleanly";
  EXPECT_EQ(Other, 0) << "no seed fails loading/linking/init on HotSpot8";
}

TEST(SeedCorpus, LibraryCorpusIsMainless) {
  Rng R(11);
  auto Lib = generateLibraryCorpus(R, 40);
  int WithMain = 0;
  for (const SeedClass &S : Lib) {
    auto CF = parseClassFile(S.Data);
    ASSERT_TRUE(CF.ok()) << S.Name;
    if (CF->findMethodByName("main"))
      ++WithMain;
  }
  EXPECT_EQ(WithMain, 0);
}

TEST(SeedCorpus, LibraryCorpusContainsSkewReferences) {
  Rng R(13);
  auto Lib = generateLibraryCorpus(R, 60);
  int Skewed = 0;
  for (const SeedClass &S : Lib) {
    auto CF = parseClassFile(S.Data);
    ASSERT_TRUE(CF.ok());
    if (CF->SuperClass != "java/lang/Object")
      ++Skewed;
  }
  EXPECT_GT(Skewed, 0) << "some library classes reference skewed classes";
  EXPECT_LT(Skewed, 30) << "but only a small fraction";
}
