//===- tests/runtime/runtimelib_test.cpp -----------------------------------===//

#include "../TestHelpers.h"
#include "classfile/ClassReader.h"
#include "jvm/Phase.h"
#include "runtime/RuntimeLib.h"

#include <gtest/gtest.h>

using namespace classfuzz;
using namespace classfuzz::testhelpers;

TEST(RuntimeLib, CoreClassesPresentInAllVersions) {
  for (const char *Version : {"jre5", "jre7", "jre8", "jre9"}) {
    ClassPath Lib = buildRuntimeLibrary(Version);
    for (const char *Name :
         {"java/lang/Object", "java/lang/String", "java/lang/System",
          "java/io/PrintStream", "java/lang/Throwable",
          "java/lang/Exception", "java/lang/RuntimeException",
          "java/lang/Thread", "java/lang/Runnable", "java/util/Map"})
      EXPECT_TRUE(Lib.has(Name)) << Version << " lacks " << Name;
  }
}

TEST(RuntimeLib, VersionSkew) {
  ClassPath Jre5 = buildRuntimeLibrary("jre5");
  ClassPath Jre7 = buildRuntimeLibrary("jre7");
  ClassPath Jre8 = buildRuntimeLibrary("jre8");
  ClassPath Jre9 = buildRuntimeLibrary("jre9");

  EXPECT_FALSE(Jre5.has("java/lang/AutoCloseable"));
  EXPECT_TRUE(Jre7.has("java/lang/AutoCloseable"));
  EXPECT_FALSE(Jre7.has("java/util/stream/Stream"));
  EXPECT_TRUE(Jre8.has("java/util/stream/Stream"));
  EXPECT_TRUE(Jre8.has("sun/misc/BASE64Encoder"));
  EXPECT_FALSE(Jre9.has("sun/misc/BASE64Encoder"))
      << "JDK 9 hides sun/* internals";
}

TEST(RuntimeLib, EnumEditorFinalityChangesAtJre8) {
  auto finality = [](const char *Version) {
    ClassPath Lib = buildRuntimeLibrary(Version);
    const Bytes *Data = Lib.lookup("com/sun/beans/editors/EnumEditor");
    EXPECT_NE(Data, nullptr) << Version;
    auto CF = parseClassFile(*Data);
    EXPECT_TRUE(CF.ok());
    return (CF->AccessFlags & ACC_FINAL) != 0;
  };
  EXPECT_FALSE(finality("jre7"));
  EXPECT_TRUE(finality("jre8"));
  EXPECT_TRUE(finality("jre9"));
}

TEST(RuntimeLib, InaccessibleClassIsPackagePrivateSynthetic) {
  ClassPath Lib = buildRuntimeLibrary("jre8");
  std::string Name = versionSkewedClasses().InaccessibleClass;
  const Bytes *Data = Lib.lookup(Name);
  ASSERT_NE(Data, nullptr);
  auto CF = parseClassFile(*Data);
  ASSERT_TRUE(CF.ok());
  EXPECT_FALSE(CF->AccessFlags & ACC_PUBLIC);
  EXPECT_TRUE(CF->AccessFlags & ACC_SYNTHETIC);
}

TEST(RuntimeLib, Problem3ThrowsAccessibilityEndToEnd) {
  // M1437121261: main declares `throws PiscesRenderingEngine$2`.
  // HotSpot raises IllegalAccessError; J9 and GIJ do not check.
  ClassFile CF = makeHelloClass("M1437121261");
  CF.findMethod("main", "([Ljava/lang/String;)V")->Exceptions = {
      versionSkewedClasses().InaccessibleClass};
  Bytes Data = serialize(CF);

  JvmResult OnHs8 = runOn(makeHotSpot8Policy(), {{"M1437121261", Data}},
                          "M1437121261");
  EXPECT_EQ(OnHs8.Error, JvmErrorKind::IllegalAccessError);
  EXPECT_EQ(encodePhase(OnHs8), 2);

  JvmResult OnJ9 =
      runOn(makeJ9Policy(), {{"M1437121261", Data}}, "M1437121261");
  EXPECT_TRUE(OnJ9.Invoked) << OnJ9.toString();

  JvmResult OnGij =
      runOn(makeGijPolicy(), {{"M1437121261", Data}}, "M1437121261");
  EXPECT_TRUE(OnGij.Invoked) << OnGij.toString();
}

TEST(RuntimeLib, EnumEditorSubclassDiscrepancyAcrossVersions) {
  // The preliminary-study example: sun/beans/editors/EnumEditor extends
  // a class that became final in jre8 -> VerifyError on HotSpot 8;
  // runnable-ish (loadable) on HotSpot 7.
  ClassFile CF = makeHelloClass("UsesEnumEditor");
  CF.SuperClass = "sun/beans/editors/EnumEditor";
  Bytes Data = serialize(CF);

  JvmResult OnHs7 = runOn(makeHotSpot7Policy(),
                          {{"UsesEnumEditor", Data}}, "UsesEnumEditor");
  EXPECT_TRUE(OnHs7.Invoked) << OnHs7.toString();

  JvmResult OnHs8 = runOn(makeHotSpot8Policy(),
                          {{"UsesEnumEditor", Data}}, "UsesEnumEditor");
  EXPECT_FALSE(OnHs8.Invoked);

  JvmResult OnHs9 = runOn(makeHotSpot9Policy(),
                          {{"UsesEnumEditor", Data}}, "UsesEnumEditor");
  EXPECT_EQ(OnHs9.Error, JvmErrorKind::NoClassDefFoundError)
      << "jre9 removed the sun/* parent entirely";
}

TEST(RuntimeLib, FingerprintDiffersAcrossVersions) {
  EXPECT_NE(buildRuntimeLibrary("jre7").fingerprint(),
            buildRuntimeLibrary("jre8").fingerprint());
  EXPECT_EQ(buildRuntimeLibrary("jre8").fingerprint(),
            buildRuntimeLibrary("jre8").fingerprint());
}

TEST(RuntimeLib, OverlayPrefersOverlayEntries) {
  ClassPath Base = buildRuntimeLibrary("jre8");
  ClassPath Overlay;
  Overlay.add("Test", {1, 2, 3});
  ClassPath Merged = Base.overlaidWith(Overlay);
  EXPECT_TRUE(Merged.has("Test"));
  EXPECT_EQ(Merged.size(), Base.size() + 1);
}
