//===- tests/difftest/report_test.cpp --------------------------------------===//

#include "difftest/Report.h"

#include <gtest/gtest.h>

using namespace classfuzz;

namespace {

DiffOutcome makeOutcome(std::initializer_list<int> Codes) {
  DiffOutcome O;
  for (int C : Codes) {
    O.Encoded.push_back(C);
    JvmResult R;
    if (C == 0) {
      R.Invoked = true;
    } else {
      R.Invoked = false;
      R.Phase = static_cast<JvmPhase>(C - 1);
      R.Error = JvmErrorKind::ClassFormatError;
      R.Message = "synthetic";
    }
    O.Results.push_back(std::move(R));
  }
  return O;
}

} // namespace

TEST(Report, RendersSummaryAndCategories) {
  auto Policies = allJvmPolicies();
  DiffStats Stats;
  std::vector<DiscrepancyRecord> Records;

  DiffOutcome A = makeOutcome({0, 0, 0, 1, 0});
  DiffOutcome B = makeOutcome({0, 0, 0, 1, 0});
  DiffOutcome C = makeOutcome({2, 2, 2, 2, 0});
  Stats.add(A);
  Stats.add(B);
  Stats.add(C);
  Stats.add(makeOutcome({0, 0, 0, 0, 0})); // No discrepancy.

  Records.push_back({"M1", A, "Select a method and rename it"});
  Records.push_back({"M2", B, ""});
  Records.push_back({"M3", C, "Delete one field"});

  std::string Report =
      renderDiscrepancyReport(Policies, Records, Stats);

  EXPECT_NE(Report.find("# JVM discrepancy report"), std::string::npos);
  EXPECT_NE(Report.find("classfiles tested: 4"), std::string::npos);
  EXPECT_NE(Report.find("distinct categories: 2"), std::string::npos);
  EXPECT_NE(Report.find("Category `00010` (2 classfiles)"),
            std::string::npos);
  EXPECT_NE(Report.find("Category `22220` (1 classfiles)"),
            std::string::npos);
  EXPECT_NE(Report.find("`M1`"), std::string::npos);
  EXPECT_NE(Report.find("Select a method and rename it"),
            std::string::npos);
  EXPECT_NE(Report.find("J9 for IBM SDK8"), std::string::npos);
}

TEST(Report, RespectsExamplesCap) {
  auto Policies = allJvmPolicies();
  DiffStats Stats;
  std::vector<DiscrepancyRecord> Records;
  for (int I = 0; I != 6; ++I) {
    DiffOutcome O = makeOutcome({0, 0, 0, 1, 0});
    Stats.add(O);
    Records.push_back({"M" + std::to_string(I), O, ""});
  }
  std::string Report =
      renderDiscrepancyReport(Policies, Records, Stats, 2);
  EXPECT_NE(Report.find("`M0`"), std::string::npos);
  EXPECT_NE(Report.find("`M1`"), std::string::npos);
  EXPECT_EQ(Report.find("`M2`"), std::string::npos)
      << "only 2 examples per category";
}

TEST(Report, EmptyInputProducesHeaderOnly) {
  std::string Report =
      renderDiscrepancyReport(allJvmPolicies(), {}, DiffStats());
  EXPECT_NE(Report.find("classfiles tested: 0"), std::string::npos);
  EXPECT_EQ(Report.find("## Category"), std::string::npos);
}
