//===- tests/difftest/incident_test.cpp ------------------------------------===//
//
// Incident bundles (DESIGN.md §9): a discrepancy's bundle is
// self-contained (the lineage replays to the exact mutant bytes and the
// same differential outcome), deterministic (byte-identical across
// --jobs values), and complete (every promised file is present).
//
//===----------------------------------------------------------------------===//

#include "difftest/Incident.h"

#include "difftest/DiffTest.h"
#include "fuzzing/Campaign.h"
#include "telemetry/FlightRecorder.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <map>

using namespace classfuzz;
namespace fs = std::filesystem;
namespace tel = classfuzz::telemetry;

namespace {

/// Unique scratch directory, removed on scope exit.
struct TempDir {
  fs::path Path;
  explicit TempDir(const std::string &Tag) {
    Path = fs::temp_directory_path() /
           ("classfuzz_incident_test_" + Tag + "_" +
            std::to_string(::getpid()));
    fs::remove_all(Path);
    fs::create_directories(Path);
  }
  ~TempDir() {
    std::error_code Ec;
    fs::remove_all(Path, Ec);
  }
};

struct RecorderGuard {
  RecorderGuard() { tel::flightRecorder().disable(); }
  ~RecorderGuard() { tel::flightRecorder().disable(); }
};

Bytes slurp(const fs::path &P) {
  std::ifstream In(P, std::ios::binary);
  EXPECT_TRUE(In) << P;
  return Bytes((std::istreambuf_iterator<char>(In)),
               std::istreambuf_iterator<char>());
}

CampaignConfig incidentConfig(size_t Jobs) {
  CampaignConfig Config;
  Config.Algo = FuzzAlgorithm::ClassfuzzStBr;
  Config.Iterations = 250;
  Config.RngSeed = 7;
  Config.NumSeeds = 16;
  Config.Jobs = Jobs;
  return Config;
}

CampaignEnvSpec specFor(const CampaignConfig &Config) {
  CampaignEnvSpec Spec;
  Spec.RngSeed = Config.RngSeed;
  Spec.NumSeeds = Config.NumSeeds;
  Spec.ReferencePolicyName = Config.ReferencePolicy.Name;
  return Spec;
}

/// Differentially tests a campaign's test classes and writes one bundle
/// per discrepancy/VM abort under \p Dir, as cmdFuzz does.
size_t dumpIncidents(const CampaignResult &R, const CampaignEnvSpec &Spec,
                     const std::string &Dir) {
  auto Tester = DifferentialTester::withAllProfiles(
      R.corpusClassPath(), EnvironmentMode::PerJvm);
  size_t Index = 0;
  for (size_t I : R.TestClassIndices) {
    const GeneratedClass &G = R.GenClasses[I];
    DiffOutcome O = Tester.testClass(G.Name);
    if (!O.isDiscrepancy() && !O.anyInternalError())
      continue;
    Incident Inc;
    Inc.MutantName = G.Name;
    Inc.MutantData = G.Data;
    Inc.Outcome = O;
    for (const JvmPolicy &P : Tester.policies())
      Inc.ProfileNames.push_back(P.Name);
    Inc.Prov = G.Prov;
    Inc.Env = Spec;
    auto Bundle = writeIncidentBundle(Dir, Index++, Inc);
    EXPECT_TRUE(Bundle) << (Bundle ? "" : Bundle.error());
  }
  return Index;
}

/// Relative path -> file bytes for every regular file under \p Root.
std::map<std::string, Bytes> treeContents(const fs::path &Root) {
  std::map<std::string, Bytes> Out;
  for (const auto &Entry : fs::recursive_directory_iterator(Root))
    if (Entry.is_regular_file())
      Out[fs::relative(Entry.path(), Root).string()] =
          slurp(Entry.path());
  return Out;
}

} // namespace

TEST(Incident, BundleIsSelfContainedAndReplaysToTheSameOutcome) {
  RecorderGuard Guard;
  TempDir Dir("replay");
  auto Config = incidentConfig(1);
  auto R = runCampaign(Config);
  size_t N = dumpIncidents(R, specFor(Config), Dir.Path.string());
  ASSERT_GT(N, 0u) << "campaign surfaced no discrepancies; rng choice "
                      "no longer suits this test";

  // Pick the first bundle and replay it from its files alone.
  fs::path Bundle;
  for (const auto &Entry : fs::directory_iterator(Dir.Path))
    if (Bundle.empty() || Entry.path() < Bundle)
      Bundle = Entry.path();
  ASSERT_FALSE(Bundle.empty());
  for (const char *Name :
       {"mutant.class", "lineage.json", "outcomes.json", "replay.sh"})
    EXPECT_TRUE(fs::exists(Bundle / Name)) << Name;

  Bytes Json = slurp(Bundle / "lineage.json");
  auto Parsed = parseLineageJson(std::string(Json.begin(), Json.end()));
  ASSERT_TRUE(Parsed) << Parsed.error();

  auto Seeds = rebuildSeedCorpus(Parsed->Spec);
  ASSERT_TRUE(Seeds) << Seeds.error();
  ASSERT_LT(Parsed->Prov.RootSeedIndex, Seeds->size());
  const SeedClass &Root = (*Seeds)[Parsed->Prov.RootSeedIndex];
  auto Replayed =
      replayLineage(Root.Data, Parsed->Prov.Steps,
                    rebuildKnownClasses(Parsed->Spec, *Seeds));
  ASSERT_TRUE(Replayed) << Replayed.error();
  EXPECT_EQ(Replayed->Data, slurp(Bundle / "mutant.class"));
  EXPECT_EQ(Replayed->ClassName, Parsed->MutantName);

  // Re-running the differential test over the rebuilt environment
  // reproduces the encoded sequence recorded in the bundle.
  ClassPath Extra;
  for (const SeedClass &Seed : *Seeds) {
    Extra.add(Seed.Name, Seed.Data);
    for (const auto &[Name, Data] : Seed.Helpers)
      Extra.add(Name, Data);
  }
  for (const auto &[Name, Data] : Replayed->Ancestors)
    Extra.add(Name, Data);
  Extra.add(Replayed->ClassName, Replayed->Data);
  auto Tester =
      DifferentialTester::withAllProfiles(Extra, EnvironmentMode::PerJvm);
  EXPECT_EQ(Tester.testClass(Replayed->ClassName).encodedString(),
            Parsed->ExpectedEncoded);
}

TEST(Incident, BundlesAreByteIdenticalAcrossJobCounts) {
  RecorderGuard Guard;
  TempDir Dir1("jobs1"), Dir8("jobs8");

  auto Config1 = incidentConfig(1);
  tel::flightRecorder().enable(256);
  auto R1 = runCampaign(Config1);
  size_t N1 = dumpIncidents(R1, specFor(Config1), Dir1.Path.string());

  auto Config8 = incidentConfig(8);
  tel::flightRecorder().enable(256); // Re-arm: fresh rings, seq reset.
  auto R8 = runCampaign(Config8);
  size_t N8 = dumpIncidents(R8, specFor(Config8), Dir8.Path.string());

  ASSERT_GT(N1, 0u);
  ASSERT_EQ(N1, N8);
  auto Tree1 = treeContents(Dir1.Path);
  auto Tree8 = treeContents(Dir8.Path);
  ASSERT_EQ(Tree1.size(), Tree8.size());
  for (const auto &[Rel, Data] : Tree1) {
    auto It = Tree8.find(Rel);
    ASSERT_NE(It, Tree8.end()) << Rel;
    EXPECT_EQ(Data, It->second) << Rel << " differs between jobs=1 and "
                                          "jobs=8";
  }
  // The recorder was armed, so every bundle must carry a flight tail.
  size_t Tails = 0;
  for (const auto &[Rel, Data] : Tree1)
    Tails += Rel.find("flightrec.jsonl") != std::string::npos;
  EXPECT_EQ(Tails, N1);
}

TEST(Incident, OutcomesJsonRendersEveryProfileStably) {
  Incident Inc;
  Inc.MutantName = "M1";
  Inc.Outcome.Encoded = {0, 2};
  JvmResult Ok;
  Ok.Invoked = true;
  Ok.Phase = JvmPhase::Completed;
  Ok.Output = {"Completed!"};
  JvmResult Bad;
  Bad.Invoked = false;
  Bad.Phase = JvmPhase::Linking;
  Bad.Error = JvmErrorKind::VerifyError;
  Bad.Message = "stack \"depth\" mismatch";
  Inc.Outcome.Results = {Ok, Bad};
  Inc.ProfileNames = {"A", "B"};

  std::string J = outcomesJson(Inc);
  EXPECT_NE(J.find("\"encoded\": \"02\""), std::string::npos);
  EXPECT_NE(J.find("\"discrepancy\": true"), std::string::npos);
  EXPECT_NE(J.find("\"error\": \"VerifyError\""), std::string::npos);
  EXPECT_NE(J.find("stack \\\"depth\\\" mismatch"), std::string::npos);
  EXPECT_NE(J.find("\"output\": [\"Completed!\"]"), std::string::npos);
  // Stable: equal inputs render byte-identically.
  EXPECT_EQ(J, outcomesJson(Inc));
}

TEST(Incident, InternalErrorWithoutDiscrepancyStillQualifies) {
  DiffOutcome O;
  O.Encoded = {4, 4, 4, 4, 4};
  JvmResult R;
  R.Phase = JvmPhase::Execution;
  R.Error = JvmErrorKind::InternalError;
  O.Results.assign(5, R);
  EXPECT_FALSE(O.isDiscrepancy());
  EXPECT_TRUE(O.anyInternalError());
  O.Results[0].Error = JvmErrorKind::StackOverflowError;
  EXPECT_TRUE(O.anyInternalError()); // Others still aborted.
  for (auto &Res : O.Results)
    Res.Error = JvmErrorKind::StackOverflowError;
  EXPECT_FALSE(O.anyInternalError());
}

TEST(Incident, WriteFailsWithDiagnosticOnUnwritableDirectory) {
  Incident Inc;
  Inc.MutantName = "M";
  Inc.Outcome.Encoded = {0, 1};
  auto R = writeIncidentBundle("/proc/definitely/not/writable", 0, Inc);
  EXPECT_FALSE(R);
}
