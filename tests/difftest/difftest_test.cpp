//===- tests/difftest/difftest_test.cpp ------------------------------------===//
//
// Differential harness: outcome encoding, discrepancy detection,
// distinct-discrepancy categorization, and environment modes
// (Definitions 1 and 2).
//
//===----------------------------------------------------------------------===//

#include "../TestHelpers.h"
#include "difftest/DiffTest.h"

#include <gtest/gtest.h>

using namespace classfuzz;
using namespace classfuzz::testhelpers;

namespace {

ClassPath corpusOf(
    const std::vector<std::pair<std::string, Bytes>> &Classes) {
  ClassPath Out;
  for (const auto &[Name, Data] : Classes)
    Out.add(Name, Data);
  return Out;
}

/// Figure 2's discrepancy class.
ClassFile makeFigure2Class() {
  ClassFile CF = makeHelloClass("M1436188543");
  MethodInfo Clinit;
  Clinit.Name = "<clinit>";
  Clinit.Descriptor = "()V";
  Clinit.AccessFlags = ACC_PUBLIC | ACC_ABSTRACT;
  CF.Methods.push_back(std::move(Clinit));
  return CF;
}

} // namespace

TEST(DiffOutcome, ConstantSequenceIsNoDiscrepancy) {
  DiffOutcome O;
  O.Encoded = {0, 0, 0, 0, 0};
  EXPECT_FALSE(O.isDiscrepancy());
  O.Encoded = {2, 2, 2, 2, 2};
  EXPECT_FALSE(O.isDiscrepancy());
  O.Encoded = {0, 0, 0, 1, 2};
  EXPECT_TRUE(O.isDiscrepancy());
  EXPECT_EQ(O.encodedString(), "00012");
}

TEST(DiffTest, HelloClassAgreesEverywhere) {
  Bytes Hello = serialize(makeHelloClass("Hello"));
  auto Tester = DifferentialTester::withAllProfiles(
      corpusOf({{"Hello", Hello}}), EnvironmentMode::Shared);
  DiffOutcome O = Tester.testClass("Hello");
  ASSERT_EQ(O.Encoded.size(), 5u);
  EXPECT_FALSE(O.isDiscrepancy()) << O.encodedString();
  EXPECT_EQ(O.encodedString(), "00000");
}

TEST(DiffTest, Figure2ClassProducesThePaperDiscrepancy) {
  // HotSpot 7/8/9 invoke normally; J9 rejects while loading. GIJ also
  // runs it (no strict clinit rule). Shared environment => a defect-
  // indicative discrepancy (Definition 2).
  Bytes Data = serialize(makeFigure2Class());
  auto Tester = DifferentialTester::withAllProfiles(
      corpusOf({{"M1436188543", Data}}), EnvironmentMode::Shared);
  DiffOutcome O = Tester.testClass("M1436188543");
  EXPECT_TRUE(O.isDiscrepancy());
  EXPECT_EQ(O.Encoded[0], 0); // HotSpot 7
  EXPECT_EQ(O.Encoded[1], 0); // HotSpot 8
  EXPECT_EQ(O.Encoded[2], 0); // HotSpot 9
  EXPECT_EQ(O.Encoded[3], 1); // J9: rejected during loading
  EXPECT_EQ(O.Encoded[4], 0); // GIJ
}

TEST(DiffTest, SharedEnvironmentSuppressesCompatibilityDiscrepancies) {
  // A class extending a sun/* internal: with per-JVM environments the
  // jre9/jre5 profiles cannot load it (compatibility discrepancy); with
  // a shared jre8 environment all five agree.
  ClassFile CF = makeHelloClass("UsesSun");
  CF.SuperClass = "sun/misc/BASE64Encoder";
  Bytes Data = serialize(CF);
  ClassPath Corpus = corpusOf({{"UsesSun", Data}});

  auto PerJvm = DifferentialTester::withAllProfiles(
      Corpus, EnvironmentMode::PerJvm);
  EXPECT_TRUE(PerJvm.testClass("UsesSun").isDiscrepancy());

  auto Shared = DifferentialTester::withAllProfiles(
      Corpus, EnvironmentMode::Shared, "jre8");
  DiffOutcome O = Shared.testClass("UsesSun");
  EXPECT_FALSE(O.isDiscrepancy()) << O.encodedString();
}

TEST(DiffTest, TestClassOverloadOverlaysBytes) {
  Bytes Hello = serialize(makeHelloClass("Late"));
  auto Tester = DifferentialTester::withAllProfiles(
      ClassPath(), EnvironmentMode::Shared);
  DiffOutcome O = Tester.testClass("Late", Hello);
  EXPECT_EQ(O.encodedString(), "00000");
}

TEST(DiffStats, AggregationMatchesTable6Semantics) {
  DiffStats Stats;
  DiffOutcome AllOk;
  AllOk.Encoded = {0, 0, 0, 0, 0};
  DiffOutcome AllRejected;
  AllRejected.Encoded = {2, 2, 2, 2, 2};
  DiffOutcome DiscA;
  DiscA.Encoded = {0, 0, 0, 1, 2};
  DiffOutcome DiscB;
  DiscB.Encoded = {0, 0, 0, 1, 2}; // Same category as DiscA.
  DiffOutcome DiscC;
  DiscC.Encoded = {2, 2, 2, 2, 0}; // New category.

  for (const DiffOutcome *O : {&AllOk, &AllRejected, &DiscA, &DiscB,
                               &DiscC})
    Stats.add(*O);

  EXPECT_EQ(Stats.Total, 5u);
  EXPECT_EQ(Stats.AllInvoked, 1u);
  EXPECT_EQ(Stats.AllRejectedSameStage, 1u);
  EXPECT_EQ(Stats.Discrepancies, 3u);
  EXPECT_EQ(Stats.DistinctDiscrepancies.size(), 2u);
  EXPECT_DOUBLE_EQ(Stats.diffRatePercent(), 60.0);
}

TEST(DiffStats, OutOfRangeCodesAreClampedAndReported) {
  // Encoded outcomes are 0..4 by construction, but add() must not index
  // past PhaseCounts[I] when handed a corrupt code: clamp and count.
  DiffStats Stats;
  DiffOutcome Corrupt;
  Corrupt.Encoded = {0, 9, -3};
  Stats.add(Corrupt);

  EXPECT_EQ(Stats.Total, 1u);
  EXPECT_EQ(Stats.EncodingErrors, 2u);
  ASSERT_EQ(Stats.PhaseCounts.size(), 3u);
  EXPECT_EQ(Stats.PhaseCounts[0][0], 1u);
  EXPECT_EQ(Stats.PhaseCounts[1][4], 1u) << "9 clamps to 4";
  EXPECT_EQ(Stats.PhaseCounts[2][0], 1u) << "-3 clamps to 0";
  // The corrupt sequence is still a (non-constant) discrepancy.
  EXPECT_EQ(Stats.Discrepancies, 1u);

  DiffOutcome Clean;
  Clean.Encoded = {1, 1, 1};
  Stats.add(Clean);
  EXPECT_EQ(Stats.EncodingErrors, 2u) << "clean outcomes add no errors";
}

TEST(DiffStats, PhaseCountsFeedTable7) {
  DiffStats Stats;
  DiffOutcome O;
  O.Encoded = {0, 0, 0, 1, 2};
  Stats.add(O);
  Stats.add(O);
  ASSERT_EQ(Stats.PhaseCounts.size(), 5u);
  EXPECT_EQ(Stats.PhaseCounts[0][0], 2u) << "JVM 0 invoked twice";
  EXPECT_EQ(Stats.PhaseCounts[3][1], 2u) << "JVM 3 rejected at loading";
  EXPECT_EQ(Stats.PhaseCounts[4][2], 2u) << "JVM 4 rejected at linking";
}

TEST(DiffStats, MergeEqualsAddingEveryOutcomeToOneObject) {
  DiffOutcome AllOk;
  AllOk.Encoded = {0, 0, 0, 0, 0};
  DiffOutcome Rejected;
  Rejected.Encoded = {2, 2, 2, 2, 2};
  DiffOutcome DiscA;
  DiscA.Encoded = {0, 0, 0, 1, 2};
  DiffOutcome DiscB;
  DiscB.Encoded = {2, 2, 2, 2, 0};
  DiffOutcome Corrupt;
  Corrupt.Encoded = {0, 9, -3, 0, 0};

  // Two shards, each adding a disjoint slice...
  DiffStats ShardOne, ShardTwo;
  ShardOne.add(AllOk);
  ShardOne.add(DiscA);
  ShardTwo.add(Rejected);
  ShardTwo.add(DiscA);
  ShardTwo.add(DiscB);
  ShardTwo.add(Corrupt);
  DiffStats Merged = ShardOne;
  Merged.merge(ShardTwo);

  // ...must equal one object that saw every outcome.
  DiffStats Direct;
  for (const DiffOutcome *O :
       {&AllOk, &DiscA, &Rejected, &DiscA, &DiscB, &Corrupt})
    Direct.add(*O);

  EXPECT_EQ(Merged.Total, Direct.Total);
  EXPECT_EQ(Merged.AllInvoked, Direct.AllInvoked);
  EXPECT_EQ(Merged.AllRejectedSameStage, Direct.AllRejectedSameStage);
  EXPECT_EQ(Merged.Discrepancies, Direct.Discrepancies);
  EXPECT_EQ(Merged.DistinctDiscrepancies, Direct.DistinctDiscrepancies);
  EXPECT_EQ(Merged.PhaseCounts, Direct.PhaseCounts);
  EXPECT_EQ(Merged.EncodingErrors, Direct.EncodingErrors);
  EXPECT_DOUBLE_EQ(Merged.diffRatePercent(), Direct.diffRatePercent());
}

TEST(DiffStats, MergeIntoEmptyAndFromEmpty) {
  DiffOutcome Disc;
  Disc.Encoded = {0, 0, 0, 1, 2};
  DiffStats Full;
  Full.add(Disc);

  DiffStats Empty;
  DiffStats FromEmpty = Full;
  FromEmpty.merge(Empty); // No-op.
  EXPECT_EQ(FromEmpty.Total, 1u);
  EXPECT_EQ(FromEmpty.Discrepancies, 1u);

  DiffStats IntoEmpty;
  IntoEmpty.merge(Full); // Adopts everything, including PhaseCounts size.
  EXPECT_EQ(IntoEmpty.Total, 1u);
  ASSERT_EQ(IntoEmpty.PhaseCounts.size(), 5u);
  EXPECT_EQ(IntoEmpty.PhaseCounts[4][2], 1u);
  EXPECT_EQ(IntoEmpty.DistinctDiscrepancies.count("00012"), 1u);
}

TEST(DiffStats, DiffRateIsZeroWithoutOutcomes) {
  // Regression: diffRatePercent on a fresh (or merged-empty) object must
  // return 0.0, not divide by Total == 0.
  DiffStats Empty;
  EXPECT_DOUBLE_EQ(Empty.diffRatePercent(), 0.0);

  DiffStats AlsoEmpty;
  AlsoEmpty.merge(Empty);
  EXPECT_DOUBLE_EQ(AlsoEmpty.diffRatePercent(), 0.0);
}

TEST(DiffTest, CollectCoverageFillsPerProfileTraces) {
  Bytes Hello = serialize(makeHelloClass("Hello"));
  auto Tester = DifferentialTester::withAllProfiles(
      corpusOf({{"Hello", Hello}}), EnvironmentMode::Shared);

  // Off by default: no tracefiles are materialized.
  EXPECT_FALSE(Tester.collectCoverage());
  EXPECT_TRUE(Tester.testClass("Hello").Traces.empty());

  Tester.setCollectCoverage(true);
  DiffOutcome O = Tester.testClass("Hello");
  ASSERT_EQ(O.Traces.size(), Tester.policies().size());
  for (const Tracefile &T : O.Traces)
    EXPECT_GT(T.stmtCount(), 0u) << "every profile executed Hello";
}

TEST(DiffTest, FlightEventsAreDeferredUntilCommitted) {
  namespace tel = classfuzz::telemetry;
  struct RecorderGuard {
    RecorderGuard() { tel::flightRecorder().disable(); }
    ~RecorderGuard() { tel::flightRecorder().disable(); }
  } Guard;

  Bytes Hello = serialize(makeHelloClass("Hello"));
  auto Tester = DifferentialTester::withAllProfiles(
      corpusOf({{"Hello", Hello}}), EnvironmentMode::Shared);

  // Disarmed recorder: nothing is even deferred.
  EXPECT_TRUE(Tester.testClass("Hello").FlightEvents.empty());

  tel::FlightRecorder &FR = tel::flightRecorder();
  FR.enable(64);
  DiffOutcome O = Tester.testClass("Hello");
  ASSERT_FALSE(O.FlightEvents.empty());
  EXPECT_TRUE(FR.snapshot().empty())
      << "testClass must not write the global stream";

  O.commitFlightEvents();
  auto Events = FR.snapshot();
  ASSERT_EQ(Events.size(), O.FlightEvents.size());
  EXPECT_EQ(Events.back().Kind, tel::FlightKind::DiffOutcome);

  // Committing is the caller's choice: a second commit replays again
  // (the reducer's probe lanes simply never call it).
  O.commitFlightEvents();
  EXPECT_EQ(FR.snapshot().size(), 2 * O.FlightEvents.size());
}

TEST(DiffStats, MergeHandlesDifferentJvmCounts) {
  // Shards produced with different profile counts (e.g. a three-JVM
  // smoke shard merged into a five-JVM run): PhaseCounts grows to the
  // larger shape and sums elementwise.
  DiffOutcome Three;
  Three.Encoded = {0, 1, 2};
  DiffOutcome Five;
  Five.Encoded = {0, 0, 0, 1, 2};

  DiffStats A;
  A.add(Five);
  DiffStats B;
  B.add(Three);
  A.merge(B);

  ASSERT_EQ(A.PhaseCounts.size(), 5u);
  EXPECT_EQ(A.PhaseCounts[0][0], 2u);
  EXPECT_EQ(A.PhaseCounts[1][0], 1u);
  EXPECT_EQ(A.PhaseCounts[1][1], 1u);
  EXPECT_EQ(A.PhaseCounts[2][2], 1u);
  EXPECT_EQ(A.PhaseCounts[4][2], 1u);
}

TEST(DiffTestTiers, WithoutTierDiffMatchesAllProfiles) {
  Bytes Hello = serialize(makeHelloClass("Hello"));
  auto Tester = DifferentialTester::withTieredProfiles(
      corpusOf({{"Hello", Hello}}), EnvironmentMode::PerJvm,
      ExecTier::Baseline, /*TierDiff=*/false);
  EXPECT_EQ(Tester.profiles().size(), 5u);
  EXPECT_FALSE(Tester.tierPair().has_value());
  for (const ProfileDesc &P : Tester.profiles())
    EXPECT_EQ(P.Tier, ExecTier::Baseline) << P.Name;
  DiffOutcome O = Tester.testClass("Hello");
  ASSERT_EQ(O.Encoded.size(), 5u);
  EXPECT_FALSE(O.isDiscrepancy()) << O.encodedString();
  EXPECT_FALSE(O.TierDisagreement);
}

TEST(DiffTestTiers, TierDiffAppendsInterpAndBaselineProfiles) {
  Bytes Hello = serialize(makeHelloClass("Hello"));
  auto Tester = DifferentialTester::withTieredProfiles(
      corpusOf({{"Hello", Hello}}), EnvironmentMode::PerJvm,
      ExecTier::Threaded, /*TierDiff=*/true);
  ASSERT_EQ(Tester.profiles().size(), 7u);
  ASSERT_TRUE(Tester.tierPair().has_value());
  EXPECT_EQ(Tester.tierPair()->first, 5u);
  EXPECT_EQ(Tester.tierPair()->second, 6u);

  const ProfileDesc &Interp = Tester.profiles()[5];
  const ProfileDesc &Base = Tester.profiles()[6];
  const std::string RefName = referenceJvmPolicy().Name;
  EXPECT_EQ(Interp.Name, RefName + "~threaded");
  EXPECT_EQ(Interp.Tier, ExecTier::Threaded);
  EXPECT_EQ(Base.Name, RefName + "~baseline");
  EXPECT_EQ(Base.Tier, ExecTier::Baseline);
  // The tier profiles defer jit.* publication to the campaign commit
  // stage so counters stay jobs-invariant.
  EXPECT_FALSE(Interp.Policy.JitTelemetry);
  EXPECT_FALSE(Base.Policy.JitTelemetry);
  // The PolicyView keeps legacy policies() callers (report rendering,
  // replay output) printing tier-qualified names.
  EXPECT_EQ(Tester.policies()[5].Name, Interp.Name);
  EXPECT_EQ(Tester.policies()[6].Name, Base.Name);

  DiffOutcome O = Tester.testClass("Hello");
  ASSERT_EQ(O.Encoded.size(), 7u);
  EXPECT_EQ(O.encodedString(), "0000000");
  EXPECT_FALSE(O.TierDisagreement);
}

TEST(DiffTestTiers, Figure2ClassKeepsTiersAgreeing) {
  // A class the reference JVM rejects is rejected identically on both
  // tiers: the pair encodes the same phase, no tier disagreement.
  Bytes Data = serialize(makeFigure2Class());
  auto Tester = DifferentialTester::withTieredProfiles(
      corpusOf({{"M1436188543", Data}}), EnvironmentMode::PerJvm,
      ExecTier::Threaded, /*TierDiff=*/true);
  DiffOutcome O = Tester.testClass("M1436188543");
  ASSERT_EQ(O.Encoded.size(), 7u);
  EXPECT_EQ(O.Encoded[5], O.Encoded[6]);
  EXPECT_FALSE(O.TierDisagreement);
}

TEST(DiffStats, TierDisagreementsAreCounted) {
  DiffStats Stats;
  DiffOutcome Agree;
  Agree.Encoded = {0, 0, 0, 0, 0, 0, 0};
  DiffOutcome Disagree;
  Disagree.Encoded = {0, 0, 0, 0, 0, 0, 4};
  Disagree.TierDisagreement = true;
  Stats.add(Agree);
  Stats.add(Disagree);
  EXPECT_EQ(Stats.TierDisagreements, 1u);

  DiffStats Other;
  Other.add(Disagree);
  Stats.merge(Other);
  EXPECT_EQ(Stats.TierDisagreements, 2u);
}
