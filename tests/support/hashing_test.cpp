//===- tests/support/hashing_test.cpp --------------------------------------===//

#include "support/Hashing.h"

#include <gtest/gtest.h>

using namespace classfuzz;

TEST(Hashing, EmptyIsOffsetBasis) {
  Hasher H;
  EXPECT_EQ(H.value(), FnvOffsetBasis);
}

TEST(Hashing, DeterministicOverBytes) {
  std::vector<uint8_t> Data = {1, 2, 3, 4, 5};
  EXPECT_EQ(hashBytes(Data), hashBytes(Data));
}

TEST(Hashing, SensitiveToContent) {
  EXPECT_NE(hashBytes({1, 2, 3}), hashBytes({1, 2, 4}));
  EXPECT_NE(hashBytes({1, 2, 3}), hashBytes({3, 2, 1}));
}

TEST(Hashing, StringSeparatorPreventsConcatenationCollisions) {
  Hasher A;
  A.addString("ab");
  A.addString("c");
  Hasher B;
  B.addString("a");
  B.addString("bc");
  EXPECT_NE(A.value(), B.value());
}

TEST(Hashing, U32AndU64Mixing) {
  Hasher A, B;
  A.addU32(1);
  A.addU32(2);
  B.addU64(1ull | (2ull << 32));
  EXPECT_EQ(A.value(), B.value()) << "u64 is two little-endian u32s";
}
