//===- tests/support/argparser_test.cpp ------------------------------------===//
//
// Table-driven flag parsing for the classfuzz tool: unknown flags are
// rejected with a diagnostic, values arrive as "--flag VALUE" or
// "--flag=VALUE", and --help text is generated from the same table.
//
//===----------------------------------------------------------------------===//

#include "support/ArgParser.h"

#include <gtest/gtest.h>

using namespace classfuzz;

namespace {

/// Runs parse() over a brace-list of arguments (prefixed by a fake
/// program name and subcommand, as in main()).
bool parseArgs(ArgParser &P, std::vector<std::string> Args) {
  Args.insert(Args.begin(), {"classfuzz", "cmd"});
  std::vector<char *> Argv;
  for (std::string &A : Args)
    Argv.push_back(A.data());
  return P.parse(static_cast<int>(Argv.size()), Argv.data(), 2);
}

ArgParser fuzzLikeParser() {
  return ArgParser("classfuzz cmd", "",
                   {{"iterations", "N", "iteration budget", "2000"},
                    {"rng", "N", "RNG seed", "1"},
                    {"time-budget", "SECONDS", "wall-clock budget", ""},
                    {"out", "DIR", "output directory", ""},
                    {"verbose", "", "chatty output", ""}});
}

} // namespace

TEST(ArgParser, ParsesSeparateAndInlineValues) {
  ArgParser P = fuzzLikeParser();
  ASSERT_TRUE(parseArgs(P, {"--iterations", "50", "--rng=9"}));
  EXPECT_TRUE(P.has("iterations"));
  EXPECT_EQ(P.get("iterations"), "50");
  EXPECT_EQ(P.getUnsigned("iterations"), 50u);
  EXPECT_EQ(P.getInt("rng"), 9);
}

TEST(ArgParser, AbsentFlagsFallBackToTableDefaults) {
  ArgParser P = fuzzLikeParser();
  ASSERT_TRUE(parseArgs(P, {}));
  EXPECT_FALSE(P.has("iterations"));
  EXPECT_EQ(P.get("iterations"), "2000");
  EXPECT_EQ(P.getUnsigned("iterations"), 2000u);
  EXPECT_EQ(P.get("out"), "");
}

TEST(ArgParser, RejectsUnknownFlags) {
  ArgParser P = fuzzLikeParser();
  EXPECT_FALSE(parseArgs(P, {"--iteratons", "50"})); // Typo.
  EXPECT_NE(P.error().find("unknown flag --iteratons"), std::string::npos);
  EXPECT_NE(P.error().find("classfuzz cmd"), std::string::npos);
}

TEST(ArgParser, RejectsMissingValue) {
  ArgParser P = fuzzLikeParser();
  EXPECT_FALSE(parseArgs(P, {"--iterations"}));
  EXPECT_NE(P.error().find("requires a value"), std::string::npos);
}

TEST(ArgParser, BooleanFlagsTakeNoValue) {
  ArgParser P = fuzzLikeParser();
  ASSERT_TRUE(parseArgs(P, {"--verbose", "positional.class"}));
  EXPECT_TRUE(P.has("verbose"));
  // The token after a boolean flag stays positional.
  ASSERT_EQ(P.positional().size(), 1u);
  EXPECT_EQ(P.positional()[0], "positional.class");

  ArgParser Q = fuzzLikeParser();
  EXPECT_FALSE(parseArgs(Q, {"--verbose=yes"}));
  EXPECT_NE(Q.error().find("takes no value"), std::string::npos);
}

TEST(ArgParser, ValueFlagsMayConsumeDashValues) {
  // "-" (stdout convention) and negative numbers are legal values.
  ArgParser P = fuzzLikeParser();
  ASSERT_TRUE(parseArgs(P, {"--out", "-"}));
  EXPECT_EQ(P.get("out"), "-");
}

TEST(ArgParser, CollectsPositionalsInOrder) {
  ArgParser P = fuzzLikeParser();
  ASSERT_TRUE(parseArgs(P, {"a.class", "--rng", "3", "b.class"}));
  ASSERT_EQ(P.positional().size(), 2u);
  EXPECT_EQ(P.positional()[0], "a.class");
  EXPECT_EQ(P.positional()[1], "b.class");
}

TEST(ArgParser, HelpRequestStopsParsing) {
  ArgParser P = fuzzLikeParser();
  ASSERT_TRUE(parseArgs(P, {"--help", "--bogus"}));
  EXPECT_TRUE(P.helpRequested());
  EXPECT_TRUE(P.error().empty());

  ArgParser Q = fuzzLikeParser();
  ASSERT_TRUE(parseArgs(Q, {"-h"}));
  EXPECT_TRUE(Q.helpRequested());
}

TEST(ArgParser, HelpTextIsGeneratedFromTheTable) {
  ArgParser P = fuzzLikeParser();
  std::string Help = P.helpText();
  EXPECT_NE(Help.find("usage: classfuzz cmd"), std::string::npos);
  EXPECT_NE(Help.find("--iterations N"), std::string::npos);
  EXPECT_NE(Help.find("iteration budget"), std::string::npos);
  EXPECT_NE(Help.find("(default: 2000)"), std::string::npos);
  // Boolean flags show no value placeholder, flags without defaults no
  // default clause.
  EXPECT_NE(Help.find("--verbose "), std::string::npos);
  EXPECT_EQ(Help.find("--verbose ="), std::string::npos);
  EXPECT_NE(Help.find("--time-budget SECONDS"), std::string::npos);
  EXPECT_EQ(Help.find("wall-clock budget (default"), std::string::npos);
}

TEST(ArgParser, PositionalUsageAppearsInSynopsis) {
  ArgParser P("classfuzz inspect", "FILE.class", {});
  EXPECT_NE(P.helpText().find("classfuzz inspect FILE.class"),
            std::string::npos);
}

TEST(ArgParser, NumericAccessorsParseLeadingPrefix) {
  ArgParser P = fuzzLikeParser();
  ASSERT_TRUE(parseArgs(P, {"--time-budget", "2.5", "--rng", "junk"}));
  EXPECT_DOUBLE_EQ(P.getDouble("time-budget"), 2.5);
  EXPECT_EQ(P.getInt("rng"), 0); // atol-style: no numeric prefix -> 0.
}

TEST(ArgParser, GetListSplitsOnCommasDroppingEmptySegments) {
  ArgParser P("classfuzz cmd", "",
              {{"stats-filter", "PREFIXES", "prefix list", ""},
               {"sample-filter", "PREFIXES", "prefix list",
                "campaign.,frontier."}});
  ASSERT_TRUE(
      parseArgs(P, {"--stats-filter", "campaign.,frontier.,,analysis.,"}));
  auto List = P.getList("stats-filter");
  ASSERT_EQ(List.size(), 3u);
  EXPECT_EQ(List[0], "campaign.");
  EXPECT_EQ(List[1], "frontier.");
  EXPECT_EQ(List[2], "analysis.");
  // Absent flags split their table default; an empty default yields {}.
  auto Defaulted = P.getList("sample-filter");
  ASSERT_EQ(Defaulted.size(), 2u);
  EXPECT_EQ(Defaulted[0], "campaign.");
  EXPECT_EQ(Defaulted[1], "frontier.");
}

TEST(ArgParser, GetListOfSinglePrefixAndEmptyValue) {
  ArgParser P("classfuzz cmd", "",
              {{"stats-filter", "PREFIXES", "prefix list", ""}});
  ASSERT_TRUE(parseArgs(P, {"--stats-filter", "campaign.dd"}));
  auto One = P.getList("stats-filter");
  ASSERT_EQ(One.size(), 1u);
  EXPECT_EQ(One[0], "campaign.dd");
  ArgParser Q("classfuzz cmd", "",
              {{"stats-filter", "PREFIXES", "prefix list", ""}});
  ASSERT_TRUE(parseArgs(Q, {"--stats-filter", ","}));
  EXPECT_TRUE(Q.getList("stats-filter").empty());
}
