//===- tests/support/json_test.cpp -----------------------------------------===//
//
// The JSON reader that `classfuzz report` uses to consume this
// project's own artifacts: value-model accessors, the full-document
// parser (trailing-content rejection, error offsets), the incremental
// parseValue entry point for JSONL, string escapes, and numeric
// round-tripping over the counter range the telemetry layer emits.
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include <gtest/gtest.h>

using namespace classfuzz;

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(json::parse("null")->isNull());
  EXPECT_TRUE(json::parse("true")->asBool());
  EXPECT_FALSE(json::parse("false")->asBool());
  EXPECT_DOUBLE_EQ(json::parse("-2.5e2")->asDouble(), -250.0);
  EXPECT_EQ(json::parse("\"hi\"")->asString(), "hi");
}

TEST(Json, IntegerAccessorsRoundTripCounterValues) {
  // 2^53 bounds exact double round-tripping; telemetry counters stay
  // far below it.
  auto V = json::parse("9007199254740992");
  ASSERT_TRUE(V);
  EXPECT_EQ(V->asUint(), 9007199254740992u);
  EXPECT_EQ(json::parse("-42")->asInt(), -42);
}

TEST(Json, ParsesNestedObjectsPreservingMemberOrder) {
  auto V = json::parse(R"({"z":1,"a":{"k":[1,2,3]},"m":"s"})");
  ASSERT_TRUE(V);
  ASSERT_TRUE(V->isObject());
  ASSERT_EQ(V->members().size(), 3u);
  EXPECT_EQ(V->members()[0].first, "z");
  EXPECT_EQ(V->members()[1].first, "a");
  EXPECT_EQ(V->members()[2].first, "m");
  const json::Value *A = V->get("a");
  ASSERT_NE(A, nullptr);
  const json::Value *K = A->get("k");
  ASSERT_NE(K, nullptr);
  ASSERT_EQ(K->array().size(), 3u);
  EXPECT_EQ(K->array()[2].asInt(), 3);
}

TEST(Json, LookupHelpersDefaultWhenAbsentOrMistyped) {
  auto V = json::parse(R"({"n":7,"s":"x"})");
  ASSERT_TRUE(V);
  EXPECT_DOUBLE_EQ(V->numberOr("n", -1), 7);
  EXPECT_DOUBLE_EQ(V->numberOr("missing", -1), -1);
  EXPECT_DOUBLE_EQ(V->numberOr("s", -1), -1); // Wrong kind.
  EXPECT_EQ(V->stringOr("s", "d"), "x");
  EXPECT_EQ(V->stringOr("n", "d"), "d");
  EXPECT_EQ(V->get("missing"), nullptr);
  EXPECT_EQ(json::parse("[1]")->get("k"), nullptr); // Not an object.
}

TEST(Json, DecodesEscapes) {
  auto V = json::parse(R"("a\"b\\c\/d\n\tAé")");
  ASSERT_TRUE(V);
  EXPECT_EQ(V->asString(), "a\"b\\c/d\n\tA\xc3\xa9");
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_FALSE(json::parse(""));
  EXPECT_FALSE(json::parse("{"));
  EXPECT_FALSE(json::parse("[1,]"));
  EXPECT_FALSE(json::parse("{\"a\":1,}"));
  EXPECT_FALSE(json::parse("nul"));
  EXPECT_FALSE(json::parse("\"unterminated"));
  EXPECT_FALSE(json::parse("1 2")); // Trailing content.
}

TEST(Json, ParseValueAdvancesThroughAJsonlBuffer) {
  const std::string Lines = "{\"a\":1}\n{\"a\":2}\n";
  size_t Pos = 0;
  auto First = json::parseValue(Lines, Pos);
  ASSERT_TRUE(First);
  EXPECT_DOUBLE_EQ(First->numberOr("a", 0), 1);
  auto Second = json::parseValue(Lines, Pos);
  ASSERT_TRUE(Second);
  EXPECT_DOUBLE_EQ(Second->numberOr("a", 0), 2);
}

TEST(Json, ReadsBackOwnSnapshotShapes) {
  // The exact row shapes the telemetry writers emit.
  auto Ts = json::parse(
      R"({"type":"ts","iter":64,"m":{"campaign.accepted":31}})");
  ASSERT_TRUE(Ts);
  EXPECT_EQ(Ts->stringOr("type", ""), "ts");
  EXPECT_EQ(Ts->get("m")->numberOr("campaign.accepted", 0), 31);
  auto Br = json::parse(
      R"({"type":"branch","site":9,"taken":true,"hits":3,"rare":true})");
  ASSERT_TRUE(Br);
  EXPECT_TRUE(Br->get("taken")->asBool());
}
