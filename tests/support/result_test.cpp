//===- tests/support/result_test.cpp ---------------------------------------===//

#include "support/Result.h"

#include <gtest/gtest.h>

using namespace classfuzz;

TEST(Result, HoldsValue) {
  Result<int> R(42);
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(*R, 42);
}

TEST(Result, HoldsError) {
  Result<int> R = makeError("boom");
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.error(), "boom");
}

TEST(Result, TakeMovesValue) {
  Result<std::string> R(std::string("payload"));
  ASSERT_TRUE(R.ok());
  std::string S = R.take();
  EXPECT_EQ(S, "payload");
}

TEST(Result, ArrowOperator) {
  Result<std::string> R(std::string("abc"));
  EXPECT_EQ(R->size(), 3u);
}

TEST(Status, DefaultIsSuccess) {
  Status S;
  EXPECT_TRUE(S.ok());
}

TEST(Status, ErrorCarriesMessage) {
  Status S = makeError("link failed");
  ASSERT_FALSE(S.ok());
  EXPECT_EQ(S.error(), "link failed");
}
