//===- tests/support/rng_test.cpp ------------------------------------------===//

#include "support/Rng.h"

#include <gtest/gtest.h>

#include <set>

using namespace classfuzz;

TEST(Rng, DeterministicForEqualSeeds) {
  Rng A(42), B(42);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng A(1), B(2);
  int Equal = 0;
  for (int I = 0; I != 64; ++I)
    Equal += A.next() == B.next();
  EXPECT_LT(Equal, 4);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng R(7);
  for (uint64_t Bound : {1ull, 2ull, 7ull, 129ull, 1000000ull})
    for (int I = 0; I != 200; ++I)
      EXPECT_LT(R.nextBelow(Bound), Bound);
}

TEST(Rng, NextInRangeInclusive) {
  Rng R(9);
  std::set<int64_t> Seen;
  for (int I = 0; I != 500; ++I) {
    int64_t V = R.nextInRange(-3, 3);
    EXPECT_GE(V, -3);
    EXPECT_LE(V, 3);
    Seen.insert(V);
  }
  EXPECT_EQ(Seen.size(), 7u) << "all values of a small range reachable";
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng R(11);
  for (int I = 0; I != 1000; ++I) {
    double D = R.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(Rng, NextBoolExtremes) {
  Rng R(13);
  for (int I = 0; I != 50; ++I) {
    EXPECT_FALSE(R.nextBool(0.0));
    EXPECT_TRUE(R.nextBool(1.0));
  }
}

TEST(Rng, NextBoolRoughlyMatchesProbability) {
  Rng R(17);
  int Hits = 0;
  const int N = 10000;
  for (int I = 0; I != N; ++I)
    Hits += R.nextBool(0.25);
  EXPECT_NEAR(static_cast<double>(Hits) / N, 0.25, 0.03);
}

TEST(Rng, ChoiceCoversAllElements) {
  Rng R(19);
  std::vector<int> Items = {10, 20, 30};
  std::set<int> Seen;
  for (int I = 0; I != 200; ++I)
    Seen.insert(R.choice(Items));
  EXPECT_EQ(Seen.size(), 3u);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng A(23);
  Rng B = A.fork();
  // The fork consumed one value; the two streams should now differ.
  int Equal = 0;
  for (int I = 0; I != 64; ++I)
    Equal += A.next() == B.next();
  EXPECT_LT(Equal, 4);
}
