//===- tests/support/bytebuffer_test.cpp ----------------------------------===//

#include "support/ByteBuffer.h"

#include <gtest/gtest.h>

using namespace classfuzz;

TEST(ByteWriter, BigEndianPrimitives) {
  ByteWriter W;
  W.writeU1(0xAB);
  W.writeU2(0x1234);
  W.writeU4(0xCAFEBABE);
  W.writeU8(0x0102030405060708ULL);
  const Bytes &B = W.bytes();
  ASSERT_EQ(B.size(), 15u);
  EXPECT_EQ(B[0], 0xAB);
  EXPECT_EQ(B[1], 0x12);
  EXPECT_EQ(B[2], 0x34);
  EXPECT_EQ(B[3], 0xCA);
  EXPECT_EQ(B[6], 0xBE);
  EXPECT_EQ(B[7], 0x01);
  EXPECT_EQ(B[14], 0x08);
}

TEST(ByteReader, RoundTripsWriterOutput) {
  ByteWriter W;
  W.writeU1(7);
  W.writeU2(51);
  W.writeU4(0xCAFEBABE);
  W.writeU8(1234567890123ULL);
  W.writeString("hello");

  ByteReader R(W.bytes());
  EXPECT_EQ(R.readU1(), 7);
  EXPECT_EQ(R.readU2(), 51);
  EXPECT_EQ(R.readU4(), 0xCAFEBABEu);
  EXPECT_EQ(R.readU8(), 1234567890123ULL);
  EXPECT_EQ(R.readString(5), "hello");
  EXPECT_TRUE(R.atEnd());
  EXPECT_FALSE(R.hasError());
}

TEST(ByteReader, OverrunSetsStickyError) {
  Bytes Data = {1, 2};
  ByteReader R(Data);
  EXPECT_EQ(R.readU4(), 0u);
  EXPECT_TRUE(R.hasError());
  // Subsequent reads stay zero and flagged.
  EXPECT_EQ(R.readU1(), 0);
  EXPECT_TRUE(R.hasError());
}

TEST(ByteReader, ExactConsumptionIsNotAnError) {
  Bytes Data = {0x12, 0x34};
  ByteReader R(Data);
  EXPECT_EQ(R.readU2(), 0x1234);
  EXPECT_TRUE(R.atEnd());
  EXPECT_FALSE(R.hasError());
}

TEST(ByteReader, SkipAndPosition) {
  Bytes Data = {1, 2, 3, 4, 5};
  ByteReader R(Data);
  R.skip(3);
  EXPECT_EQ(R.position(), 3u);
  EXPECT_EQ(R.remaining(), 2u);
  EXPECT_EQ(R.readU1(), 4);
}

TEST(ByteReader, ReadBytesOverrunReturnsEmpty) {
  Bytes Data = {1, 2, 3};
  ByteReader R(Data);
  Bytes Out = R.readBytes(10);
  EXPECT_TRUE(Out.empty());
  EXPECT_TRUE(R.hasError());
}

TEST(ByteWriter, PatchU2AndU4) {
  ByteWriter W;
  W.writeU2(0);
  W.writeU4(0);
  W.patchU2(0, 0xBEEF);
  W.patchU4(2, 0x01020304);
  ByteReader R(W.bytes());
  EXPECT_EQ(R.readU2(), 0xBEEF);
  EXPECT_EQ(R.readU4(), 0x01020304u);
}
