//===- tests/mutation/mutator_test.cpp -------------------------------------===//
//
// The 129-mutator registry: count, categories, and per-mutator sanity
// (parameterized over the whole registry), plus targeted behavior tests
// for the mutators behind the paper's reported problems.
//
//===----------------------------------------------------------------------===//

#include "../TestHelpers.h"
#include "classfile/ClassReader.h"
#include "jvm/Phase.h"
#include "mutation/Engine.h"
#include "mutation/Mutator.h"
#include "runtime/RuntimeLib.h"

#include <gtest/gtest.h>

#include <set>

using namespace classfuzz;
using namespace classfuzz::testhelpers;

namespace {

std::vector<std::string> knownClasses() {
  return buildRuntimeLibrary("jre8").names();
}

/// A JIR class rich enough for most mutators to be applicable.
JirClass makeRichJir() {
  ClassFile CF = makeHelloClass("Rich");
  FieldInfo F;
  F.Name = "x";
  F.Descriptor = "I";
  F.AccessFlags = ACC_PUBLIC;
  CF.Fields.push_back(F);
  CF.Interfaces.push_back("java/lang/Runnable");
  MethodInfo M;
  M.Name = "run";
  M.Descriptor = "()V";
  M.AccessFlags = ACC_PUBLIC;
  CodeBuilder B(CF.CP);
  B.pushInt(1);
  B.storeLocal('i', 1);
  B.loadLocal('i', 1);
  B.emit(OP_pop);
  B.emit(OP_return);
  CodeAttr Code;
  Code.MaxStack = 1;
  Code.MaxLocals = 2;
  Code.Code = B.build();
  M.Code = std::move(Code);
  M.Exceptions.push_back("java/lang/Exception");
  CF.Methods.push_back(std::move(M));

  auto J = lowerClassBytes(serialize(CF));
  EXPECT_TRUE(J.ok());
  return J.take();
}

} // namespace

TEST(MutatorRegistry, HasExactly129Mutators) {
  EXPECT_EQ(mutatorRegistry().size(), NumMutators);
  EXPECT_EQ(mutatorRegistry().size(), 129u);
}

TEST(MutatorRegistry, SixStatementLevelMutators) {
  size_t StmtLevel = 0;
  for (const Mutator &Mu : mutatorRegistry())
    if (Mu.Category == "JimpleStmt")
      ++StmtLevel;
  EXPECT_EQ(StmtLevel, 6u) << "123 syntactic + 6 Jimple-level (§2.2.1)";
}

TEST(MutatorRegistry, IdsAreUnique) {
  std::set<std::string> Ids;
  for (const Mutator &Mu : mutatorRegistry())
    EXPECT_TRUE(Ids.insert(Mu.Id).second) << "duplicate id " << Mu.Id;
}

TEST(MutatorRegistry, CategoriesAreTheTable2Groups) {
  const std::set<std::string> Expected = {
      "Class",     "Interface", "Field",         "Method",
      "Exception", "Parameter", "LocalVariable", "JimpleStmt"};
  std::set<std::string> Seen;
  for (const Mutator &Mu : mutatorRegistry()) {
    EXPECT_TRUE(Expected.count(Mu.Category))
        << Mu.Id << " has unknown category " << Mu.Category;
    Seen.insert(Mu.Category);
  }
  EXPECT_EQ(Seen, Expected);
}

/// Every mutator, applied to a rich class, either reports inapplicable
/// or actually changes the JIR.
class EveryMutator : public ::testing::TestWithParam<size_t> {};

TEST_P(EveryMutator, AppliesOrDeclines) {
  const Mutator &Mu = mutatorRegistry()[GetParam()];
  Rng R(GetParam() * 7919 + 1);
  auto Known = knownClasses();
  MutationContext Ctx{R, Known};

  JirClass J = makeRichJir();
  auto Before = assembleToBytes(J);
  ASSERT_TRUE(Before.ok()) << Before.error();
  MutationResult Applied = Mu.Apply(J, Ctx);
  if (Applied == MutationResult::Inapplicable)
    return; // Legitimately inapplicable on this shape.
  if (Applied == MutationResult::NoChange) {
    // The three-way API must not misreport: NoChange means the bytes
    // really are unchanged.
    auto After = assembleToBytes(J);
    ASSERT_TRUE(After.ok()) << Mu.Id << ": " << After.error();
    EXPECT_EQ(*After, *Before)
        << Mu.Id << " reported NoChange but altered the class";
    return;
  }
  // Applied must be observable: either the class bytes change or the
  // mutated IR is no longer assemblable (which is also a real effect).
  auto After = assembleToBytes(J);
  EXPECT_TRUE(!After.ok() || *After != *Before)
      << Mu.Id << " claimed success without changing anything";
}

TEST_P(EveryMutator, MutationEngineProducesParseableMutantsOrFails) {
  Rng R(GetParam() * 104729 + 3);
  auto Known = knownClasses();
  MutationContext Ctx{R, Known};
  Bytes Seed = serialize(makeHelloClass("Seed"));
  MutationOutcome Out = mutateClass(Seed, GetParam(), Ctx);
  if (!Out.Produced) {
    EXPECT_FALSE(Out.Error.empty());
    return;
  }
  auto Parsed = parseClassFile(Out.Data);
  EXPECT_TRUE(Parsed.ok())
      << mutatorRegistry()[GetParam()].Id << ": " << Parsed.error();
  EXPECT_EQ(Parsed->ThisClass, Out.ClassName);
  // §2.2.1: every mutant is supplemented with a main method.
  EXPECT_NE(Parsed->findMethodByName("main"), nullptr);
}

INSTANTIATE_TEST_SUITE_P(
    All129, EveryMutator, ::testing::Range<size_t>(0, NumMutators),
    [](const ::testing::TestParamInfo<size_t> &Info) {
      std::string Id = mutatorRegistry()[Info.param].Id;
      for (char &C : Id)
        if (C == '.' || C == '-')
          C = '_';
      return Id;
    });

namespace {

size_t indexOf(const std::string &Id) {
  const auto &Reg = mutatorRegistry();
  for (size_t I = 0; I != Reg.size(); ++I)
    if (Reg[I].Id == Id)
      return I;
  ADD_FAILURE() << "unknown mutator " << Id;
  return 0;
}

/// Applies one mutator by id to a hello seed and differentially runs the
/// mutant on HotSpot8 and J9 (shared jre8 environment).
struct MutantRun {
  bool Produced = false;
  JvmResult OnHotSpot;
  JvmResult OnJ9;
  JvmResult OnGij;
};

MutantRun runMutant(const std::string &MutatorId, uint64_t Seed = 42) {
  MutantRun Out;
  Rng R(Seed);
  auto Known = knownClasses();
  MutationContext Ctx{R, Known};
  Bytes SeedData = serialize(makeHelloClass("Seed"));
  MutationOutcome Mutant =
      mutateClass(SeedData, indexOf(MutatorId), Ctx);
  if (!Mutant.Produced)
    return Out;
  Out.Produced = true;
  Out.OnHotSpot = runOn(makeHotSpot8Policy(),
                        {{Mutant.ClassName, Mutant.Data}},
                        Mutant.ClassName);
  Out.OnJ9 = runOn(makeJ9Policy(), {{Mutant.ClassName, Mutant.Data}},
                   Mutant.ClassName);
  Out.OnGij = runOn(makeGijPolicy(), {{Mutant.ClassName, Mutant.Data}},
                    Mutant.ClassName);
  return Out;
}

} // namespace

TEST(MutatorBehavior, NonStaticClinitReproducesProblem1) {
  MutantRun Run = runMutant("method.insert-nonstatic-clinit");
  ASSERT_TRUE(Run.Produced);
  EXPECT_TRUE(Run.OnHotSpot.Invoked) << Run.OnHotSpot.toString();
  EXPECT_EQ(Run.OnJ9.Error, JvmErrorKind::ClassFormatError);
}

TEST(MutatorBehavior, InaccessibleThrowsReproducesProblem3) {
  MutantRun Run = runMutant("throws.add-inaccessible");
  ASSERT_TRUE(Run.Produced);
  EXPECT_EQ(Run.OnHotSpot.Error, JvmErrorKind::IllegalAccessError);
  EXPECT_TRUE(Run.OnJ9.Invoked) << Run.OnJ9.toString();
  EXPECT_TRUE(Run.OnGij.Invoked) << Run.OnGij.toString();
}

TEST(MutatorBehavior, FinalSuperclassMutantSplitsJvms) {
  MutantRun Run = runMutant("class.set-super-final");
  ASSERT_TRUE(Run.Produced);
  EXPECT_EQ(Run.OnHotSpot.Error, JvmErrorKind::VerifyError);
  EXPECT_TRUE(Run.OnGij.Invoked)
      << "GIJ does not reject final superclasses: "
      << Run.OnGij.toString();
}

TEST(MutatorBehavior, InterfaceSuperclassMutant) {
  MutantRun Run = runMutant("class.set-super-interface");
  ASSERT_TRUE(Run.Produced);
  EXPECT_EQ(Run.OnHotSpot.Error,
            JvmErrorKind::IncompatibleClassChangeError);
  EXPECT_TRUE(Run.OnGij.Invoked) << Run.OnGij.toString();
}

TEST(MutatorBehavior, SelfSuperclassIsCircularity) {
  MutantRun Run = runMutant("class.set-super-self");
  ASSERT_TRUE(Run.Produced);
  EXPECT_EQ(Run.OnHotSpot.Error, JvmErrorKind::ClassCircularityError);
  EXPECT_EQ(Run.OnJ9.Error, JvmErrorKind::ClassCircularityError);
}

TEST(MutatorBehavior, MissingSuperclass) {
  MutantRun Run = runMutant("class.set-super-missing");
  ASSERT_TRUE(Run.Produced);
  EXPECT_EQ(Run.OnHotSpot.Error, JvmErrorKind::NoClassDefFoundError);
}

TEST(MutatorBehavior, UnsupportedVersionSplitsJvms) {
  MutantRun Run = runMutant("class.set-version-53");
  ASSERT_TRUE(Run.Produced);
  // 53 exceeds HotSpot8 (52), J9 (52), and GIJ (51).
  EXPECT_EQ(Run.OnHotSpot.Error,
            JvmErrorKind::UnsupportedClassVersionError);
  EXPECT_EQ(Run.OnJ9.Error, JvmErrorKind::UnsupportedClassVersionError);
  EXPECT_EQ(Run.OnGij.Error, JvmErrorKind::UnsupportedClassVersionError);
}

TEST(MutatorBehavior, DuplicateFieldSplitsGij) {
  // Insert-duplicate on a class with a field.
  Rng R(7);
  auto Known = knownClasses();
  MutationContext Ctx{R, Known};
  ClassFile CF = makeHelloClass("HasField");
  FieldInfo F;
  F.Name = "x";
  F.Descriptor = "I";
  F.AccessFlags = ACC_PUBLIC;
  CF.Fields.push_back(F);
  MutationOutcome Mutant = mutateClass(
      serialize(CF), indexOf("field.insert-duplicate"), Ctx);
  ASSERT_TRUE(Mutant.Produced) << Mutant.Error;
  JvmResult OnHs = runOn(makeHotSpot8Policy(),
                         {{Mutant.ClassName, Mutant.Data}},
                         Mutant.ClassName);
  EXPECT_EQ(OnHs.Error, JvmErrorKind::ClassFormatError);
  JvmResult OnGij = runOn(makeGijPolicy(),
                          {{Mutant.ClassName, Mutant.Data}},
                          Mutant.ClassName);
  EXPECT_TRUE(OnGij.Invoked) << OnGij.toString();
}

TEST(MutatorBehavior, ZeroMaxStackTriggersVerifyError) {
  MutantRun Run = runMutant("local.zero-max-stack");
  ASSERT_TRUE(Run.Produced);
  EXPECT_EQ(Run.OnHotSpot.Error, JvmErrorKind::VerifyError);
  EXPECT_EQ(encodePhase(Run.OnHotSpot), 2);
}

TEST(MutatorBehavior, RetypeLocalTriggersVerifyError) {
  // Retype on a seed with an int local.
  Rng R(11);
  auto Known = knownClasses();
  MutationContext Ctx{R, Known};
  ClassFile CF = makeHelloClass("IntLocal");
  MethodInfo *Main = CF.findMethod("main", "([Ljava/lang/String;)V");
  CodeBuilder B(CF.CP);
  B.pushInt(5);
  B.storeLocal('i', 1);
  B.loadLocal('i', 1);
  B.emit(OP_pop);
  B.emit(OP_return);
  Main->Code->Code = B.build();
  Main->Code->MaxStack = 1;
  Main->Code->MaxLocals = 2;
  MutationOutcome Mutant = mutateClass(
      serialize(CF), indexOf("local.retype-int-to-ref"), Ctx);
  ASSERT_TRUE(Mutant.Produced) << Mutant.Error;
  JvmResult OnHs = runOn(makeHotSpot8Policy(),
                         {{Mutant.ClassName, Mutant.Data}},
                         Mutant.ClassName);
  EXPECT_EQ(OnHs.Error, JvmErrorKind::VerifyError);
}

TEST(MutatorBehavior, RenameClassProducesFreshName) {
  Rng R(42);
  auto Known = knownClasses();
  MutationContext Ctx{R, Known};
  Bytes SeedData = serialize(makeHelloClass("Seed"));
  MutationOutcome Mutant =
      mutateClass(SeedData, indexOf("class.rename"), Ctx);
  ASSERT_TRUE(Mutant.Produced) << Mutant.Error;
  EXPECT_NE(Mutant.ClassName, "Seed");
  // Stored under the new name, the renamed hello class (which has no
  // self-references) still runs; fetching it by the OLD name now fails
  // with the wrong-name NoClassDefFoundError.
  JvmResult UnderNew = runOn(makeHotSpot8Policy(),
                             {{Mutant.ClassName, Mutant.Data}},
                             Mutant.ClassName);
  EXPECT_TRUE(UnderNew.Invoked) << UnderNew.toString();
  JvmResult UnderOld =
      runOn(makeHotSpot8Policy(), {{"Seed", Mutant.Data}}, "Seed");
  EXPECT_EQ(UnderOld.Error, JvmErrorKind::NoClassDefFoundError);
}

TEST(MutatorBehavior, DeleteAllMethodsLeavesSupplementedMain) {
  MutantRun Run = runMutant("method.delete-all");
  ASSERT_TRUE(Run.Produced);
  EXPECT_TRUE(Run.OnHotSpot.Invoked)
      << "the supplemented main keeps the mutant invocable: "
      << Run.OnHotSpot.toString();
  ASSERT_FALSE(Run.OnHotSpot.Output.empty());
  EXPECT_EQ(Run.OnHotSpot.Output[0], SupplementedMainMessage);
}

TEST(MutationEngine, RejectsUnloadableSeed) {
  Rng R(1);
  auto Known = knownClasses();
  MutationContext Ctx{R, Known};
  Bytes Garbage = {0xCA, 0xFE};
  MutationOutcome Out = mutateClass(Garbage, 0, Ctx);
  EXPECT_FALSE(Out.Produced);
  EXPECT_NE(Out.Error.find("lowering"), std::string::npos);
}

TEST(MutationEngine, EnsureMainIsIdempotent) {
  Bytes Seed = serialize(makeHelloClass("HasMain"));
  auto J = lowerClassBytes(Seed);
  ASSERT_TRUE(J.ok());
  size_t Before = J->Methods.size();
  ensureMainMethod(*J);
  EXPECT_EQ(J->Methods.size(), Before) << "existing main is kept";
}

TEST(MutationResult, ClassifyDistinguishesTheThreeOutcomes) {
  Rng R(5);
  std::vector<std::string> Known = knownClasses();
  MutationContext Ctx{R, Known};
  JirClass J = makeRichJir();

  // A body that declines is Inapplicable.
  auto Decline = [](JirClass &, MutationContext &) { return false; };
  EXPECT_EQ(classifyMutation(Decline, J, Ctx),
            MutationResult::Inapplicable);

  // A body that claims success without touching the class is NoChange.
  auto Noop = [](JirClass &, MutationContext &) { return true; };
  EXPECT_EQ(classifyMutation(Noop, J, Ctx), MutationResult::NoChange);

  // A body rewriting the class into itself is also NoChange: the
  // classifier compares structure, not writes.
  auto SelfAssign = [](JirClass &C, MutationContext &) {
    C.SuperClass = std::string(C.SuperClass);
    return true;
  };
  EXPECT_EQ(classifyMutation(SelfAssign, J, Ctx),
            MutationResult::NoChange);

  // A real rewrite is Applied.
  auto Rewrite = [](JirClass &C, MutationContext &) {
    C.SuperClass = "java/lang/Thread";
    return true;
  };
  EXPECT_EQ(classifyMutation(Rewrite, J, Ctx), MutationResult::Applied);
}

TEST(MutationResult, NamesAreStable) {
  EXPECT_STREQ(mutationResultName(MutationResult::Inapplicable),
               "inapplicable");
  EXPECT_STREQ(mutationResultName(MutationResult::NoChange), "nochange");
  EXPECT_STREQ(mutationResultName(MutationResult::Applied), "applied");
}

TEST(MutationResult, EngineSurfacesTheResult) {
  Rng R(9);
  std::vector<std::string> Known = knownClasses();
  MutationContext Ctx{R, Known};
  Bytes Seed = serialize(makeHelloClass("EngineResultSeed"));

  const auto &Registry = mutatorRegistry();
  bool SawApplied = false, SawInapplicable = false;
  for (size_t I = 0; I != Registry.size(); ++I) {
    MutationOutcome Out = mutateClass(Seed, I, Ctx);
    if (Out.Result == MutationResult::Inapplicable) {
      SawInapplicable = true;
      EXPECT_FALSE(Out.Produced) << Registry[I].Id;
    }
    if (Out.Result == MutationResult::Applied && Out.Produced)
      SawApplied = true;
  }
  EXPECT_TRUE(SawApplied);
  EXPECT_TRUE(SawInapplicable);
}
