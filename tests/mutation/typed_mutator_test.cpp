//===- tests/mutation/typed_mutator_test.cpp -------------------------------===//
//
// The analyzer-driven typed mutator family (DESIGN.md §17): registry
// layout (the paper's 129 indices are untouched), the strict RNG-draw
// discipline (no holes => no draws), and byte-for-byte provenance
// replay of campaigns that ran with --typed-mutators.
//
//===----------------------------------------------------------------------===//

#include "../TestHelpers.h"
#include "analysis/StaticAnalyzer.h"
#include "fuzzing/Campaign.h"
#include "fuzzing/Provenance.h"
#include "mutation/Engine.h"
#include "mutation/Mutator.h"

#include <gtest/gtest.h>

#include <optional>

using namespace classfuzz;
using namespace classfuzz::testhelpers;

namespace {

/// Indices of the typed family in extendedMutatorRegistry().
std::vector<size_t> typedIndices() {
  std::vector<size_t> Out;
  for (size_t I = NumMutators; I != NumMutators + NumTypedMutators; ++I)
    Out.push_back(I);
  return Out;
}

CampaignConfig typedConfig(size_t Jobs = 1) {
  CampaignConfig Config;
  Config.Algo = FuzzAlgorithm::ClassfuzzStBr;
  Config.Iterations = 300;
  Config.RngSeed = 7;
  Config.NumSeeds = 8;
  Config.Jobs = Jobs;
  Config.TypedMutators = true;
  return Config;
}

/// The hole provider replay needs: an analyzer over the campaign's
/// frozen base environment (reference runtime library + seed corpus),
/// exactly as runCampaign builds it.
struct ReplayHoleEnv {
  ClassPath Env;
  std::optional<StaticAnalyzer> Analyzer;

  explicit ReplayHoleEnv(const CampaignConfig &Config,
                         const std::vector<SeedClass> &Seeds) {
    Env = runtimeLibraryFor(Config.ReferencePolicy);
    for (const SeedClass &Seed : Seeds) {
      Env.add(Seed.Name, Seed.Data);
      for (const auto &[Name, Data] : Seed.Helpers)
        Env.add(Name, Data);
    }
    Env.freeze();
    Analyzer.emplace(Env, Config.ReferencePolicy);
  }

  HoleProviderFn provider() {
    return [this](const Bytes &Data) {
      return Analyzer->typedHolesFor("", Data);
    };
  }
};

} // namespace

TEST(TypedMutators, ExtendedRegistrySharesThePaperPrefix) {
  const auto &Base = mutatorRegistry();
  const auto &Ext = extendedMutatorRegistry();
  ASSERT_EQ(Base.size(), NumMutators);
  ASSERT_EQ(Ext.size(), NumMutators + NumTypedMutators);
  // Provenance records index into the registry, so the first 129
  // entries must be the same operators in the same order.
  for (size_t I = 0; I != NumMutators; ++I) {
    EXPECT_EQ(Ext[I].Id, Base[I].Id) << "index " << I;
    EXPECT_EQ(Ext[I].Category, Base[I].Category) << "index " << I;
  }
  for (size_t I : typedIndices()) {
    EXPECT_EQ(Ext[I].Id.compare(0, 6, "typed."), 0) << Ext[I].Id;
    EXPECT_FALSE(Ext[I].Description.empty());
  }
}

TEST(TypedMutators, NoHolesMeansInapplicableAndZeroDraws) {
  // The draw discipline behind --jobs invariance: a typed mutator whose
  // hole list is absent (or offers no matching site) must not touch the
  // RNG at all, or speculation replay would desynchronize.
  Bytes Seed = serialize(makeHelloClass("Probe"));
  std::vector<std::string> Known = buildRuntimeLibrary("jre8").names();
  for (size_t I : typedIndices()) {
    Rng R(42);
    MutationContext Ctx{R, Known}; // Holes defaults to nullptr.
    RngState Before = R.state();
    auto Out = mutateClass(Seed, I, Ctx);
    EXPECT_FALSE(Out.Produced) << extendedMutatorRegistry()[I].Id;
    EXPECT_EQ(Out.Result, MutationResult::Inapplicable);
    EXPECT_EQ(R.state(), Before)
        << extendedMutatorRegistry()[I].Id << " drew from the RNG";

    TypedHoleList Empty;
    MutationContext EmptyCtx{R, Known, &Empty};
    Before = R.state();
    auto Out2 = mutateClass(Seed, I, EmptyCtx);
    EXPECT_EQ(Out2.Result, MutationResult::Inapplicable);
    EXPECT_EQ(R.state(), Before)
        << extendedMutatorRegistry()[I].Id << " drew on an empty hole list";
  }
}

TEST(TypedMutators, ApplicationIsAFunctionOfRngStateAndHoles) {
  // Byte-for-byte replay discipline at the single-mutation level:
  // restoring the RNG snapshot and presenting the same hole list must
  // reproduce the mutant exactly.
  ClassPath Env = makeEnv();
  StaticAnalyzer Analyzer(Env, referenceJvmPolicy());
  Bytes Seed = serialize(makeHelloClass("Probe"));
  TypedHoleList Holes = Analyzer.typedHolesFor("Probe", Seed);
  ASSERT_FALSE(Holes.empty());
  std::vector<std::string> Known = Env.names();

  size_t Produced = 0;
  for (size_t I : typedIndices()) {
    Rng R(99 + I);
    MutationContext Ctx{R, Known, &Holes};
    RngState Before = R.state();
    auto First = mutateClass(Seed, I, Ctx);
    if (!First.Produced)
      continue;
    ++Produced;
    R.restore(Before);
    auto Second = mutateClass(Seed, I, Ctx);
    ASSERT_TRUE(Second.Produced) << extendedMutatorRegistry()[I].Id;
    EXPECT_EQ(Second.ClassName, First.ClassName);
    EXPECT_EQ(Second.Data, First.Data) << extendedMutatorRegistry()[I].Id;
  }
  // The hello class offers sibling and descriptor sites at minimum.
  EXPECT_GE(Produced, 2u) << "hole list applied to too few typed mutators";
}

TEST(TypedMutators, CampaignLineagesReplayByteForByte) {
  auto Config = typedConfig();
  auto R = runCampaign(Config);
  ASSERT_GT(R.numGenerated(), 0u);

  CampaignEnvSpec Spec;
  Spec.RngSeed = Config.RngSeed;
  Spec.NumSeeds = Config.NumSeeds;
  Spec.ReferencePolicyName = Config.ReferencePolicy.Name;
  Spec.TierName = "threaded";
  auto Known = rebuildKnownClasses(Spec, R.Seeds);
  ReplayHoleEnv HoleEnv(Config, R.Seeds);
  HoleProviderFn Provider = HoleEnv.provider();

  size_t TypedSteps = 0;
  for (const GeneratedClass &G : R.GenClasses) {
    for (const LineageStep &S : G.Prov.Steps)
      TypedSteps += S.MutatorIndex >= NumMutators;
    const SeedClass &Root = R.Seeds[G.Prov.RootSeedIndex];
    auto Replayed = replayLineage(Root.Data, G.Prov.Steps, Known, Provider);
    ASSERT_TRUE(Replayed) << G.Name << ": " << Replayed.error();
    EXPECT_EQ(Replayed->ClassName, G.Name);
    EXPECT_EQ(Replayed->Data, G.Data) << G.Name;
  }
  // The campaign must actually have exercised the typed family, or the
  // provider path above went untested.
  EXPECT_GT(TypedSteps, 0u) << "no typed.* step in any lineage";
}

TEST(TypedMutators, TypedCampaignIsJobsInvariant) {
  auto Seq = runCampaign(typedConfig(1));
  auto Par = runCampaign(typedConfig(8));
  ASSERT_EQ(Seq.numGenerated(), Par.numGenerated());
  for (size_t I = 0; I != Seq.GenClasses.size(); ++I) {
    EXPECT_EQ(Seq.GenClasses[I].Name, Par.GenClasses[I].Name);
    EXPECT_EQ(Seq.GenClasses[I].Data, Par.GenClasses[I].Data);
    EXPECT_EQ(Seq.GenClasses[I].MutatorIndex, Par.GenClasses[I].MutatorIndex);
    EXPECT_EQ(Seq.GenClasses[I].Prov, Par.GenClasses[I].Prov);
  }
  EXPECT_EQ(Seq.MutatorSelected, Par.MutatorSelected);
  EXPECT_EQ(Seq.MutatorSucceeded, Par.MutatorSucceeded);
}
