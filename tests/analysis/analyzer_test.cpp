//===- tests/analysis/analyzer_test.cpp ------------------------------------===//
//
// The execution-free static analyzer: startup-phase predictions against
// actual VM runs, the exhaustive-diagnostics superset property over the
// VM pipeline's first failure, environment-memo invalidation, and
// byte-stable JSON rendering.
//
//===----------------------------------------------------------------------===//

#include "../TestHelpers.h"
#include "analysis/StaticAnalyzer.h"
#include "classfile/ClassReader.h"
#include "jvm/FormatChecker.h"
#include "jvm/Phase.h"
#include "jvm/Verifier.h"
#include "mutation/Engine.h"
#include "mutation/Mutator.h"
#include "runtime/SeedCorpus.h"

#include <gtest/gtest.h>

#include <map>
#include <optional>

using namespace classfuzz;
using namespace classfuzz::testhelpers;

namespace {

JvmPolicy refPolicy() { return referenceJvmPolicy(); }

ClassPath refEnv() { return runtimeLibraryFor(refPolicy()); }

/// Analyzer over the reference environment (the campaign's setup).
StaticAnalyzer makeAnalyzer(const ClassPath &Env) {
  return StaticAnalyzer(Env, refPolicy());
}

/// Runs \p Data as \p Name on the reference VM over \p Env (the class
/// shadows any same-named env entry, like a campaign mutant).
int observedPhase(const ClassPath &Env, const std::string &Name,
                  const Bytes &Data) {
  ClassPath Run = Env;
  Run.add(Name, Data);
  Vm Jvm(refPolicy(), Run);
  return encodePhase(Jvm.run(Name));
}

bool hasErrorMessage(const AnalysisReport &Report, PassId Pass,
                     const std::string &Message) {
  for (const Diagnostic &D : Report.Diagnostics)
    if (D.Pass == Pass && D.Severity == DiagSeverity::Error &&
        D.Message == Message)
      return true;
  return false;
}

/// A class whose main underflows the operand stack (verify error).
Bytes makeUnderflowClass(const std::string &Name) {
  ClassFile CF = makeHelloClass(Name);
  for (MethodInfo &M : CF.Methods)
    if (M.Name == "main")
      M.Code->Code = {OP_pop, OP_return};
  return serialize(CF);
}

} // namespace

TEST(StaticAnalyzer, ValidClassPredictsPass) {
  ClassPath Env = refEnv();
  StaticAnalyzer A = makeAnalyzer(Env);
  Bytes Data = serialize(makeHelloClass("Valid"));
  AnalysisReport R = A.analyzeClass("Valid", Data);
  EXPECT_TRUE(R.Parsed);
  EXPECT_EQ(R.Prediction.Outcome, PredictedOutcome::PassStatic);
  EXPECT_EQ(R.errorCount(), 0u);
  EXPECT_TRUE(R.Prediction.isCompatibleWith(observedPhase(Env, "Valid", Data)));
}

TEST(StaticAnalyzer, GarbagePredictsRejectLoading) {
  ClassPath Env = refEnv();
  StaticAnalyzer A = makeAnalyzer(Env);
  Bytes Garbage = {0xDE, 0xAD, 0xBE, 0xEF};
  AnalysisReport R = A.analyzeClass("Garbage", Garbage);
  EXPECT_FALSE(R.Parsed);
  EXPECT_EQ(R.Prediction.Outcome, PredictedOutcome::RejectLoading);
  EXPECT_EQ(R.Prediction.predictedPhase(), 1);
  EXPECT_EQ(observedPhase(Env, "Garbage", Garbage), 1);
}

TEST(StaticAnalyzer, UnsupportedMajorVersionPredictsRejectLoading) {
  ClassPath Env = refEnv();
  StaticAnalyzer A = makeAnalyzer(Env);
  ClassFile CF = makeHelloClass("TooNew");
  CF.MajorVersion = refPolicy().MaxClassFileMajor + 10;
  Bytes Data = serialize(CF);
  AnalysisReport R = A.analyzeClass("TooNew", Data);
  EXPECT_EQ(R.Prediction.Outcome, PredictedOutcome::RejectLoading);
  EXPECT_EQ(observedPhase(Env, "TooNew", Data), 1);
}

TEST(StaticAnalyzer, StackUnderflowPredictsRejectLinking) {
  ClassPath Env = refEnv();
  StaticAnalyzer A = makeAnalyzer(Env);
  Bytes Data = makeUnderflowClass("Underflow");
  AnalysisReport R = A.analyzeClass("Underflow", Data);
  EXPECT_EQ(R.Prediction.Outcome, PredictedOutcome::RejectLinking);
  EXPECT_EQ(R.Prediction.predictedPhase(), 2);
  EXPECT_EQ(R.Prediction.Error, JvmErrorKind::VerifyError);
  EXPECT_EQ(observedPhase(Env, "Underflow", Data), 2);
}

TEST(StaticAnalyzer, MissingSuperclassPredictsRejectLoading) {
  ClassPath Env = refEnv();
  StaticAnalyzer A = makeAnalyzer(Env);
  ClassFile CF = makeHelloClass("Orphan");
  CF.SuperClass = "does/not/Exist";
  Bytes Data = serialize(CF);
  AnalysisReport R = A.analyzeClass("Orphan", Data);
  EXPECT_EQ(R.Prediction.Outcome, PredictedOutcome::RejectLoading);
  EXPECT_EQ(R.Prediction.Error, JvmErrorKind::NoClassDefFoundError);
  EXPECT_EQ(observedPhase(Env, "Orphan", Data), 1);
}

TEST(StaticAnalyzer, PredictionContractSemantics) {
  StartupPrediction P;
  P.Outcome = PredictedOutcome::RejectLoading;
  EXPECT_TRUE(P.isCompatibleWith(1));
  EXPECT_FALSE(P.isCompatibleWith(2));
  P.Outcome = PredictedOutcome::RejectLinking;
  EXPECT_TRUE(P.isCompatibleWith(2));
  EXPECT_FALSE(P.isCompatibleWith(4));
  P.Outcome = PredictedOutcome::PassStatic;
  EXPECT_FALSE(P.isCompatibleWith(1));
  // Runtime resolution errors canonicalize back to the linking phase,
  // so 2 stays compatible with a static pass.
  EXPECT_TRUE(P.isCompatibleWith(2));
  EXPECT_TRUE(P.isCompatibleWith(3));
  EXPECT_TRUE(P.isCompatibleWith(4));
}

TEST(StaticAnalyzer, AddEnvironmentClassInvalidatesChainMemo) {
  ClassPath Env = refEnv();
  StaticAnalyzer A = makeAnalyzer(Env);

  ClassFile Child = makeHelloClass("Child");
  Child.SuperClass = "LateParent";
  Bytes ChildData = serialize(Child);

  // LateParent is unknown: loading the chain fails.
  AnalysisReport Before = A.analyzeClass("Child", ChildData);
  EXPECT_EQ(Before.Prediction.Outcome, PredictedOutcome::RejectLoading);

  // Feed the parent in (the campaign does this for accepted mutants);
  // the memoized chain walk that missed on "LateParent" must be
  // invalidated, not replayed.
  A.addEnvironmentClass("LateParent", serialize(makeHelloClass("LateParent")));
  AnalysisReport After = A.analyzeClass("Child", ChildData);
  EXPECT_EQ(After.Prediction.Outcome, PredictedOutcome::PassStatic);
}

TEST(StaticAnalyzer, AnalyzeByNameUsesEnvironment) {
  ClassPath Env = refEnv();
  Bytes Data = serialize(makeHelloClass("InEnv"));
  Env.add("InEnv", Data);
  StaticAnalyzer A = makeAnalyzer(Env);
  AnalysisReport R = A.analyzeClass("InEnv");
  EXPECT_TRUE(R.Parsed);
  EXPECT_EQ(R.Prediction.Outcome, PredictedOutcome::PassStatic);

  AnalysisReport Missing = A.analyzeClass("NotThere");
  EXPECT_EQ(Missing.Prediction.Outcome, PredictedOutcome::RejectLoading);
  EXPECT_EQ(Missing.Prediction.Error, JvmErrorKind::NoClassDefFoundError);
}

TEST(StaticAnalyzer, JsonRenderingIsByteStable) {
  ClassPath Env = refEnv();
  Bytes Data = makeUnderflowClass("Stable");
  std::string A = makeAnalyzer(Env).analyzeClass("Stable", Data).toJson();
  std::string B = makeAnalyzer(Env).analyzeClass("Stable", Data).toJson();
  EXPECT_EQ(A, B);
  EXPECT_NE(A.find("\"class\":\"Stable\""), std::string::npos);
  EXPECT_NE(A.find("\"prediction\""), std::string::npos);
}

TEST(StaticAnalyzer, RenderAnnotatedSurvivesCorruptPool) {
  ClassPath Env = refEnv();
  ClassFile CF = makeHelloClass("CorruptPrint");
  uint16_t Cls = CF.CP.classRef("X");
  CF.CP.at(Cls).Ref1 = 700; // Dangling.
  Bytes Data = serialize(CF);
  StaticAnalyzer A = makeAnalyzer(Env);
  AnalysisReport R = A.analyzeClass("CorruptPrint", Data);
  std::string Out = StaticAnalyzer::renderAnnotated(R, Data);
  EXPECT_NE(Out.find("Analysis of CorruptPrint"), std::string::npos);
}

// The superset property (DESIGN.md §11): on mutated seed-corpus
// classes, whatever first failure the VM pipeline would latch appears
// among the analyzer's exhaustive diagnostics, with the same message.
TEST(StaticAnalyzer, DiagnosticsSupersetOfVmFirstFailure) {
  JvmPolicy Policy = refPolicy();
  ClassPath Env = refEnv();
  StaticAnalyzer A = makeAnalyzer(Env);

  // Lookup mirroring the analyzer's TypeCheck view: the mutant itself,
  // then environment classes parsed on demand.
  std::map<std::string, std::optional<ClassFile>> Cache;
  auto EnvLookup = [&](const std::string &N) -> const ClassFile * {
    auto It = Cache.find(N);
    if (It == Cache.end()) {
      std::optional<ClassFile> Parsed;
      if (const Bytes *B = Env.lookup(N))
        if (auto CF = parseClassFile(*B))
          Parsed = CF.take();
      It = Cache.emplace(N, std::move(Parsed)).first;
    }
    return It->second ? &*It->second : nullptr;
  };

  Rng R(2024);
  auto Seeds = generateSeedCorpus(R, 12);
  std::vector<std::string> Known = Env.names();

  size_t FormatFailures = 0, VerifyFailures = 0, Produced = 0;
  for (const SeedClass &S : Seeds) {
    for (size_t MuIdx = 0; MuIdx < mutatorRegistry().size(); MuIdx += 7) {
      MutationContext Ctx{R, Known};
      MutationOutcome O = mutateClass(S.Data, MuIdx, Ctx);
      if (!O.Produced)
        continue;
      ++Produced;
      auto CF = parseClassFile(O.Data);
      if (!CF)
        continue;
      AnalysisReport Report = A.analyzeClass(O.ClassName, O.Data);

      if (auto F = checkClassFormat(*CF, Policy, nullptr)) {
        ++FormatFailures;
        EXPECT_TRUE(hasErrorMessage(Report, PassId::Format, F->Message))
            << O.ClassName << ": format failure \"" << F->Message
            << "\" missing from analyzer diagnostics";
      }

      ClassLookupFn Lookup = [&](const std::string &N) -> const ClassFile * {
        if (N == CF->ThisClass)
          return &*CF;
        return EnvLookup(N);
      };
      for (const MethodInfo &M : CF->Methods) {
        if (auto F = verifyMethod(*CF, M, Policy, Lookup, nullptr)) {
          ++VerifyFailures;
          EXPECT_TRUE(hasErrorMessage(Report, PassId::TypeCheck, F->Message))
              << O.ClassName << "." << M.Name << ": verify failure \""
              << F->Message << "\" missing from analyzer diagnostics";
          break; // The VM latches the first failing method.
        }
      }
    }
  }
  // The sweep must have exercised both comparisons, or it proves nothing.
  EXPECT_GT(Produced, 50u);
  EXPECT_GT(FormatFailures + VerifyFailures, 0u);
}

// Every mutated seed's prediction must hold against an actual reference
// run -- the in-test version of the campaign's self-check oracle.
TEST(StaticAnalyzer, PredictionsMatchVmOnMutatedSeeds) {
  ClassPath Env = refEnv();
  StaticAnalyzer A = makeAnalyzer(Env);
  Rng R(77);
  auto Seeds = generateSeedCorpus(R, 8);
  std::vector<std::string> Known = Env.names();

  size_t Checked = 0;
  for (const SeedClass &S : Seeds) {
    ClassPath SeedEnv = Env;
    for (const auto &[Name, Data] : S.Helpers)
      SeedEnv.add(Name, Data);
    StaticAnalyzer SeedAnalyzer(SeedEnv, refPolicy());
    for (size_t MuIdx = 3; MuIdx < mutatorRegistry().size(); MuIdx += 11) {
      MutationContext Ctx{R, Known};
      MutationOutcome O = mutateClass(S.Data, MuIdx, Ctx);
      if (!O.Produced)
        continue;
      StartupPrediction P =
          SeedAnalyzer.predictStartupOutcome(O.ClassName, O.Data);
      int Observed = observedPhase(SeedEnv, O.ClassName, O.Data);
      EXPECT_TRUE(P.isCompatibleWith(Observed))
          << O.ClassName << ": predicted "
          << predictedOutcomeName(P.Outcome) << " but observed phase "
          << Observed;
      ++Checked;
    }
  }
  EXPECT_GT(Checked, 40u);
}
