//===- tests/analysis/typedholes_test.cpp ----------------------------------===//
//
// Typed-hole extraction (DESIGN.md §17): deterministic ordering, the
// near-miss contract (every alternative differs from the expected
// type), the memoized analyzer path, and memo invalidation when
// addEnvironmentClass reshapes the sibling hierarchy.
//
//===----------------------------------------------------------------------===//

#include "../TestHelpers.h"
#include "analysis/StaticAnalyzer.h"
#include "analysis/TypedHoles.h"
#include "classfile/ClassReader.h"
#include "mutation/Engine.h"
#include "mutation/Mutator.h"
#include "runtime/SeedCorpus.h"

#include <gtest/gtest.h>

#include <tuple>

using namespace classfuzz;
using namespace classfuzz::testhelpers;

namespace {

/// A hello class with an explicit superclass.
Bytes makeSubclass(const std::string &Name, const std::string &Super) {
  ClassFile CF = makeHelloClass(Name);
  CF.SuperClass = Super;
  return serialize(CF);
}

/// A hello class whose constant pool references \p Ref (via the
/// interface list, which emits a CONSTANT_Class entry).
Bytes makeUserOf(const std::string &Name, const std::string &Ref) {
  ClassFile CF = makeHelloClass(Name);
  CF.Interfaces.push_back(Ref);
  return serialize(CF);
}

/// The sort key extractTypedHoles orders by.
std::tuple<std::string, std::string, std::string, int>
sortKey(const TypedHole &H) {
  return {H.Location.toString(), holeKindName(H.Kind), H.Expected, H.Slot};
}

void expectSameHoles(const TypedHoleList &A, const TypedHoleList &B) {
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I != A.size(); ++I) {
    EXPECT_EQ(A[I].Kind, B[I].Kind);
    EXPECT_EQ(A[I].Location.toString(), B[I].Location.toString());
    EXPECT_EQ(A[I].Expected, B[I].Expected);
    EXPECT_EQ(A[I].Alternatives, B[I].Alternatives);
    EXPECT_EQ(A[I].MemberName, B[I].MemberName);
    EXPECT_EQ(A[I].MemberDesc, B[I].MemberDesc);
    EXPECT_EQ(A[I].Slot, B[I].Slot);
    EXPECT_EQ(A[I].CpIndex, B[I].CpIndex);
  }
}

/// The sibling alternatives of the CP hole anchored at \p Ref, or
/// nullptr when no such hole exists.
const TypedHole *siblingHoleFor(const TypedHoleList &Holes,
                                const std::string &Ref) {
  for (const TypedHole &H : Holes)
    if (H.Kind == HoleKind::SiblingClass && H.Expected == Ref)
      return &H;
  return nullptr;
}

} // namespace

TEST(TypedHoles, ExtractionIsDeterministicAndSorted) {
  ClassPath Env = makeEnv();
  StaticAnalyzer Analyzer(Env, referenceJvmPolicy());
  Bytes Data = serialize(makeHelloClass("Probe"));

  TypedHoleList First = Analyzer.typedHolesFor("Probe", Data);
  TypedHoleList Second = Analyzer.typedHolesFor("Probe", Data);
  ASSERT_FALSE(First.empty());
  expectSameHoles(First, Second);
  for (size_t I = 1; I < First.size(); ++I)
    EXPECT_LE(sortKey(First[I - 1]), sortKey(First[I])) << "index " << I;
}

TEST(TypedHoles, EveryNearMissDiffersFromTheOriginal) {
  // Exhaustive sweep: seeds plus one mutant per registry stride, so the
  // contract is checked over classes a campaign actually produces.
  Rng R(7);
  auto Seeds = generateSeedCorpus(R, 10);
  ClassPath Env = makeEnv();
  for (const SeedClass &S : Seeds) {
    Env.add(S.Name, S.Data);
    for (const auto &[Name, Data] : S.Helpers)
      Env.add(Name, Data);
  }
  StaticAnalyzer Analyzer(Env, referenceJvmPolicy());
  std::vector<std::string> Known = Env.names();

  std::vector<std::pair<std::string, Bytes>> Inputs;
  for (const SeedClass &S : Seeds)
    Inputs.push_back({S.Name, S.Data});
  const auto &Registry = extendedMutatorRegistry();
  for (size_t I = 0; I < Registry.size(); I += 7) {
    MutationContext Ctx{R, Known};
    auto Out = mutateClass(Seeds[I % Seeds.size()].Data, I, Ctx);
    if (Out.Produced)
      Inputs.push_back({Out.ClassName, Out.Data});
  }

  size_t TotalHoles = 0;
  for (const auto &[Name, Data] : Inputs) {
    for (const TypedHole &H : Analyzer.typedHolesFor(Name, Data)) {
      ++TotalHoles;
      EXPECT_FALSE(H.Alternatives.empty())
          << Name << " " << H.Location.toString();
      EXPECT_LE(H.Alternatives.size(), 8u);
      for (const std::string &Alt : H.Alternatives)
        EXPECT_NE(Alt, H.Expected)
            << Name << " " << holeKindName(H.Kind) << " "
            << H.Location.toString();
    }
  }
  EXPECT_GT(TotalHoles, 50u) << "sweep too small to mean anything";
}

TEST(TypedHoles, MemoizedPathMatchesUnmemoized) {
  Bytes Base = makeSubclass("Base", "java/lang/Object");
  Bytes Child = makeSubclass("Child", "Base");
  Bytes Sib = makeSubclass("Sib", "Base");
  Bytes User = makeUserOf("User", "Child");
  ClassPath Env = makeEnv(
      {{"Base", Base}, {"Child", Child}, {"Sib", Sib}, {"User", User}});
  StaticAnalyzer Analyzer(Env, referenceJvmPolicy());

  const TypedHoleList &Memo = Analyzer.typedHoles("User");
  TypedHoleList Fresh = Analyzer.typedHolesFor("User", User);
  expectSameHoles(Memo, Fresh);
  // Second lookup serves the memo; contents identical.
  expectSameHoles(Analyzer.typedHoles("User"), Fresh);

  const TypedHole *H = siblingHoleFor(Memo, "Child");
  ASSERT_NE(H, nullptr) << "no sibling hole for Child";
  EXPECT_EQ(H->Alternatives, std::vector<std::string>{"Sib"});
}

TEST(TypedHoles, EnvironmentMutationInvalidatesSiblingMemo) {
  // The satellite regression: a memoized hole list must not survive an
  // addEnvironmentClass that reshapes the sibling sets it was computed
  // from. "User" references "Child" (super "Base"); redefining other
  // classes under "Base" changes Child's sibling alternatives.
  Bytes Base = makeSubclass("Base", "java/lang/Object");
  Bytes Child = makeSubclass("Child", "Base");
  Bytes Sib = makeSubclass("Sib", "Base");
  Bytes User = makeUserOf("User", "Child");
  ClassPath Env = makeEnv(
      {{"Base", Base}, {"Child", Child}, {"Sib", Sib}, {"User", User}});
  StaticAnalyzer Analyzer(Env, referenceJvmPolicy());

  // Warm the memo with the original hierarchy.
  {
    const TypedHole *H = siblingHoleFor(Analyzer.typedHoles("User"), "Child");
    ASSERT_NE(H, nullptr);
    EXPECT_EQ(H->Alternatives, std::vector<std::string>{"Sib"});
  }

  // A new class joins Base's children: the memoized list must pick up
  // the extra sibling.
  Analyzer.addEnvironmentClass("Sib2", makeSubclass("Sib2", "Base"));
  {
    const TypedHole *H = siblingHoleFor(Analyzer.typedHoles("User"), "Child");
    ASSERT_NE(H, nullptr);
    EXPECT_EQ(H->Alternatives, (std::vector<std::string>{"Sib", "Sib2"}));
  }

  // Mutating a sibling's superclass moves it out of Base's children:
  // the memoized list must drop it again.
  Analyzer.addEnvironmentClass("Sib", makeSubclass("Sib", "java/lang/Object"));
  {
    const TypedHole *H = siblingHoleFor(Analyzer.typedHoles("User"), "Child");
    ASSERT_NE(H, nullptr);
    EXPECT_EQ(H->Alternatives, std::vector<std::string>{"Sib2"});
  }

  // After every redefinition the memo matches a from-scratch analyzer.
  ClassPath Env2 = makeEnv({{"Base", Base},
                            {"Child", Child},
                            {"Sib", makeSubclass("Sib", "java/lang/Object")},
                            {"Sib2", makeSubclass("Sib2", "Base")},
                            {"User", User}});
  StaticAnalyzer Scratch(Env2, referenceJvmPolicy());
  expectSameHoles(Analyzer.typedHoles("User"), Scratch.typedHoles("User"));
}

TEST(TypedHoles, JsonlRenderingIsStable) {
  ClassPath Env = makeEnv();
  StaticAnalyzer Analyzer(Env, referenceJvmPolicy());
  Bytes Data = serialize(makeHelloClass("Probe"));
  TypedHoleList Holes = Analyzer.typedHolesFor("Probe", Data);
  ASSERT_FALSE(Holes.empty());

  std::string Jsonl = holesToJsonl("Probe", Holes);
  EXPECT_EQ(Jsonl, holesToJsonl("Probe", Holes));
  // One '\n'-terminated object per hole, each carrying the class name.
  size_t Lines = 0;
  for (char C : Jsonl)
    Lines += C == '\n';
  EXPECT_EQ(Lines, Holes.size());
  EXPECT_EQ(Jsonl.compare(0, 18, "{\"class\":\"Probe\","
                                 "\""),
            0)
      << Jsonl.substr(0, 40);
  for (const TypedHole &H : Holes)
    EXPECT_NE(Jsonl.find(holeToJson("Probe", H) + "\n"), std::string::npos);
}
