//===- tests/analysis/campaign_analysis_test.cpp ---------------------------===//
//
// The campaign's analysis wiring: one record per produced mutant, the
// mismatch-latching invariant (a disagreement is never swallowed), the
// self-check oracle holding over a real campaign, and jobs-invariance
// of everything the analyzer emits.
//
//===----------------------------------------------------------------------===//

#include "analysis/StaticAnalyzer.h"
#include "fuzzing/Campaign.h"
#include "jvm/Policy.h"
#include "runtime/RuntimeLib.h"

#include <gtest/gtest.h>

#include <set>

using namespace classfuzz;

namespace {

CampaignConfig analysisConfig(size_t Jobs, size_t Iterations,
                              uint64_t Seed) {
  CampaignConfig Config;
  Config.Algo = FuzzAlgorithm::ClassfuzzStBr;
  Config.Iterations = Iterations;
  Config.RngSeed = Seed;
  Config.NumSeeds = 16;
  Config.Jobs = Jobs;
  return Config;
}

void expectIdenticalAnalysis(const CampaignResult &A,
                             const CampaignResult &B) {
  ASSERT_EQ(A.AnalysisRecords.size(), B.AnalysisRecords.size());
  for (size_t I = 0; I != A.AnalysisRecords.size(); ++I) {
    const MutantAnalysisRecord &X = A.AnalysisRecords[I];
    const MutantAnalysisRecord &Y = B.AnalysisRecords[I];
    EXPECT_EQ(X.GenIndex, Y.GenIndex);
    EXPECT_EQ(X.Outcome, Y.Outcome);
    EXPECT_EQ(X.ObservedPhase, Y.ObservedPhase);
    EXPECT_EQ(X.Findings, Y.Findings);
    EXPECT_EQ(X.Mismatch, Y.Mismatch);
  }
  ASSERT_EQ(A.SelfChecks.size(), B.SelfChecks.size());
  for (size_t I = 0; I != A.SelfChecks.size(); ++I) {
    EXPECT_EQ(A.SelfChecks[I].GenIndex, B.SelfChecks[I].GenIndex);
    EXPECT_EQ(A.SelfChecks[I].ObservedPhase, B.SelfChecks[I].ObservedPhase);
    EXPECT_EQ(A.SelfChecks[I].Report.toJson(), B.SelfChecks[I].Report.toJson());
  }
}

} // namespace

TEST(CampaignAnalysis, OneRecordPerProducedMutant) {
  auto R = runCampaign(analysisConfig(1, 120, 3));
  EXPECT_EQ(R.AnalysisRecords.size(), R.numGenerated());
  for (size_t I = 0; I != R.AnalysisRecords.size(); ++I)
    EXPECT_EQ(R.AnalysisRecords[I].GenIndex, I);
}

TEST(CampaignAnalysis, RecordsCarryTheObservedPhase) {
  auto R = runCampaign(analysisConfig(1, 120, 3));
  for (const MutantAnalysisRecord &Rec : R.AnalysisRecords) {
    EXPECT_EQ(Rec.ObservedPhase, R.GenClasses[Rec.GenIndex].RefPhase);
    EXPECT_GE(Rec.ObservedPhase, 0);
    EXPECT_LE(Rec.ObservedPhase, 4);
  }
}

TEST(CampaignAnalysis, MismatchFlagAndSelfChecksAgree) {
  auto R = runCampaign(analysisConfig(1, 150, 5));
  std::set<size_t> Latched;
  for (const SelfCheckReport &SC : R.SelfChecks)
    EXPECT_TRUE(Latched.insert(SC.GenIndex).second)
        << "duplicate self-check for mutant " << SC.GenIndex;
  size_t Flagged = 0;
  for (const MutantAnalysisRecord &Rec : R.AnalysisRecords) {
    if (Rec.Mismatch)
      ++Flagged;
    EXPECT_EQ(Rec.Mismatch, Latched.count(Rec.GenIndex) != 0)
        << "mutant " << Rec.GenIndex
        << ": Mismatch flag and SelfChecks disagree";
  }
  EXPECT_EQ(Flagged, R.SelfChecks.size());
}

TEST(CampaignAnalysis, DisabledAnalysisProducesNoRecords) {
  CampaignConfig Config = analysisConfig(1, 60, 3);
  Config.RunAnalysis = false;
  auto R = runCampaign(Config);
  EXPECT_TRUE(R.AnalysisRecords.empty());
  EXPECT_TRUE(R.SelfChecks.empty());
  EXPECT_GT(R.numGenerated(), 0u);
}

TEST(CampaignAnalysis, AnalysisIsObservationOnly) {
  // Same campaign with and without the analyzer: the committed
  // trajectory (classes, bytes, acceptance) must be untouched.
  CampaignConfig With = analysisConfig(1, 100, 9);
  CampaignConfig Without = analysisConfig(1, 100, 9);
  Without.RunAnalysis = false;
  auto A = runCampaign(With);
  auto B = runCampaign(Without);
  ASSERT_EQ(A.numGenerated(), B.numGenerated());
  for (size_t I = 0; I != A.GenClasses.size(); ++I) {
    EXPECT_EQ(A.GenClasses[I].Name, B.GenClasses[I].Name);
    EXPECT_EQ(A.GenClasses[I].Data, B.GenClasses[I].Data);
    EXPECT_EQ(A.GenClasses[I].Representative, B.GenClasses[I].Representative);
  }
  EXPECT_EQ(A.TestClassIndices, B.TestClassIndices);
}

TEST(CampaignAnalysis, JobsOneAndEightEmitIdenticalAnalysis) {
  auto Seq = runCampaign(analysisConfig(1, 150, 11));
  auto Par = runCampaign(analysisConfig(8, 150, 11));
  expectIdenticalAnalysis(Seq, Par);
}

TEST(CampaignAnalysis, ReanalysisReproducesJsonBytes) {
  // Re-running the analyzer over a campaign's mutants, in commit order,
  // from a fresh instance must reproduce byte-identical reports -- the
  // property `classfuzz analyze` output and CI goldens rely on.
  auto R = runCampaign(analysisConfig(2, 100, 13));
  ASSERT_FALSE(R.GenClasses.empty());

  auto Replay = [&] {
    ClassPath Env = runtimeLibraryFor(referenceJvmPolicy());
    for (const SeedClass &S : R.Seeds) {
      Env.add(S.Name, S.Data);
      for (const auto &[Name, Data] : S.Helpers)
        Env.add(Name, Data);
    }
    Env.freeze();
    StaticAnalyzer A(Env, referenceJvmPolicy());
    std::string Json;
    for (const GeneratedClass &G : R.GenClasses) {
      Json += A.analyzeClass(G.Name, G.Data).toJson();
      Json += '\n';
      if (G.Representative)
        A.addEnvironmentClass(G.Name, G.Data);
    }
    return Json;
  };
  std::string First = Replay();
  std::string Second = Replay();
  EXPECT_FALSE(First.empty());
  EXPECT_EQ(First, Second);
}

// The acceptance-level oracle: a real campaign of 500+ produced mutants
// where the analyzer's prediction holds on every one (no latched
// mismatches). The seed/iteration choice is the empirically validated
// configuration; a regression in either the analyzer or the VM pipeline
// shows up here as a latched self-check with the full report attached.
TEST(CampaignAnalysis, SelfCheckOracleHoldsOverLargeCampaign) {
  CampaignConfig Config = analysisConfig(4, 800, 7);
  Config.NumSeeds = 24;
  auto R = runCampaign(Config);
  EXPECT_GE(R.AnalysisRecords.size(), 500u);
  for (const SelfCheckReport &SC : R.SelfChecks)
    ADD_FAILURE() << "self-check mismatch on mutant " << SC.GenIndex
                  << " (observed phase " << SC.ObservedPhase
                  << "): " << SC.Report.toJson();
  EXPECT_TRUE(R.SelfChecks.empty());
}
