//===- tests/analysis/cpgraph_test.cpp -------------------------------------===//
//
// The constant-pool reference graph: typed edges, bytecode roots,
// reachability, cycle detection, and the diagnostics the checks emit
// for dangling indices, type-confused targets, and dead entries.
//
//===----------------------------------------------------------------------===//

#include "../TestHelpers.h"
#include "analysis/CpGraph.h"
#include "classfile/ClassReader.h"

#include <gtest/gtest.h>

using namespace classfuzz;
using namespace classfuzz::testhelpers;

namespace {

bool anyDiagnostic(const std::vector<Diagnostic> &Ds, DiagSeverity Severity,
                   const std::string &Needle) {
  for (const Diagnostic &D : Ds)
    if (D.Severity == Severity &&
        D.Message.find(Needle) != std::string::npos)
      return true;
  return false;
}

} // namespace

TEST(CpGraph, CleanClassHasNoErrors) {
  ClassFile CF = makeHelloClass("Clean");
  CpGraph G = CpGraph::build(CF);
  for (const Diagnostic &D : G.check())
    EXPECT_NE(D.Severity, DiagSeverity::Error) << D.Message;
}

TEST(CpGraph, EdgesCarryExpectedTags) {
  ClassFile CF = makeHelloClass("Edges");
  CpGraph G = CpGraph::build(CF);
  ASSERT_FALSE(G.edges().empty());
  bool SawClassName = false;
  for (const CpEdge &E : G.edges()) {
    if (CF.CP.at(E.From).Tag == CpTag::Class) {
      EXPECT_EQ(E.ExpectedTag, CpTag::Utf8);
      SawClassName = true;
    }
    EXPECT_GT(E.From, 0u);
  }
  EXPECT_TRUE(SawClassName);
}

TEST(CpGraph, DanglingIndexIsAnError) {
  ClassFile CF = makeHelloClass("Dangling");
  // Point a Class entry's name slot far past the end of the pool.
  uint16_t Cls = CF.CP.classRef("Victim");
  CF.CP.at(Cls).Ref1 = 999;
  CpGraph G = CpGraph::build(CF);
  EXPECT_TRUE(anyDiagnostic(G.check(), DiagSeverity::Error, "dangling"));
}

TEST(CpGraph, TypeConfusedTargetIsAnError) {
  ClassFile CF = makeHelloClass("Confused");
  // A Methodref whose name_and_type slot holds an Integer.
  uint16_t M = CF.CP.methodRef("Confused", "m", "()V");
  CF.CP.at(M).Ref2 = CF.CP.integer(42);
  CpGraph G = CpGraph::build(CF);
  EXPECT_TRUE(anyDiagnostic(G.check(), DiagSeverity::Error, "Integer"));
}

TEST(CpGraph, ReferenceCycleIsDetected) {
  ClassFile CF = makeHelloClass("Cycle");
  // Two Class entries pointing at each other: never valid, since a
  // Class's name slot must be Utf8 -- but the cycle detector must still
  // terminate and flag both.
  uint16_t A = CF.CP.classRef("A");
  uint16_t B = CF.CP.classRef("B");
  CF.CP.at(A).Ref1 = B;
  CF.CP.at(B).Ref1 = A;
  CpGraph G = CpGraph::build(CF);
  EXPECT_TRUE(G.isOnCycle(A));
  EXPECT_TRUE(G.isOnCycle(B));
  EXPECT_TRUE(anyDiagnostic(G.check(), DiagSeverity::Error, "cycle"));
}

TEST(CpGraph, SelfLoopIsACycle) {
  ClassFile CF = makeHelloClass("SelfLoop");
  uint16_t A = CF.CP.classRef("A");
  CF.CP.at(A).Ref1 = A;
  CpGraph G = CpGraph::build(CF);
  EXPECT_TRUE(G.isOnCycle(A));
}

TEST(CpGraph, BytecodeOperandsAreRoots) {
  ClassFile CF = makeHelloClass("Roots");
  Bytes Data = serialize(CF);
  auto Parsed = parseClassFile(Data);
  ASSERT_TRUE(Parsed.ok());
  CpGraph G = CpGraph::build(*Parsed);
  // makeHelloClass's main uses getstatic/ldc/invokevirtual, so the
  // bytecode must contribute roots, and everything they reference is
  // reachable.
  ASSERT_FALSE(G.bytecodeRoots().empty());
  for (uint16_t Root : G.bytecodeRoots())
    EXPECT_TRUE(G.isReachable(Root)) << "root #" << Root;
}

TEST(CpGraph, UnreferencedEntryIsReportedAsInfo) {
  ClassFile CF = makeHelloClass("Dead");
  CF.CP.integer(123456); // Never referenced from bytecode.
  Bytes Data = serialize(CF);
  auto Parsed = parseClassFile(Data);
  ASSERT_TRUE(Parsed.ok());
  CpGraph G = CpGraph::build(*Parsed);
  EXPECT_TRUE(anyDiagnostic(G.check(), DiagSeverity::Info,
                            "not referenced from bytecode"));
}

TEST(CpGraph, CheckOutputIsDeterministic) {
  ClassFile CF = makeHelloClass("Det");
  uint16_t Cls = CF.CP.classRef("X");
  CF.CP.at(Cls).Ref1 = 500;
  CpGraph G = CpGraph::build(CF);
  std::string A, B;
  for (const Diagnostic &D : G.check())
    A += D.toJson() + "\n";
  for (const Diagnostic &D : CpGraph::build(CF).check())
    B += D.toJson() + "\n";
  EXPECT_EQ(A, B);
}
