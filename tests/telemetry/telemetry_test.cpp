//===- tests/telemetry/telemetry_test.cpp ----------------------------------===//
//
// The observability layer (DESIGN.md §8): metric correctness under
// concurrent writers, snapshot-JSON schema stability, the structured
// event stream, and -- the load-bearing property -- that a campaign's
// committed trajectory is bit-identical with telemetry on or off.
//
//===----------------------------------------------------------------------===//

#include "telemetry/Telemetry.h"

#include "fuzzing/Campaign.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <future>
#include <vector>

using namespace classfuzz;
namespace tel = classfuzz::telemetry;

namespace {

/// Restores the global enabled flag and event sink on scope exit, so
/// tests cannot leak telemetry state into each other.
struct TelemetryGuard {
  TelemetryGuard() { tel::setEnabled(false); }
  ~TelemetryGuard() {
    tel::setEnabled(false);
    tel::setEventSink(nullptr);
  }
};

/// Captures emitted events in memory.
class CapturingSink : public tel::EventSink {
public:
  void write(const std::string &JsonObject) override {
    Events.push_back(JsonObject);
  }
  std::vector<std::string> Events;
};

} // namespace

// ---- counters / gauges / histograms ---------------------------------------

TEST(Telemetry, CounterCountsExactlyUnderConcurrentWriters) {
  tel::Counter C;
  constexpr size_t Threads = 8, IncsPerThread = 20000;
  {
    ThreadPool Pool(Threads);
    std::vector<std::future<void>> Done;
    for (size_t T = 0; T != Threads; ++T)
      Done.push_back(Pool.submit([&C] {
        for (size_t I = 0; I != IncsPerThread; ++I)
          C.inc();
      }));
    for (auto &F : Done)
      F.get();
  }
  EXPECT_EQ(C.value(), Threads * IncsPerThread);
  C.reset();
  EXPECT_EQ(C.value(), 0u);
}

TEST(Telemetry, GaugeRecordMaxKeepsHighWaterUnderConcurrentWriters) {
  tel::Gauge G;
  constexpr size_t Threads = 8;
  {
    ThreadPool Pool(Threads);
    std::vector<std::future<void>> Done;
    for (size_t T = 0; T != Threads; ++T)
      Done.push_back(Pool.submit([&G, T] {
        for (int64_t V = 0; V != 5000; ++V)
          G.recordMax(static_cast<int64_t>(T) * 5000 + V);
      }));
    for (auto &F : Done)
      F.get();
  }
  EXPECT_EQ(G.value(), 8 * 5000 - 1);
  G.set(7);
  EXPECT_EQ(G.value(), 7);
  G.recordMax(3); // Lower than current: no effect.
  EXPECT_EQ(G.value(), 7);
}

TEST(Telemetry, HistogramAggregatesAreExactUnderConcurrentWriters) {
  tel::Histogram H;
  constexpr size_t Threads = 6, SamplesPerThread = 10000;
  {
    ThreadPool Pool(Threads);
    std::vector<std::future<void>> Done;
    for (size_t T = 0; T != Threads; ++T)
      Done.push_back(Pool.submit([&H] {
        for (uint64_t I = 1; I <= SamplesPerThread; ++I)
          H.record(I);
      }));
    for (auto &F : Done)
      F.get();
  }
  EXPECT_EQ(H.count(), Threads * SamplesPerThread);
  // Sum of 1..N per thread, times the thread count.
  uint64_t PerThread = SamplesPerThread * (SamplesPerThread + 1) / 2;
  EXPECT_EQ(H.sum(), Threads * PerThread);
  EXPECT_EQ(H.min(), 1u);
  EXPECT_EQ(H.max(), SamplesPerThread);
  EXPECT_DOUBLE_EQ(H.mean(), static_cast<double>(PerThread) /
                                 SamplesPerThread);
}

TEST(Telemetry, HistogramBucketsAreLogTwo) {
  tel::Histogram H;
  H.record(0);
  H.record(1); // Bucket 0: zeros and ones.
  H.record(2);
  H.record(3); // Bucket 2: [2, 4).
  H.record(1024); // Bucket 11: [1024, 2048).
  EXPECT_EQ(H.bucketCount(0), 2u);
  EXPECT_EQ(H.bucketCount(2), 2u);
  EXPECT_EQ(H.bucketCount(11), 1u);
  // The p50 sample (the bucket-2 "3") reports its bucket upper bound.
  EXPECT_EQ(H.percentileUpperBound(0.5), 4u);
  EXPECT_EQ(H.percentileUpperBound(1.0), 2048u);
  H.reset();
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.percentileUpperBound(0.5), 0u);
}

TEST(Telemetry, CounterGridCountsAndIgnoresOutOfRange) {
  tel::CounterGrid Grid(
      2, 3, [](size_t R) { return "r" + std::to_string(R); },
      [](size_t C) { return "c" + std::to_string(C); });
  Grid.inc(0, 0);
  Grid.inc(1, 2, 5);
  Grid.inc(2, 0);  // Row out of range: dropped, not UB.
  Grid.inc(0, 3);  // Column out of range: dropped.
  EXPECT_EQ(Grid.value(0, 0), 1u);
  EXPECT_EQ(Grid.value(1, 2), 5u);
  EXPECT_EQ(Grid.value(2, 0), 0u);
  EXPECT_EQ(Grid.rowLabel(1), "r1");
  EXPECT_EQ(Grid.colLabel(2), "c2");
  Grid.reset();
  EXPECT_EQ(Grid.value(1, 2), 0u);
}

// ---- registry -------------------------------------------------------------

TEST(Telemetry, RegistryReturnsStableReferences) {
  tel::MetricRegistry Reg;
  tel::Counter &A = Reg.counter("x");
  tel::Counter &B = Reg.counter("x");
  EXPECT_EQ(&A, &B);
  A.inc(3);
  Reg.reset(); // Zeroes values, never invalidates references.
  EXPECT_EQ(B.value(), 0u);
  B.inc();
  EXPECT_EQ(Reg.counter("x").value(), 1u);
}

TEST(Telemetry, RegistryRegistrationIsThreadSafe) {
  tel::MetricRegistry Reg;
  constexpr size_t Threads = 8;
  std::vector<tel::Counter *> Seen(Threads);
  {
    ThreadPool Pool(Threads);
    std::vector<std::future<void>> Done;
    for (size_t T = 0; T != Threads; ++T)
      Done.push_back(Pool.submit([&Reg, &Seen, T] {
        tel::Counter &C = Reg.counter("contended");
        C.inc();
        Seen[T] = &C;
      }));
    for (auto &F : Done)
      F.get();
  }
  for (size_t T = 1; T != Threads; ++T)
    EXPECT_EQ(Seen[T], Seen[0]);
  EXPECT_EQ(Reg.counter("contended").value(), Threads);
}

TEST(Telemetry, SnapshotJsonSchemaIsStable) {
  // A private registry gives an exactly-predictable snapshot: keys are
  // sorted, histograms carry the fixed aggregate schema, grids emit
  // only non-zero cells as "row.col". Tools parsing --stats-json
  // output rely on this shape.
  tel::MetricRegistry Reg;
  Reg.counter("b.count").inc(2);
  Reg.counter("a.count").inc(1);
  Reg.gauge("heap").set(42);
  tel::Histogram &H = Reg.histogram("lat");
  H.record(1);
  H.record(3);
  tel::CounterGrid &Grid = Reg.grid(
      "aborts", 2, 2, [](size_t R) { return R == 0 ? "load" : "link"; },
      [](size_t C) { return C == 0 ? "ok" : "err"; });
  Grid.inc(1, 1, 7);

  EXPECT_EQ(Reg.snapshotJson(),
            "{\"counters\":{\"a.count\":1,\"b.count\":2},"
            "\"gauges\":{\"heap\":42},"
            "\"histograms\":{\"lat\":{\"count\":2,\"sum\":4,\"min\":1,"
            "\"max\":3,\"mean\":2,\"p50\":1,\"p90\":3,\"p99\":3}},"
            "\"grids\":{\"aborts\":{\"link.err\":7}}}");
}

TEST(Telemetry, QuantileInterpolatesWithinBucketsAndClampsToExtremes) {
  tel::Histogram H;
  EXPECT_EQ(H.quantile(0.5), 0u); // Empty: no samples to rank.
  // 100 samples spread over [1000, 1099]: every sample lands in the
  // [1024, 2048) bucket except the first 24 in [512, 1024).
  for (uint64_t V = 1000; V != 1100; ++V)
    H.record(V);
  // Quantiles are monotone, bracketed by the true extremes, and (being
  // interpolated within a log2 bucket) within one bucket width of the
  // exact order statistic.
  uint64_t P50 = H.quantile(0.50);
  uint64_t P90 = H.quantile(0.90);
  uint64_t P99 = H.quantile(0.99);
  EXPECT_LE(P50, P90);
  EXPECT_LE(P90, P99);
  EXPECT_GE(P50, H.min());
  EXPECT_LE(P99, H.max());
  EXPECT_EQ(H.quantile(0.0), H.min());
  EXPECT_EQ(H.quantile(1.0), H.max());
  // All ranks >= 25 fall in [1024, 2048); interpolation stays there.
  EXPECT_GE(P90, 1024u);
}

TEST(Telemetry, QuantileIsExactWhenEverySampleIsEqual) {
  tel::Histogram H;
  for (int I = 0; I != 1000; ++I)
    H.record(777);
  // Interpolation may wander inside the [512, 1024) bucket, but the
  // min/max clamp pins every quantile to the only value present.
  EXPECT_EQ(H.quantile(0.50), 777u);
  EXPECT_EQ(H.quantile(0.90), 777u);
  EXPECT_EQ(H.quantile(0.99), 777u);
}

TEST(Telemetry, QuantileHandlesZeroAndOneBucket) {
  tel::Histogram H;
  H.record(0);
  H.record(0);
  H.record(1);
  H.record(1);
  EXPECT_LE(H.quantile(0.5), 1u); // Bucket 0 spans [0, 1].
  EXPECT_EQ(H.quantile(1.0), 1u);
}

TEST(Telemetry, EmptySnapshotIsStillValidJson) {
  tel::MetricRegistry Reg;
  EXPECT_EQ(Reg.snapshotJson(),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{},"
            "\"grids\":{}}");
}

// ---- events ---------------------------------------------------------------

TEST(Telemetry, EventBuilderEmitsOneJsonObjectPerEvent) {
  TelemetryGuard Guard;
  auto Sink = std::make_unique<CapturingSink>();
  CapturingSink *Raw = Sink.get();
  tel::setEventSink(std::move(Sink));

  tel::EventBuilder("iter")
      .field("mutator", std::string("field.add-final"))
      .field("n", static_cast<uint64_t>(7))
      .field("delta", static_cast<int64_t>(-2))
      .field("rate", 0.5)
      .field("ok", true)
      .emit();

  ASSERT_EQ(Raw->Events.size(), 1u);
  EXPECT_EQ(Raw->Events[0],
            "{\"type\":\"iter\",\"mutator\":\"field.add-final\","
            "\"n\":7,\"delta\":-2,\"rate\":0.5,\"ok\":true}");
}

TEST(Telemetry, EventBuilderWithoutSinkIsANoOp) {
  TelemetryGuard Guard;
  tel::setEventSink(nullptr);
  tel::EventBuilder("orphan").field("k", 1).emit(); // Must not crash.
  EXPECT_EQ(tel::eventSink(), nullptr);
}

TEST(Telemetry, FileEventSinkLatchesWriteFailureAndCountsDrops) {
  // A 16-byte fmemopen buffer (unbuffered, so stdio cannot defer the
  // failure) rejects the second event: the sink must latch failed(),
  // report once, and count every subsequent event as dropped instead of
  // spamming errors or crashing.
  char Buf[16];
  std::FILE *F = fmemopen(Buf, sizeof(Buf), "w");
  ASSERT_NE(F, nullptr);
  setvbuf(F, nullptr, _IONBF, 0);
  tel::FileEventSink Sink(F, /*Close=*/true, "fmemopen test sink");
  EXPECT_FALSE(Sink.failed());
  Sink.write("{\"a\":1}"); // 7 chars + newline: fits.
  EXPECT_FALSE(Sink.failed());
  Sink.write("{\"second\":2}"); // Would overflow: fwrite fails.
  EXPECT_TRUE(Sink.failed());
  EXPECT_EQ(Sink.droppedEvents(), 1u);
  Sink.write("{\"third\":3}"); // Early-out on the latch.
  EXPECT_EQ(Sink.droppedEvents(), 2u);
}

TEST(Telemetry, FileEventSinkSurvivesSuccessfulStream) {
  char Buf[4096];
  std::FILE *F = fmemopen(Buf, sizeof(Buf), "w");
  ASSERT_NE(F, nullptr);
  {
    tel::FileEventSink Sink(F, /*Close=*/true, "roomy sink");
    for (int I = 0; I != 10; ++I)
      Sink.write("{\"i\":" + std::to_string(I) + "}");
    EXPECT_FALSE(Sink.failed());
    EXPECT_EQ(Sink.droppedEvents(), 0u);
  }
}

TEST(Telemetry, JsonEscapeHandlesControlAndQuoteCharacters) {
  EXPECT_EQ(tel::jsonEscape("plain"), "plain");
  EXPECT_EQ(tel::jsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(tel::jsonEscape("line\nbreak\t"), "line\\nbreak\\t");
  EXPECT_EQ(tel::jsonEscape(std::string(1, '\x01')), "\\u0001");
}

// ---- phase timers ---------------------------------------------------------

TEST(Telemetry, PhaseTimerRecordsWhenEnabled) {
  TelemetryGuard Guard;
  tel::setEnabled(true);
  tel::Histogram H;
  {
    tel::PhaseTimer T(H);
  }
  EXPECT_EQ(H.count(), 1u);
}

TEST(Telemetry, PhaseTimerIsInertWhenDisabled) {
  TelemetryGuard Guard;
  tel::setEnabled(false);
  tel::Histogram H;
  {
    tel::PhaseTimer T(H);
  }
  EXPECT_EQ(H.count(), 0u);
}

TEST(Telemetry, PhaseTimerStopDisarms) {
  TelemetryGuard Guard;
  tel::setEnabled(true);
  tel::Histogram H;
  tel::PhaseTimer T(H);
  T.stop();
  T.stop(); // Second stop (and the destructor) must not re-record.
  EXPECT_EQ(H.count(), 1u);
}

// ---- campaign determinism -------------------------------------------------

namespace {

CampaignConfig determinismConfig(size_t Jobs) {
  CampaignConfig Config;
  Config.Algo = FuzzAlgorithm::ClassfuzzStBr;
  Config.Iterations = 120;
  Config.RngSeed = 23;
  Config.NumSeeds = 11;
  Config.Jobs = Jobs;
  return Config;
}

void expectIdenticalResults(const CampaignResult &A,
                            const CampaignResult &B) {
  ASSERT_EQ(A.Iterations, B.Iterations);
  ASSERT_EQ(A.numGenerated(), B.numGenerated());
  for (size_t I = 0; I != A.GenClasses.size(); ++I) {
    EXPECT_EQ(A.GenClasses[I].Name, B.GenClasses[I].Name);
    EXPECT_EQ(A.GenClasses[I].Data, B.GenClasses[I].Data);
    EXPECT_EQ(A.GenClasses[I].Representative,
              B.GenClasses[I].Representative);
  }
  EXPECT_EQ(A.TestClassIndices, B.TestClassIndices);
  EXPECT_EQ(A.MutatorSelected, B.MutatorSelected);
  EXPECT_EQ(A.MutatorSucceeded, B.MutatorSucceeded);
  EXPECT_EQ(A.MutatorInapplicable, B.MutatorInapplicable);
  EXPECT_EQ(A.MutatorNoChange, B.MutatorNoChange);
}

} // namespace

TEST(TelemetryDeterminism, CampaignIsBitIdenticalWithTelemetryOnOrOff) {
  TelemetryGuard Guard;
  tel::setEnabled(false);
  auto Off = runCampaign(determinismConfig(1));

  tel::setEnabled(true);
  tel::setEventSink(std::make_unique<CapturingSink>());
  auto On = runCampaign(determinismConfig(1));

  expectIdenticalResults(Off, On);
}

TEST(TelemetryDeterminism, ParallelCampaignUnaffectedByTelemetry) {
  TelemetryGuard Guard;
  tel::setEnabled(false);
  auto Off = runCampaign(determinismConfig(4));

  tel::setEnabled(true);
  auto Sink = std::make_unique<CapturingSink>();
  CapturingSink *Raw = Sink.get();
  tel::setEventSink(std::move(Sink));
  auto On = runCampaign(determinismConfig(4));
  size_t EventsWithTelemetry = Raw->Events.size();

  expectIdenticalResults(Off, On);
  // One event per committed iteration plus the campaign.end summary.
  EXPECT_EQ(EventsWithTelemetry, On.Iterations + 1);
}

TEST(TelemetryDeterminism, EventStreamIsIdenticalAcrossJobCounts) {
  TelemetryGuard Guard;
  tel::setEnabled(true);

  auto RunWith = [](size_t Jobs) {
    auto Sink = std::make_unique<CapturingSink>();
    CapturingSink *Raw = Sink.get();
    tel::setEventSink(std::move(Sink));
    runCampaign(determinismConfig(Jobs));
    std::vector<std::string> Events = Raw->Events;
    tel::setEventSink(nullptr);
    return Events;
  };

  EXPECT_EQ(RunWith(1), RunWith(3));
}

TEST(TelemetryDeterminism, MutationAccountingAddsUp) {
  TelemetryGuard Guard;
  tel::setEnabled(false);
  auto R = runCampaign(determinismConfig(1));
  size_t Selected = 0, Succeeded = 0, Inapplicable = 0, NoChange = 0;
  for (size_t I = 0; I != R.MutatorSelected.size(); ++I) {
    Selected += R.MutatorSelected[I];
    Succeeded += R.MutatorSucceeded[I];
    Inapplicable += R.MutatorInapplicable[I];
    NoChange += R.MutatorNoChange[I];
    EXPECT_LE(R.MutatorInapplicable[I] + R.MutatorNoChange[I],
              R.MutatorSelected[I]);
  }
  EXPECT_EQ(Selected, R.Iterations);
  EXPECT_EQ(Succeeded, R.numTests());
  // Inapplicable draws cannot produce a mutant.
  EXPECT_LE(R.numGenerated(), Selected - Inapplicable);
  EXPECT_GT(Inapplicable, 0u) << "config too easy to exercise the path";
}

// ---- histogram quantile edges ---------------------------------------------

TEST(Telemetry, QuantileOfAnEmptyHistogramIsZero) {
  tel::Histogram H;
  EXPECT_EQ(H.quantile(0.0), 0u);
  EXPECT_EQ(H.quantile(0.5), 0u);
  EXPECT_EQ(H.quantile(1.0), 0u);
  EXPECT_EQ(H.percentileUpperBound(0.99), 0u);
}

TEST(Telemetry, QuantileOfASingleSampleIsExactForEveryQ) {
  tel::Histogram H;
  H.record(100);
  EXPECT_EQ(H.quantile(0.0), 100u);
  EXPECT_EQ(H.quantile(0.5), 100u);
  EXPECT_EQ(H.quantile(1.0), 100u);
  // Out-of-range Q clamps instead of misbehaving.
  EXPECT_EQ(H.quantile(-3.0), 100u);
  EXPECT_EQ(H.quantile(7.0), 100u);
}

TEST(Telemetry, QuantileOfASingleBucketClampsIntoTheSampleRange) {
  // 65 and 127 share the [64,128) log2 bucket: interpolation is
  // bucket-resolution but can never leave [min, max].
  tel::Histogram H;
  H.record(65);
  H.record(127);
  EXPECT_EQ(H.quantile(1.0), 127u) << "Q=1 is the exact maximum";
  uint64_t Q0 = H.quantile(0.0);
  EXPECT_GE(Q0, 65u);
  EXPECT_LE(Q0, 127u);
  // Identical samples collapse the range: exact for every Q.
  tel::Histogram I;
  for (int N = 0; N != 5; ++N)
    I.record(100);
  EXPECT_EQ(I.quantile(0.0), 100u);
  EXPECT_EQ(I.quantile(0.25), 100u);
  EXPECT_EQ(I.quantile(1.0), 100u);
}

TEST(Telemetry, QuantileOfZerosStaysZero) {
  tel::Histogram H;
  for (int N = 0; N != 3; ++N)
    H.record(0);
  EXPECT_EQ(H.quantile(0.0), 0u);
  EXPECT_EQ(H.quantile(1.0), 0u);
}

// ---- comma-separated snapshot prefixes ------------------------------------

TEST(Telemetry, SnapshotJsonAcceptsACommaSeparatedPrefixList) {
  tel::metrics().counter("sfa.x").inc(1);
  tel::metrics().counter("sfb.y").inc(2);
  tel::metrics().gauge("sfc.z").set(3);

  std::string Two = tel::metrics().snapshotJson("sfa.,sfc.");
  EXPECT_NE(Two.find("\"sfa.x\":1"), std::string::npos);
  EXPECT_EQ(Two.find("sfb.y"), std::string::npos);
  EXPECT_NE(Two.find("\"sfc.z\":3"), std::string::npos);
  // A single prefix still behaves as before.
  std::string One = tel::metrics().snapshotJson("sfb.");
  EXPECT_EQ(One.find("sfa.x"), std::string::npos);
  EXPECT_NE(One.find("\"sfb.y\":2"), std::string::npos);
  // Stray commas and empty segments are ignored, not prefix-matched.
  std::string Stray = tel::metrics().snapshotJson(",sfa.,");
  EXPECT_NE(Stray.find("sfa.x"), std::string::npos);
  EXPECT_EQ(Stray.find("sfb.y"), std::string::npos);
}

TEST(Telemetry, ScalarValuesFilterByIncludeAndExcludePrefixes) {
  tel::metrics().counter("sv.keep.a").inc(4);
  tel::metrics().gauge("sv.keep.b").set(5);
  tel::metrics().counter("sv.drop.c").inc(6);
  tel::metrics().histogram("sv.keep.h").record(9); // Never sampled.

  auto Vals = tel::metrics().scalarValues({"sv."}, {"sv.drop."});
  EXPECT_EQ(Vals.count("sv.keep.a"), 1u);
  EXPECT_EQ(Vals.at("sv.keep.a"), 4);
  EXPECT_EQ(Vals.at("sv.keep.b"), 5);
  EXPECT_EQ(Vals.count("sv.drop.c"), 0u);
  EXPECT_EQ(Vals.count("sv.keep.h"), 0u)
      << "histograms are out of scalarValues' scope";
}

// ---- sink failure accounting ----------------------------------------------

TEST(Telemetry, SinkWriteFailuresSurfaceInMetrics) {
  TelemetryGuard Guard;
  tel::setEnabled(true);
  tel::metrics().counter("telemetry.sink_dropped_events").reset();
  tel::metrics().gauge("telemetry.sink_failed").set(0);

  // A read-only stream makes every fwrite fail deterministically.
  std::string Path = testing::TempDir() + "/cf_sink_failure_test";
  {
    std::FILE *Create = std::fopen(Path.c_str(), "w");
    ASSERT_NE(Create, nullptr);
    std::fclose(Create);
  }
  std::FILE *ReadOnly = std::fopen(Path.c_str(), "r");
  ASSERT_NE(ReadOnly, nullptr);
  {
    tel::FileEventSink Sink(ReadOnly, /*Close=*/true, "test sink");
    Sink.write("{\"ev\":1}"); // Fails and latches.
    Sink.write("{\"ev\":2}"); // Dropped by the latch.
  }
  EXPECT_EQ(tel::metrics().gauge("telemetry.sink_failed").value(), 1);
  EXPECT_EQ(tel::metrics().counter("telemetry.sink_dropped_events").value(),
            2u);
  // Both appear in the --stats-json snapshot under telemetry.*.
  std::string Snap = tel::metrics().snapshotJson("telemetry.");
  EXPECT_NE(Snap.find("\"telemetry.sink_dropped_events\":2"),
            std::string::npos);
  EXPECT_NE(Snap.find("\"telemetry.sink_failed\":1"), std::string::npos);
  std::remove(Path.c_str());
}
