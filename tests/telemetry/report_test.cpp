//===- tests/telemetry/report_test.cpp -------------------------------------===//
//
// The `classfuzz report` readers and renderers: delta-encoded
// time-series re-inflation (carry-forward + zero backfill), frontier
// census decoding, the self-contained HTML report (charts, rare-branch
// table, mutator x phase heat grid, no external references), and the
// terminal progress dashboard.
//
//===----------------------------------------------------------------------===//

#include "telemetry/CampaignReport.h"

#include "support/Json.h"

#include <gtest/gtest.h>

using namespace classfuzz;
namespace tel = classfuzz::telemetry;

namespace {

const char *SampleTs =
    "{\"type\":\"ts\",\"iter\":10,\"m\":{\"campaign.accepted\":4}}\n"
    "{\"type\":\"ts\",\"iter\":20,\"m\":{\"campaign.accepted\":6,"
    "\"frontier.stmts\":50}}\n"
    "{\"type\":\"ts\",\"iter\":30,\"final\":true,\"m\":{}}\n";

} // namespace

TEST(ReportParse, ReInflatesDeltaEncodedSeries) {
  auto Ts = tel::parseTimeSeries(SampleTs);
  ASSERT_TRUE(Ts);
  ASSERT_EQ(Ts->Iters.size(), 3u);
  EXPECT_EQ(Ts->Iters[2], 30u);
  EXPECT_TRUE(Ts->SawFinal);
  // Carry-forward: accepted holds 6 on the empty final row.
  ASSERT_EQ(Ts->Series.at("campaign.accepted").size(), 3u);
  EXPECT_EQ(Ts->Series.at("campaign.accepted")[1], 6);
  EXPECT_EQ(Ts->Series.at("campaign.accepted")[2], 6);
  // Zero backfill: stmts first appears at sample 2, so sample 1 reads 0.
  EXPECT_EQ(Ts->Series.at("frontier.stmts")[0], 0);
  EXPECT_EQ(Ts->Series.at("frontier.stmts")[1], 50);
  EXPECT_EQ(Ts->finalValue("campaign.accepted"), 6);
  EXPECT_EQ(Ts->finalValue("absent"), 0);
}

TEST(ReportParse, SkipsUnknownLineTypesAndBlankLines) {
  auto Ts = tel::parseTimeSeries(
      "{\"type\":\"comment\",\"x\":1}\n\n"
      "{\"type\":\"ts\",\"iter\":5,\"m\":{\"a\":1}}\n");
  ASSERT_TRUE(Ts);
  EXPECT_EQ(Ts->Iters.size(), 1u);
  EXPECT_FALSE(Ts->SawFinal);
}

TEST(ReportParse, RejectsMalformedJsonWithALineDiagnostic) {
  auto Ts = tel::parseTimeSeries(
      "{\"type\":\"ts\",\"iter\":5,\"m\":{}}\nnot json\n");
  EXPECT_FALSE(Ts);
}

TEST(ReportParse, DecodesTheFrontierCensus) {
  auto C = tel::parseFrontierCensus(
      "{\"type\":\"frontier_summary\",\"commits\":9,\"stmts\":2,"
      "\"branches\":1,\"rare_branches\":1,\"rare_stmts\":0,"
      "\"rare_threshold\":4}\n"
      "{\"type\":\"branch\",\"site\":7,\"taken\":true,\"hits\":2,"
      "\"first_iter\":3,\"seed\":\"S\",\"mutator\":\"m\",\"phase\":4,"
      "\"rare\":true}\n"
      "{\"type\":\"stmt\",\"id\":11,\"hits\":9,\"first_iter\":0,"
      "\"seed\":\"S\",\"mutator\":\"\",\"phase\":0,\"rare\":false}\n");
  ASSERT_TRUE(C);
  EXPECT_EQ(C->Commits, 9u);
  EXPECT_EQ(C->RareThreshold, 4u);
  ASSERT_EQ(C->Rows.size(), 2u);
  EXPECT_TRUE(C->Rows[0].IsBranch);
  EXPECT_EQ(C->Rows[0].Site, 7u);
  EXPECT_TRUE(C->Rows[0].Taken);
  EXPECT_TRUE(C->Rows[0].Rare);
  EXPECT_EQ(C->Rows[0].Phase, 4);
  EXPECT_FALSE(C->Rows[1].IsBranch);
  EXPECT_EQ(C->Rows[1].Site, 11u);
  EXPECT_EQ(C->Rows[1].Hits, 9u);
}

TEST(ReportHtml, RendersChartsTablesAndHeatGridSelfContained) {
  tel::ReportInputs Inputs;
  auto Ts = tel::parseTimeSeries(SampleTs);
  ASSERT_TRUE(Ts);
  Inputs.Ts = Ts.take();
  auto Stats = json::parse(
      R"({"grids":{"frontier.mutator_phase":{"jir_swap.phase0":2,)"
      R"("jir_swap.phase4":7,"cp_retag.phase1":1}}})");
  ASSERT_TRUE(Stats);
  Inputs.Stats = Stats.take();
  auto Census = tel::parseFrontierCensus(
      "{\"type\":\"frontier_summary\",\"commits\":9,\"stmts\":1,"
      "\"branches\":1,\"rare_branches\":1,\"rare_stmts\":0,"
      "\"rare_threshold\":4}\n"
      "{\"type\":\"branch\",\"site\":7,\"taken\":false,\"hits\":1,"
      "\"first_iter\":3,\"seed\":\"SeedX\",\"mutator\":\"mutY\","
      "\"phase\":4,\"rare\":true}\n");
  ASSERT_TRUE(Census);
  Inputs.Frontier = Census.take();
  Inputs.Title = "t <escaped>";

  std::string Html = tel::renderHtmlReport(Inputs);
  EXPECT_EQ(Html, tel::renderHtmlReport(Inputs)) << "deterministic";
  EXPECT_EQ(Html.rfind("<!doctype html>", 0), 0u);
  EXPECT_NE(Html.find("t &lt;escaped&gt;"), std::string::npos);
  // Coverage + acceptance charts (stmts series exists; no discrepancy
  // series in this input, so no third chart).
  EXPECT_NE(Html.find("data-chart=\"coverage\""), std::string::npos);
  EXPECT_NE(Html.find("data-chart=\"acceptance\""), std::string::npos);
  EXPECT_EQ(Html.find("data-chart=\"discrepancies\""), std::string::npos);
  EXPECT_NE(Html.find("<svg"), std::string::npos);
  // Rare-branch table carries the attribution columns.
  EXPECT_NE(Html.find("SeedX"), std::string::npos);
  EXPECT_NE(Html.find("mutY"), std::string::npos);
  // Heat grid rows, highest total first.
  size_t Swap = Html.find("jir_swap");
  size_t Retag = Html.find("cp_retag");
  ASSERT_NE(Swap, std::string::npos);
  ASSERT_NE(Retag, std::string::npos);
  EXPECT_LT(Swap, Retag);
  // Self-contained: no external fetches of any kind.
  EXPECT_EQ(Html.find("http://"), std::string::npos);
  EXPECT_EQ(Html.find("https://"), std::string::npos);
  EXPECT_EQ(Html.find("src="), std::string::npos);
}

TEST(ReportHtml, DegradesGracefullyWithTimeSeriesOnly) {
  tel::ReportInputs Inputs;
  auto Ts = tel::parseTimeSeries(
      "{\"type\":\"ts\",\"iter\":8,\"m\":{\"campaign.accepted\":2}}\n");
  ASSERT_TRUE(Ts);
  Inputs.Ts = Ts.take();
  std::string Html = tel::renderHtmlReport(Inputs);
  // No frontier series: the coverage chart falls back to the pool curve.
  EXPECT_NE(Html.find("data-chart=\"coverage\""), std::string::npos);
  EXPECT_EQ(Html.find("data-grid"), std::string::npos);
}

TEST(ReportHtml, EmptySeriesYieldsANoteNotACrash) {
  tel::ReportInputs Inputs;
  std::string Html = tel::renderHtmlReport(Inputs);
  EXPECT_NE(Html.find("No time-series samples"), std::string::npos);
  EXPECT_EQ(Html.find("<svg"), std::string::npos);
}

TEST(ProgressDash, RendersHeadlinesAndSparklines) {
  auto Ts = tel::parseTimeSeries(SampleTs);
  ASSERT_TRUE(Ts);
  std::string Dash = tel::renderProgressDash(*Ts);
  EXPECT_NE(Dash.find("iter 30"), std::string::npos);
  EXPECT_NE(Dash.find("final"), std::string::npos);
  EXPECT_NE(Dash.find("accepted"), std::string::npos);
  EXPECT_NE(Dash.find("\xe2\x96\x88"), std::string::npos) << "U+2588 cell";
  EXPECT_EQ(Dash.find("\x1b["), std::string::npos)
      << "no cursor control inside the frame";
}

TEST(ProgressDash, EmptySeriesSaysSo) {
  tel::TimeSeriesData Empty;
  std::string Dash = tel::renderProgressDash(Empty);
  EXPECT_FALSE(Dash.empty());
  EXPECT_EQ(Dash.find("\xe2\x96\x88"), std::string::npos);
}
