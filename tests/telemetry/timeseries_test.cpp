//===- tests/telemetry/timeseries_test.cpp ---------------------------------===//
//
// The deterministic campaign time series: sampling cadence on committed
// iterations, delta-encoding (first row carries the non-zero state,
// later rows only changed keys), prefix include/exclude filtering, the
// final row, and the windowed saturation detector's latch semantics.
//
//===----------------------------------------------------------------------===//

#include "telemetry/TimeSeries.h"

#include "telemetry/Telemetry.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace classfuzz;
namespace tel = classfuzz::telemetry;

namespace {

tel::TimeSeriesSampler::Options optsFor(const std::string &Prefix,
                                        uint64_t Every) {
  tel::TimeSeriesSampler::Options Opts;
  Opts.SampleEvery = Every;
  Opts.Prefixes = {Prefix};
  Opts.ExcludePrefixes.clear();
  return Opts;
}

} // namespace

TEST(TimeSeries, SamplesOnTheStrideAndDeltaEncodes) {
  // Registry names are process-global; a test-unique prefix isolates us.
  tel::Counter &A = tel::metrics().counter("ts_a.hits");
  tel::Gauge &G = tel::metrics().gauge("ts_a.depth");
  A.reset();
  G.set(0);
  tel::metrics().counter("ts_a.zero").reset(); // Stays 0 throughout.

  tel::TimeSeriesSampler S(optsFor("ts_a.", 2));
  A.inc(5);
  G.set(3);
  S.onCommit(1); // Off-stride: no row.
  EXPECT_TRUE(S.rows().empty());
  S.onCommit(2);
  ASSERT_EQ(S.rows().size(), 1u);
  EXPECT_EQ(S.rows()[0],
            "{\"type\":\"ts\",\"iter\":2,\"m\":{\"ts_a.depth\":3,"
            "\"ts_a.hits\":5}}")
      << "first row: every non-zero metric, keys sorted, zeros omitted";

  S.onCommit(4); // Nothing changed: row with an empty delta map.
  ASSERT_EQ(S.rows().size(), 2u);
  EXPECT_EQ(S.rows()[1], "{\"type\":\"ts\",\"iter\":4,\"m\":{}}");

  A.inc(2);
  S.onCommit(6); // Only the changed key appears.
  ASSERT_EQ(S.rows().size(), 3u);
  EXPECT_EQ(S.rows()[2],
            "{\"type\":\"ts\",\"iter\":6,\"m\":{\"ts_a.hits\":7}}");
}

TEST(TimeSeries, FinishEmitsAFinalRowOffStrideAndStopsSampling) {
  tel::Counter &A = tel::metrics().counter("ts_b.hits");
  A.reset();
  tel::TimeSeriesSampler S(optsFor("ts_b.", 100));
  A.inc();
  S.finish(7);
  ASSERT_EQ(S.rows().size(), 1u);
  EXPECT_EQ(S.rows()[0], "{\"type\":\"ts\",\"iter\":7,\"final\":true,"
                         "\"m\":{\"ts_b.hits\":1}}");
  S.onCommit(200); // After finish: ignored.
  S.finish(300);
  EXPECT_EQ(S.rows().size(), 1u);
}

TEST(TimeSeries, ZerothCommitNeverSamplesAndPeriodZeroClampsToOne) {
  tel::metrics().counter("ts_c.hits").reset();
  tel::TimeSeriesSampler S(optsFor("ts_c.", 0));
  S.onCommit(0); // Iteration 0 = nothing committed yet.
  EXPECT_TRUE(S.rows().empty());
  S.onCommit(1);
  S.onCommit(2);
  EXPECT_EQ(S.rows().size(), 2u) << "period 0 behaves as every-commit";
}

TEST(TimeSeries, ExcludePrefixesTrimInsideTheIncludeSet) {
  tel::metrics().counter("ts_d.keep").inc(4);
  tel::metrics().counter("ts_d.noise.jobs").inc(9);
  auto Opts = optsFor("ts_d.", 1);
  Opts.ExcludePrefixes = {"ts_d.noise."};
  tel::TimeSeriesSampler S(Opts);
  S.onCommit(1);
  ASSERT_EQ(S.rows().size(), 1u);
  EXPECT_NE(S.rows()[0].find("ts_d.keep"), std::string::npos);
  EXPECT_EQ(S.rows()[0].find("ts_d.noise.jobs"), std::string::npos);
}

TEST(TimeSeries, StreamsRowsToTheAttachedFile) {
  std::string Path = testing::TempDir() + "/cf_timeseries_test.jsonl";
  tel::metrics().counter("ts_e.hits").reset();
  {
    std::FILE *F = std::fopen(Path.c_str(), "w");
    ASSERT_NE(F, nullptr);
    tel::TimeSeriesSampler S(optsFor("ts_e.", 1), F);
    tel::metrics().counter("ts_e.hits").inc();
    S.onCommit(1);
    S.finish(2);
  } // Destructor closed the stream.
  std::ifstream In(Path);
  std::stringstream Buf;
  Buf << In.rdbuf();
  EXPECT_EQ(Buf.str(), "{\"type\":\"ts\",\"iter\":1,\"m\":"
                       "{\"ts_e.hits\":1}}\n"
                       "{\"type\":\"ts\",\"iter\":2,\"final\":true,"
                       "\"m\":{}}\n");
  std::remove(Path.c_str());
}

// ---- saturation detector --------------------------------------------------

TEST(Saturation, LatchesOnceAfterAFullSilentWindow) {
  tel::SaturationDetector D({/*Window=*/4, /*MinDiscoveries=*/1});
  tel::SaturationDetector::Signals Hit;
  Hit.NewBranches = 1;
  tel::SaturationDetector::Signals Silent;

  EXPECT_FALSE(D.onCommit(Hit));
  // Three silent commits: the window still holds the discovery.
  for (int I = 0; I != 3; ++I)
    EXPECT_FALSE(D.onCommit(Silent)) << "commit " << I;
  EXPECT_FALSE(D.plateaued());
  // Fourth silent commit evicts it: a full window with nothing new.
  EXPECT_TRUE(D.onCommit(Silent));
  EXPECT_TRUE(D.plateaued());
  EXPECT_EQ(D.plateauIteration(), 5u);
  // Latched for good: further commits (even discoveries) change nothing.
  EXPECT_FALSE(D.onCommit(Hit));
  EXPECT_TRUE(D.plateaued());
  EXPECT_EQ(D.plateauIteration(), 5u);
}

TEST(Saturation, NeverLatchesBeforeTheWindowFills) {
  tel::SaturationDetector D({/*Window=*/8, /*MinDiscoveries=*/1});
  tel::SaturationDetector::Signals Silent;
  for (int I = 0; I != 7; ++I)
    EXPECT_FALSE(D.onCommit(Silent));
  EXPECT_FALSE(D.plateaued()) << "7 commits cannot fill a window of 8";
  EXPECT_TRUE(D.onCommit(Silent));
  EXPECT_EQ(D.plateauIteration(), 8u);
}

TEST(Saturation, MinDiscoveriesRaisesTheBar) {
  tel::SaturationDetector D({/*Window=*/4, /*MinDiscoveries=*/3});
  tel::SaturationDetector::Signals Two;
  Two.NewTuples = 1;
  Two.Discrepancies = 1;
  // Every window holds exactly 2 discoveries < 3: latches as soon as
  // the window is full.
  EXPECT_FALSE(D.onCommit(Two));
  tel::SaturationDetector::Signals Silent;
  EXPECT_FALSE(D.onCommit(Silent));
  EXPECT_FALSE(D.onCommit(Silent));
  EXPECT_TRUE(D.onCommit(Silent));
  EXPECT_EQ(D.plateauIteration(), 4u);
}

TEST(Saturation, DiscoveryRateTracksTheWindow) {
  tel::SaturationDetector D({/*Window=*/10, /*MinDiscoveries=*/1});
  tel::SaturationDetector::Signals Hit;
  Hit.NewBranches = 2;
  D.onCommit(Hit);
  D.onCommit(Hit);
  // 4 discoveries over 2 commits-in-window.
  EXPECT_DOUBLE_EQ(D.discoveryRatePerK(), 2000.0);
}
