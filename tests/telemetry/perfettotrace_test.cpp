//===- tests/telemetry/perfettotrace_test.cpp ------------------------------===//
//
// The --trace-perfetto exporter (DESIGN.md §9): span capture through
// named PhaseTimers, rebased Chrome trace-event rendering, and the
// disabled-collector no-op guarantee.
//
//===----------------------------------------------------------------------===//

#include "telemetry/PerfettoTrace.h"

#include "telemetry/Telemetry.h"

#include <gtest/gtest.h>

using namespace classfuzz;
namespace tel = classfuzz::telemetry;

namespace {

struct SpanGuard {
  SpanGuard() {
    tel::setEnabled(false);
    tel::disableSpanCollection();
  }
  ~SpanGuard() {
    tel::setEnabled(false);
    tel::disableSpanCollection();
  }
};

} // namespace

TEST(PerfettoTrace, NamedPhaseTimerRecordsSpanWhenArmed) {
  SpanGuard Guard;
  tel::setEnabled(true);
  tel::enableSpanCollection();
  tel::Histogram H;
  {
    tel::PhaseTimer T(H, "mutate");
  }
  auto Spans = tel::collectedSpans();
  ASSERT_EQ(Spans.size(), 1u);
  EXPECT_STREQ(Spans[0].Name, "mutate");
  EXPECT_LE(Spans[0].StartNs, Spans[0].EndNs);
  EXPECT_EQ(H.count(), 1u);
}

TEST(PerfettoTrace, UnnamedOrDisarmedTimersRecordNoSpans) {
  SpanGuard Guard;
  tel::setEnabled(true);
  tel::Histogram H;
  {
    tel::PhaseTimer Unnamed(H); // No span name: histogram only.
  }
  tel::enableSpanCollection();
  tel::disableSpanCollection();
  {
    tel::PhaseTimer Disarmed(H, "execute"); // Collector off.
  }
  EXPECT_TRUE(tel::collectedSpans().empty());
}

TEST(PerfettoTrace, EnableClearsPreviouslyCollectedSpans) {
  SpanGuard Guard;
  tel::setEnabled(true);
  tel::enableSpanCollection();
  tel::Histogram H;
  {
    tel::PhaseTimer T(H, "stale");
  }
  tel::enableSpanCollection(); // Re-arm: drops the stale span.
  EXPECT_TRUE(tel::collectedSpans().empty());
}

TEST(PerfettoTrace, RenderedTraceIsStableAndRebasedToEarliestSpan) {
  std::vector<tel::TraceSpan> Spans;
  Spans.push_back({"execute", 1, 2'000'000, 2'500'000});
  Spans.push_back({"mutate", 0, 1'000'000, 1'750'500});
  EXPECT_EQ(
      tel::renderChromeTrace(Spans),
      "{\"displayTimeUnit\":\"ms\",\"traceEvents\":["
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"driver (lane 0)\"}},"
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,"
      "\"args\":{\"name\":\"worker (lane 1)\"}},"
      "{\"name\":\"mutate\",\"cat\":\"classfuzz\",\"ph\":\"X\",\"pid\":1,"
      "\"tid\":0,\"ts\":0.000,\"dur\":750.500},"
      "{\"name\":\"execute\",\"cat\":\"classfuzz\",\"ph\":\"X\",\"pid\":1,"
      "\"tid\":1,\"ts\":1000.000,\"dur\":500.000}"
      "]}\n");
}

TEST(PerfettoTrace, EmptyTraceIsStillValidJson) {
  EXPECT_EQ(tel::renderChromeTrace({}),
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}\n");
}
