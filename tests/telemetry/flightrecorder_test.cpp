//===- tests/telemetry/flightrecorder_test.cpp -----------------------------===//
//
// The flight recorder (DESIGN.md §9): disabled no-op behavior, ring
// wraparound keeping the most recent events, multi-lane merge in global
// sequence order, stable JSONL rendering, and survival of concurrent
// writers and enable()/disable() cycles.
//
//===----------------------------------------------------------------------===//

#include "telemetry/FlightRecorder.h"

#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <future>
#include <map>
#include <set>
#include <thread>
#include <vector>

using namespace classfuzz;
namespace tel = classfuzz::telemetry;

namespace {

/// Disables the process-wide recorder on scope exit so tests cannot
/// leak an armed ring into each other.
struct RecorderGuard {
  RecorderGuard() { tel::flightRecorder().disable(); }
  ~RecorderGuard() { tel::flightRecorder().disable(); }
};

} // namespace

TEST(FlightRecorder, DisabledRecordIsANoOp) {
  RecorderGuard Guard;
  tel::FlightRecorder &FR = tel::flightRecorder();
  EXPECT_FALSE(FR.enabled());
  FR.record(tel::FlightKind::Iteration, 1, 2, 3); // Must not crash.
  EXPECT_TRUE(FR.snapshot().empty());
}

TEST(FlightRecorder, RecordsAndSnapshotsInSequenceOrder) {
  RecorderGuard Guard;
  tel::FlightRecorder &FR = tel::flightRecorder();
  FR.enable(64);
  FR.record(tel::FlightKind::Iteration, 0, 5, 1);
  FR.record(tel::FlightKind::Accepted, 0, 0, 0xABCD);
  FR.record(tel::FlightKind::DiffOutcome, 11110, 1, 7);
  auto Events = FR.snapshot();
  ASSERT_EQ(Events.size(), 3u);
  EXPECT_EQ(Events[0].Kind, tel::FlightKind::Iteration);
  EXPECT_EQ(Events[1].Kind, tel::FlightKind::Accepted);
  EXPECT_EQ(Events[2].Kind, tel::FlightKind::DiffOutcome);
  EXPECT_EQ(Events[0].Seq, 0u);
  EXPECT_EQ(Events[2].Seq, 2u);
  EXPECT_EQ(Events[2].A, 11110u);
  EXPECT_EQ(Events[2].B, 1u);
}

TEST(FlightRecorder, RingWraparoundKeepsTheMostRecentEvents) {
  RecorderGuard Guard;
  tel::FlightRecorder &FR = tel::flightRecorder();
  FR.enable(16); // Power of two, minimum capacity.
  for (uint64_t I = 0; I != 100; ++I)
    FR.record(tel::FlightKind::Iteration, I);
  auto Events = FR.snapshot();
  ASSERT_EQ(Events.size(), 16u);
  // The survivors are exactly the last 16, still in order.
  for (size_t I = 0; I != Events.size(); ++I) {
    EXPECT_EQ(Events[I].A, 84 + I);
    EXPECT_EQ(Events[I].Seq, 84 + I);
  }
}

TEST(FlightRecorder, SnapshotLastNTrimsFromTheFront) {
  RecorderGuard Guard;
  tel::FlightRecorder &FR = tel::flightRecorder();
  FR.enable(64);
  for (uint64_t I = 0; I != 10; ++I)
    FR.record(tel::FlightKind::Iteration, I);
  auto Tail = FR.snapshot(3);
  ASSERT_EQ(Tail.size(), 3u);
  EXPECT_EQ(Tail[0].A, 7u);
  EXPECT_EQ(Tail[2].A, 9u);
  EXPECT_EQ(FR.snapshot(1000).size(), 10u); // LastN > size: everything.
}

TEST(FlightRecorder, CapacityRoundsUpToPowerOfTwoWithFloor) {
  RecorderGuard Guard;
  tel::FlightRecorder &FR = tel::flightRecorder();
  FR.enable(3); // Rounds up to the floor of 16.
  for (uint64_t I = 0; I != 40; ++I)
    FR.record(tel::FlightKind::Iteration, I);
  EXPECT_EQ(FR.snapshot().size(), 16u);
  FR.enable(100); // Rounds up to 128.
  for (uint64_t I = 0; I != 200; ++I)
    FR.record(tel::FlightKind::Iteration, I);
  EXPECT_EQ(FR.snapshot().size(), 128u);
}

TEST(FlightRecorder, EnableClearsPriorEventsAndResetsSequence) {
  RecorderGuard Guard;
  tel::FlightRecorder &FR = tel::flightRecorder();
  FR.enable(64);
  FR.record(tel::FlightKind::Iteration, 1);
  FR.enable(64); // Re-arm: generation bump, fresh rings.
  FR.record(tel::FlightKind::Accepted, 2);
  auto Events = FR.snapshot();
  ASSERT_EQ(Events.size(), 1u);
  EXPECT_EQ(Events[0].Kind, tel::FlightKind::Accepted);
  EXPECT_EQ(Events[0].Seq, 0u);
}

TEST(FlightRecorder, DisableDropsEventsAndStopsRecording) {
  RecorderGuard Guard;
  tel::FlightRecorder &FR = tel::flightRecorder();
  FR.enable(64);
  FR.record(tel::FlightKind::Iteration, 1);
  FR.disable();
  EXPECT_FALSE(FR.enabled());
  FR.record(tel::FlightKind::Iteration, 2);
  EXPECT_TRUE(FR.snapshot().empty());
}

TEST(FlightRecorder, MultiLaneMergeOrdersBySequence) {
  RecorderGuard Guard;
  tel::FlightRecorder &FR = tel::flightRecorder();
  FR.enable(1024);
  constexpr size_t Threads = 4, PerThread = 200;
  {
    ThreadPool Pool(Threads);
    std::vector<std::future<void>> Done;
    for (size_t T = 0; T != Threads; ++T)
      Done.push_back(Pool.submit([&FR, T] {
        for (uint64_t I = 0; I != PerThread; ++I)
          FR.record(tel::FlightKind::Iteration, I, T);
      }));
    for (auto &F : Done)
      F.get();
  }
  auto Events = FR.snapshot();
  ASSERT_EQ(Events.size(), Threads * PerThread);
  // Sequence numbers are a permutation of 0..N-1, strictly increasing
  // in the merged view, and each lane saw its own events in order.
  std::set<uint64_t> Seqs;
  std::vector<uint64_t> LastPerLane(1024, UINT64_MAX);
  for (size_t I = 0; I != Events.size(); ++I) {
    if (I > 0)
      EXPECT_LT(Events[I - 1].Seq, Events[I].Seq);
    Seqs.insert(Events[I].Seq);
    ASSERT_LT(Events[I].Lane, 1024u);
    uint64_t &Last = LastPerLane[Events[I].Lane];
    if (Last != UINT64_MAX)
      EXPECT_LT(Last, Events[I].Seq);
    Last = Events[I].Seq;
  }
  EXPECT_EQ(Seqs.size(), Threads * PerThread);
  EXPECT_EQ(*Seqs.rbegin(), Threads * PerThread - 1);
}

TEST(FlightRecorder, SnapshotIsSafeWhileWritersAreActive) {
  RecorderGuard Guard;
  tel::FlightRecorder &FR = tel::flightRecorder();
  FR.enable(32); // Tiny ring: heavy wraparound under the snapshots.
  constexpr size_t Threads = 4;
  std::atomic<bool> Stop{false};
  {
    ThreadPool Pool(Threads);
    std::vector<std::future<void>> Done;
    for (size_t T = 0; T != Threads; ++T)
      Done.push_back(Pool.submit([&FR, &Stop] {
        for (uint64_t I = 0; !Stop.load(std::memory_order_relaxed); ++I)
          FR.record(tel::FlightKind::Iteration, I);
      }));
    for (int I = 0; I != 200; ++I) {
      auto Events = FR.snapshot();
      // Only well-formed events survive: torn entries are dropped.
      for (const auto &Ev : Events)
        EXPECT_EQ(Ev.Kind, tel::FlightKind::Iteration);
    }
    Stop.store(true, std::memory_order_relaxed);
    for (auto &F : Done)
      F.get();
  }
}

TEST(FlightRecorder, RenderJsonlIsStableAndOmitsUnusedFields) {
  std::vector<tel::FlightEvent> Events;
  Events.push_back({0, 0, tel::FlightKind::Iteration, 7, 12, 3});
  Events.push_back({1, 2, tel::FlightKind::IncidentDumped, 4, 99, 0});
  EXPECT_EQ(tel::FlightRecorder::renderJsonl(Events),
            "{\"seq\":0,\"lane\":0,\"kind\":\"iteration\",\"iter\":7,"
            "\"mutator\":12,\"outcome\":3}\n"
            "{\"seq\":1,\"lane\":2,\"kind\":\"incident_dumped\","
            "\"incident\":4,\"class_hash\":99}\n");
  EXPECT_EQ(tel::FlightRecorder::renderJsonl({}), "");
}

TEST(FlightRecorder, KindNamesAndFieldTablesCoverEveryKind) {
  for (uint16_t K = 0; K <= static_cast<uint16_t>(
                               tel::FlightKind::IncidentDumped);
       ++K) {
    auto Kind = static_cast<tel::FlightKind>(K);
    EXPECT_STRNE(tel::flightKindName(Kind), "?");
    const char *const *Fields = tel::flightEventFieldNames(Kind);
    for (size_t I = 0; I != 3; ++I)
      ASSERT_NE(Fields[I], nullptr);
  }
}

TEST(FlightRecorder, RingOverflowKeepsEachLanesLastCapacityEvents) {
  RecorderGuard Guard;
  tel::FlightRecorder &FR = tel::flightRecorder();
  FR.enable(64);
  // std::thread (not the pool) guarantees each writer gets a fresh
  // lane: 4 lanes x 1000 events against 64 slots per lane.
  constexpr uint64_t Threads = 4, PerThread = 1000, Capacity = 64;
  std::vector<std::thread> Writers;
  for (uint64_t T = 0; T != Threads; ++T)
    Writers.emplace_back([&FR, T] {
      for (uint64_t I = 0; I != PerThread; ++I)
        FR.record(tel::FlightKind::Iteration, T * 10000 + I, T);
    });
  for (auto &W : Writers)
    W.join();

  auto Events = FR.snapshot();
  // Overflow accounting: exactly capacity-per-lane survivors, no
  // duplicates, no torn entries.
  ASSERT_EQ(Events.size(), Threads * Capacity);
  std::set<uint64_t> Seqs;
  std::map<uint64_t, std::vector<uint64_t>> PerLane;
  for (size_t I = 0; I != Events.size(); ++I) {
    if (I > 0)
      EXPECT_LT(Events[I - 1].Seq, Events[I].Seq);
    Seqs.insert(Events[I].Seq);
    PerLane[Events[I].B].push_back(Events[I].A);
  }
  EXPECT_EQ(Seqs.size(), Threads * Capacity);
  // Every sequence number is from the real 0..3999 allocation; the
  // globally newest event always survives.
  EXPECT_LT(*Seqs.rbegin(), Threads * PerThread);
  EXPECT_EQ(*Seqs.rbegin(), Threads * PerThread - 1);
  ASSERT_EQ(PerLane.size(), Threads);
  for (auto &[Writer, As] : PerLane) {
    // Each lane keeps exactly its own last `Capacity` writes, in order.
    ASSERT_EQ(As.size(), Capacity) << "writer " << Writer;
    for (uint64_t I = 0; I != Capacity; ++I)
      EXPECT_EQ(As[I], Writer * 10000 + (PerThread - Capacity) + I);
  }
}
