//===- tests/classfile/printer_test.cpp ------------------------------------===//
//
// The javap-style printer on hostile input: mutated pools routinely
// contain dangling indices, reference cycles, and type-confused
// entries, and the printer must render every one of them (with "?"
// placeholders) instead of crashing or recursing forever.
//
//===----------------------------------------------------------------------===//

#include "../TestHelpers.h"
#include "classfile/Printer.h"

#include <gtest/gtest.h>

using namespace classfuzz;
using namespace classfuzz::testhelpers;

TEST(Printer, RendersDanglingPoolIndex) {
  ClassFile CF = makeHelloClass("Dangling");
  uint16_t Cls = CF.CP.classRef("Victim");
  CF.CP.at(Cls).Ref1 = 999; // Way past the end of the pool.
  std::string Out = printClassFile(CF);
  EXPECT_NE(Out.find("Dangling"), std::string::npos);
}

TEST(Printer, RendersOutOfRangeMemberRef) {
  ClassFile CF = makeHelloClass("BadMember");
  uint16_t M = CF.CP.methodRef("BadMember", "m", "()V");
  CF.CP.at(M).Ref1 = 500;
  CF.CP.at(M).Ref2 = 501;
  std::string Out = printClassFile(CF);
  EXPECT_FALSE(Out.empty());
}

TEST(Printer, SelfReferentialEntryTerminates) {
  ClassFile CF = makeHelloClass("SelfRef");
  uint16_t Cls = CF.CP.classRef("X");
  CF.CP.at(Cls).Ref1 = Cls; // Class whose name slot is itself.
  std::string Out = printClassFile(CF);
  EXPECT_FALSE(Out.empty());
}

TEST(Printer, MutualReferenceCycleTerminates) {
  ClassFile CF = makeHelloClass("Cycle");
  uint16_t A = CF.CP.classRef("A");
  uint16_t B = CF.CP.classRef("B");
  CF.CP.at(A).Ref1 = B;
  CF.CP.at(B).Ref1 = A;
  // A NameAndType cycle through member refs, for good measure.
  uint16_t M = CF.CP.methodRef("Cycle", "m", "()V");
  CF.CP.at(M).Ref2 = M;
  std::string Out = printClassFile(CF);
  EXPECT_FALSE(Out.empty());
}

TEST(Printer, TypeConfusedOperandRenders) {
  ClassFile CF = makeHelloClass("Confused");
  // The ldc in main ends up pointing at a Methodref-shaped entry whose
  // name_and_type slot holds an Integer.
  uint16_t M = CF.CP.methodRef("Confused", "m", "()V");
  CF.CP.at(M).Ref2 = CF.CP.integer(7);
  std::string Out = printClassFile(CF);
  EXPECT_NE(Out.find("Confused"), std::string::npos);
}

TEST(Printer, ZeroedPoolEntryRenders) {
  ClassFile CF = makeHelloClass("Zeroed");
  uint16_t Cls = CF.CP.classRef("Z");
  CF.CP.at(Cls).Ref1 = 0; // The reserved slot.
  std::string Out = printClassFile(CF);
  EXPECT_FALSE(Out.empty());
}
