//===- tests/classfile/roundtrip_test.cpp ----------------------------------===//
//
// Write -> parse -> write round trips over realistic classfiles, plus
// structural-parser rejection tests.
//
//===----------------------------------------------------------------------===//

#include "../TestHelpers.h"
#include "classfile/ClassReader.h"
#include "classfile/Printer.h"
#include "runtime/RuntimeLib.h"
#include "runtime/SeedCorpus.h"

#include <gtest/gtest.h>

using namespace classfuzz;
using namespace classfuzz::testhelpers;

TEST(RoundTrip, HelloClassParsesBack) {
  Bytes Data = serialize(makeHelloClass("Hello"));
  auto Parsed = parseClassFile(Data);
  ASSERT_TRUE(Parsed.ok()) << Parsed.error();
  EXPECT_EQ(Parsed->ThisClass, "Hello");
  EXPECT_EQ(Parsed->SuperClass, "java/lang/Object");
  EXPECT_EQ(Parsed->MajorVersion, MajorVersionJava7);
  ASSERT_EQ(Parsed->Methods.size(), 2u);
  const MethodInfo *Main =
      Parsed->findMethod("main", "([Ljava/lang/String;)V");
  ASSERT_NE(Main, nullptr);
  EXPECT_TRUE(Main->isStatic());
  ASSERT_TRUE(Main->Code.has_value());
  EXPECT_EQ(Main->Code->MaxStack, 2);
}

TEST(RoundTrip, SecondSerializationIsStable) {
  Bytes First = serialize(makeHelloClass("Stable"));
  auto Parsed = parseClassFile(First);
  ASSERT_TRUE(Parsed.ok());
  ClassFile CF = Parsed.take();
  auto Second = writeClassFile(CF);
  ASSERT_TRUE(Second.ok());
  auto Reparsed = parseClassFile(*Second);
  ASSERT_TRUE(Reparsed.ok()) << Reparsed.error();
  EXPECT_EQ(Reparsed->ThisClass, "Stable");
  EXPECT_EQ(Reparsed->Methods.size(), CF.Methods.size());
}

TEST(RoundTrip, WholeRuntimeLibraryParses) {
  for (const char *Version : {"jre5", "jre7", "jre8", "jre9"}) {
    ClassPath Lib = buildRuntimeLibrary(Version);
    for (const std::string &Name : Lib.names()) {
      const Bytes *Data = Lib.lookup(Name);
      ASSERT_NE(Data, nullptr);
      auto Parsed = parseClassFile(*Data);
      ASSERT_TRUE(Parsed.ok())
          << Version << "/" << Name << ": " << Parsed.error();
      EXPECT_EQ(Parsed->ThisClass, Name);
    }
  }
}

TEST(RoundTrip, SeedCorpusParses) {
  Rng R(1234);
  auto Seeds = generateSeedCorpus(R, 40);
  ASSERT_EQ(Seeds.size(), 40u);
  for (const SeedClass &Seed : Seeds) {
    auto Parsed = parseClassFile(Seed.Data);
    ASSERT_TRUE(Parsed.ok()) << Seed.Name << ": " << Parsed.error();
    EXPECT_EQ(Parsed->ThisClass, Seed.Name);
    for (const auto &[HelperName, HelperData] : Seed.Helpers) {
      auto HelperParsed = parseClassFile(HelperData);
      ASSERT_TRUE(HelperParsed.ok()) << HelperName;
    }
  }
}

TEST(RoundTrip, WideConstantsInPoolAndCode) {
  // Regression: the Long/Double placeholder slot must not appear on the
  // wire. Exercise both a ConstantValue double and ldc2_w in code.
  ClassFile CF = makeHelloClass("Wide");
  FieldInfo F;
  F.Name = "L";
  F.Descriptor = "J";
  F.AccessFlags = ACC_PUBLIC | ACC_STATIC | ACC_FINAL;
  FieldConstant CV;
  CV.Kind = 'j';
  CV.IntValue = 0x1122334455667788LL;
  F.ConstantValue = CV;
  CF.Fields.push_back(std::move(F));

  MethodInfo *Main = CF.findMethod("main", "([Ljava/lang/String;)V");
  CodeBuilder B(CF.CP);
  B.emitU2(OP_ldc2_w, CF.CP.longConst(42));
  B.emit(OP_pop2);
  B.emitU2(OP_ldc2_w, CF.CP.doubleConst(1.5));
  B.emit(OP_pop2);
  B.emit(OP_return);
  Main->Code->Code = B.build();
  Main->Code->MaxStack = 2;

  Bytes Data = serialize(CF);
  auto Parsed = parseClassFile(Data);
  ASSERT_TRUE(Parsed.ok()) << Parsed.error();
  const FieldInfo *PF = Parsed->findField("L");
  ASSERT_NE(PF, nullptr);
  ASSERT_TRUE(PF->ConstantValue.has_value());
  EXPECT_EQ(PF->ConstantValue->IntValue, 0x1122334455667788LL);
  // Second serialization must be byte-identical (pool is complete).
  ClassFile Copy = Parsed.take();
  auto Again = writeClassFile(Copy);
  ASSERT_TRUE(Again.ok());
  EXPECT_TRUE(parseClassFile(*Again).ok());
}

TEST(Opcodes, LengthTableAgreesWithDecoderForAllDefinedOpcodes) {
  // Property sweep: for every fixed-length opcode, a code array of
  // exactly that length (padded with zero operands) decodes to one
  // instruction of that length. Zero operands are valid paddings for
  // every fixed-length instruction encoding.
  for (unsigned Op = 0; Op != 256; ++Op) {
    int Len = opcodeLength(static_cast<uint8_t>(Op));
    if (Len <= 0)
      continue; // Undefined or variable-length.
    Bytes Code(static_cast<size_t>(Len), 0);
    Code[0] = static_cast<uint8_t>(Op);
    InsnDecoder D(Code);
    Insn I;
    ASSERT_TRUE(D.decodeNext(I)) << opcodeName(static_cast<uint8_t>(Op));
    EXPECT_EQ(I.Length, static_cast<uint32_t>(Len))
        << opcodeName(static_cast<uint8_t>(Op));
    EXPECT_TRUE(D.atEnd());
    EXPECT_TRUE(D.valid());
    // One byte short must be flagged as truncation, never read OOB.
    if (Len > 1) {
      Bytes Short(Code.begin(), Code.end() - 1);
      InsnDecoder DS(Short);
      Insn J;
      EXPECT_FALSE(DS.decodeNext(J))
          << opcodeName(static_cast<uint8_t>(Op));
      EXPECT_FALSE(DS.valid());
    }
  }
}

TEST(Parser, RejectsBadMagic) {
  Bytes Data = serialize(makeHelloClass("M"));
  Data[0] = 0xDE;
  auto Parsed = parseClassFile(Data);
  ASSERT_FALSE(Parsed.ok());
  EXPECT_NE(Parsed.error().find("magic"), std::string::npos);
}

TEST(Parser, RejectsTruncation) {
  Bytes Data = serialize(makeHelloClass("M"));
  Data.resize(Data.size() / 2);
  EXPECT_FALSE(parseClassFile(Data).ok());
}

TEST(Parser, RejectsTrailingGarbage) {
  Bytes Data = serialize(makeHelloClass("M"));
  Data.push_back(0x00);
  auto Parsed = parseClassFile(Data);
  ASSERT_FALSE(Parsed.ok());
  EXPECT_NE(Parsed.error().find("extra bytes"), std::string::npos);
}

TEST(Parser, RejectsUnknownConstantTag) {
  Bytes Data = serialize(makeHelloClass("M"));
  // Byte 10 is the first constant's tag (magic 4 + versions 4 + count 2).
  Data[10] = 99;
  EXPECT_FALSE(parseClassFile(Data).ok());
}

TEST(Parser, EmptyInputRejected) {
  EXPECT_FALSE(parseClassFile({}).ok());
}

TEST(Printer, DumpsKeyStructure) {
  ClassFile CF = makeHelloClass("M1436188543");
  std::string Dump = printClassFile(CF);
  EXPECT_NE(Dump.find("class M1436188543"), std::string::npos);
  EXPECT_NE(Dump.find("major version: 51"), std::string::npos);
  EXPECT_NE(Dump.find("ACC_PUBLIC"), std::string::npos);
  EXPECT_NE(Dump.find("main"), std::string::npos);
  EXPECT_NE(Dump.find("getstatic"), std::string::npos);
  EXPECT_NE(Dump.find("Completed!"), std::string::npos);
}

TEST(Printer, DisassemblesBranches) {
  ConstantPool CP;
  Bytes Code = {OP_iconst_0, OP_ifeq, 0x00, 0x04, OP_return};
  std::string Asm = disassemble(CP, Code);
  EXPECT_NE(Asm.find("ifeq"), std::string::npos);
  EXPECT_NE(Asm.find("return"), std::string::npos);
}
