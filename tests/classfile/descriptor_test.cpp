//===- tests/classfile/descriptor_test.cpp ---------------------------------===//

#include "classfile/Descriptor.h"

#include <gtest/gtest.h>

using namespace classfuzz;

TEST(Descriptor, ParsesPrimitives) {
  JType T;
  ASSERT_TRUE(parseFieldDescriptor("I", T));
  EXPECT_EQ(T.Kind, TypeKind::Int);
  EXPECT_EQ(T.slotWidth(), 1);

  ASSERT_TRUE(parseFieldDescriptor("J", T));
  EXPECT_EQ(T.Kind, TypeKind::Long);
  EXPECT_EQ(T.slotWidth(), 2);

  ASSERT_TRUE(parseFieldDescriptor("D", T));
  EXPECT_EQ(T.slotWidth(), 2);
}

TEST(Descriptor, ParsesReference) {
  JType T;
  ASSERT_TRUE(parseFieldDescriptor("Ljava/lang/String;", T));
  EXPECT_EQ(T.Kind, TypeKind::Reference);
  EXPECT_EQ(T.ClassName, "java/lang/String");
  EXPECT_EQ(T.toDescriptor(), "Ljava/lang/String;");
  EXPECT_EQ(T.toJavaName(), "java.lang.String");
}

TEST(Descriptor, ParsesArrays) {
  JType T;
  ASSERT_TRUE(parseFieldDescriptor("[[I", T));
  EXPECT_EQ(T.ArrayDims, 2);
  EXPECT_EQ(T.slotWidth(), 1) << "arrays are references";
  EXPECT_EQ(T.toDescriptor(), "[[I");
  EXPECT_EQ(T.toJavaName(), "int[][]");
}

TEST(Descriptor, RejectsMalformedFieldDescriptors) {
  EXPECT_FALSE(isValidFieldDescriptor(""));
  EXPECT_FALSE(isValidFieldDescriptor("V")) << "void is not a field type";
  EXPECT_FALSE(isValidFieldDescriptor("L;"));
  EXPECT_FALSE(isValidFieldDescriptor("Ljava/lang/String"));
  EXPECT_FALSE(isValidFieldDescriptor("II")) << "trailing characters";
  EXPECT_FALSE(isValidFieldDescriptor("X"));
  EXPECT_FALSE(isValidFieldDescriptor("["));
}

TEST(Descriptor, ParsesMethodDescriptors) {
  MethodDescriptor M;
  ASSERT_TRUE(parseMethodDescriptor("([Ljava/lang/String;)V", M));
  ASSERT_EQ(M.Params.size(), 1u);
  EXPECT_EQ(M.Params[0].ArrayDims, 1);
  EXPECT_EQ(M.ReturnType.Kind, TypeKind::Void);
  EXPECT_EQ(M.argSlots(), 1);
  EXPECT_EQ(M.toDescriptor(), "([Ljava/lang/String;)V");
}

TEST(Descriptor, ArgSlotsCountWideTypes) {
  MethodDescriptor M;
  ASSERT_TRUE(parseMethodDescriptor("(IJD)I", M));
  EXPECT_EQ(M.argSlots(), 5) << "int(1) + long(2) + double(2)";
}

TEST(Descriptor, RejectsMalformedMethodDescriptors) {
  EXPECT_FALSE(isValidMethodDescriptor(""));
  EXPECT_FALSE(isValidMethodDescriptor("()"));
  EXPECT_FALSE(isValidMethodDescriptor("(V)V")) << "void parameter";
  EXPECT_FALSE(isValidMethodDescriptor("I)V"));
  EXPECT_FALSE(isValidMethodDescriptor("(I)VV"));
  EXPECT_FALSE(isValidMethodDescriptor("(I"));
}

TEST(Descriptor, EmptyParamsAndVoid) {
  MethodDescriptor M;
  ASSERT_TRUE(parseMethodDescriptor("()V", M));
  EXPECT_TRUE(M.Params.empty());
  EXPECT_EQ(M.argSlots(), 0);
}

TEST(Descriptor, Shorthands) {
  EXPECT_EQ(intType().toDescriptor(), "I");
  EXPECT_EQ(voidType().toDescriptor(), "V");
  EXPECT_EQ(refType("java/util/Map").toDescriptor(), "Ljava/util/Map;");
  EXPECT_EQ(arrayOf(intType()).toDescriptor(), "[I");
  EXPECT_EQ(arrayOf(refType("A")).toDescriptor(), "[LA;");
}
