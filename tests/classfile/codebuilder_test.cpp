//===- tests/classfile/codebuilder_test.cpp --------------------------------===//

#include "classfile/CodeBuilder.h"

#include <gtest/gtest.h>

using namespace classfuzz;

TEST(CodeBuilder, PushIntPicksShortestEncoding) {
  ConstantPool CP;
  CodeBuilder B(CP);
  B.pushInt(3);      // iconst_3 (1 byte)
  B.pushInt(-1);     // iconst_m1 (1 byte)
  B.pushInt(100);    // bipush (2 bytes)
  B.pushInt(1000);   // sipush (3 bytes)
  B.pushInt(100000); // ldc (2 bytes)
  Bytes Code = B.build();
  ASSERT_EQ(Code.size(), 9u);
  EXPECT_EQ(Code[0], OP_iconst_3);
  EXPECT_EQ(Code[1], OP_iconst_m1);
  EXPECT_EQ(Code[2], OP_bipush);
  EXPECT_EQ(Code[4], OP_sipush);
  EXPECT_EQ(Code[7], OP_ldc);
}

TEST(CodeBuilder, LocalsUseShortFormsWhenPossible) {
  ConstantPool CP;
  CodeBuilder B(CP);
  B.loadLocal('i', 0);
  B.loadLocal('a', 3);
  B.storeLocal('i', 2);
  B.loadLocal('i', 7);
  Bytes Code = B.build();
  EXPECT_EQ(Code[0], OP_iload_0);
  EXPECT_EQ(Code[1], OP_aload_3);
  EXPECT_EQ(Code[2], OP_istore_2);
  EXPECT_EQ(Code[3], OP_iload);
  EXPECT_EQ(Code[4], 7);
}

TEST(CodeBuilder, ForwardBranchFixup) {
  ConstantPool CP;
  CodeBuilder B(CP);
  auto L = B.newLabel();
  B.pushInt(0);
  B.branch(OP_ifeq, L); // at offset 1, branch forward
  B.pushInt(1);
  B.bind(L);
  B.emit(OP_return);
  Bytes Code = B.build();
  // Offsets: 0 iconst_0; 1 ifeq (3B); 4 iconst_1; 5 return.
  InsnDecoder D(Code);
  Insn I;
  ASSERT_TRUE(D.decodeNext(I)); // iconst_0
  ASSERT_TRUE(D.decodeNext(I)); // ifeq
  EXPECT_EQ(I.Op, OP_ifeq);
  EXPECT_EQ(I.Operand1, 5);
}

TEST(CodeBuilder, BackwardBranch) {
  ConstantPool CP;
  CodeBuilder B(CP);
  auto Head = B.newLabel();
  B.bind(Head);
  B.emit(OP_nop);
  B.branch(OP_goto, Head);
  Bytes Code = B.build();
  InsnDecoder D(Code);
  Insn I;
  ASSERT_TRUE(D.decodeNext(I)); // nop
  ASSERT_TRUE(D.decodeNext(I)); // goto
  EXPECT_EQ(I.Operand1, 0);
}

TEST(CodeBuilder, MemberInstructionsInternIntoPool) {
  ConstantPool CP;
  CodeBuilder B(CP);
  B.getStatic("java/lang/System", "out", "Ljava/io/PrintStream;");
  B.invokeVirtual("java/io/PrintStream", "println",
                  "(Ljava/lang/String;)V");
  Bytes Code = B.build();
  InsnDecoder D(Code);
  Insn I;
  ASSERT_TRUE(D.decodeNext(I));
  EXPECT_EQ(I.Op, OP_getstatic);
  auto Ref = CP.getMemberRef(static_cast<uint16_t>(I.Operand1));
  ASSERT_TRUE(Ref.ok());
  EXPECT_EQ(Ref->ClassName, "java/lang/System");
  EXPECT_EQ(Ref->Name, "out");
}

TEST(CodeBuilder, InvokeInterfaceCountsArgSlots) {
  ConstantPool CP;
  CodeBuilder B(CP);
  B.invokeInterface("java/util/Map", "put",
                    "(Ljava/lang/Object;Ljava/lang/Object;)"
                    "Ljava/lang/Object;");
  Bytes Code = B.build();
  ASSERT_EQ(Code.size(), 5u);
  EXPECT_EQ(Code[0], OP_invokeinterface);
  EXPECT_EQ(Code[3], 3) << "this + 2 args";
  EXPECT_EQ(Code[4], 0);
}

TEST(CodeBuilder, PushStringEmitsLdc) {
  ConstantPool CP;
  CodeBuilder B(CP);
  B.pushString("hi");
  Bytes Code = B.build();
  ASSERT_EQ(Code.size(), 2u);
  EXPECT_EQ(Code[0], OP_ldc);
  const CpEntry &E = CP.at(Code[1]);
  EXPECT_EQ(E.Tag, CpTag::String);
}
