//===- tests/classfile/constantpool_test.cpp -------------------------------===//

#include "classfile/ConstantPool.h"

#include <gtest/gtest.h>

using namespace classfuzz;

TEST(ConstantPool, SlotZeroIsReserved) {
  ConstantPool CP;
  EXPECT_EQ(CP.count(), 1);
  EXPECT_FALSE(CP.isValidIndex(0));
}

TEST(ConstantPool, Utf8Interning) {
  ConstantPool CP;
  uint16_t A = CP.utf8("hello");
  uint16_t B = CP.utf8("hello");
  uint16_t C = CP.utf8("world");
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C);
  auto S = CP.getUtf8(A);
  ASSERT_TRUE(S.ok());
  EXPECT_EQ(*S, "hello");
}

TEST(ConstantPool, ClassRefResolvesToName) {
  ConstantPool CP;
  uint16_t Idx = CP.classRef("java/lang/Object");
  auto Name = CP.getClassName(Idx);
  ASSERT_TRUE(Name.ok());
  EXPECT_EQ(*Name, "java/lang/Object");
}

TEST(ConstantPool, LongTakesTwoSlots) {
  ConstantPool CP;
  uint16_t A = CP.longConst(123456789012345LL);
  uint16_t B = CP.utf8("after");
  EXPECT_EQ(B, A + 2) << "Long occupies two constant pool slots";
  EXPECT_FALSE(CP.isValidIndex(A + 1)) << "upper half is a placeholder";
}

TEST(ConstantPool, DoubleTakesTwoSlots) {
  ConstantPool CP;
  uint16_t A = CP.doubleConst(3.25);
  uint16_t B = CP.integer(7);
  EXPECT_EQ(B, A + 2);
}

TEST(ConstantPool, MethodRefRoundTrip) {
  ConstantPool CP;
  uint16_t Idx = CP.methodRef("java/io/PrintStream", "println",
                              "(Ljava/lang/String;)V");
  auto Ref = CP.getMemberRef(Idx);
  ASSERT_TRUE(Ref.ok());
  EXPECT_EQ(Ref->ClassName, "java/io/PrintStream");
  EXPECT_EQ(Ref->Name, "println");
  EXPECT_EQ(Ref->Descriptor, "(Ljava/lang/String;)V");
}

TEST(ConstantPool, FieldRefInterning) {
  ConstantPool CP;
  uint16_t A = CP.fieldRef("C", "f", "I");
  uint16_t B = CP.fieldRef("C", "f", "I");
  EXPECT_EQ(A, B);
  EXPECT_NE(A, CP.fieldRef("C", "g", "I"));
}

TEST(ConstantPool, GetUtf8RejectsWrongTag) {
  ConstantPool CP;
  uint16_t Idx = CP.integer(1);
  EXPECT_FALSE(CP.getUtf8(Idx).ok());
  EXPECT_FALSE(CP.getUtf8(999).ok());
}

TEST(ConstantPool, GetMemberRefRejectsNonMember) {
  ConstantPool CP;
  uint16_t Idx = CP.utf8("x");
  EXPECT_FALSE(CP.getMemberRef(Idx).ok());
}

TEST(ConstantPool, NameAndTypeAccessor) {
  ConstantPool CP;
  uint16_t Idx = CP.nameAndType("main", "([Ljava/lang/String;)V");
  auto NaT = CP.getNameAndType(Idx);
  ASSERT_TRUE(NaT.ok());
  EXPECT_EQ(NaT->first, "main");
  EXPECT_EQ(NaT->second, "([Ljava/lang/String;)V");
}

TEST(ConstantPool, TagNames) {
  EXPECT_STREQ(cpTagName(CpTag::Utf8), "CONSTANT_Utf8");
  EXPECT_STREQ(cpTagName(CpTag::InvokeDynamic), "CONSTANT_InvokeDynamic");
}
