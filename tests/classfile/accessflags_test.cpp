//===- tests/classfile/accessflags_test.cpp --------------------------------===//

#include "classfile/AccessFlags.h"

#include <gtest/gtest.h>

using namespace classfuzz;

TEST(AccessFlags, ClassFlagRendering) {
  EXPECT_EQ(classFlagsToString(ACC_PUBLIC | ACC_SUPER),
            "ACC_PUBLIC, ACC_SUPER");
  EXPECT_EQ(classFlagsToString(0), "");
  EXPECT_EQ(classFlagsToString(ACC_INTERFACE | ACC_ABSTRACT),
            "ACC_INTERFACE, ACC_ABSTRACT");
}

TEST(AccessFlags, MethodFlagRendering) {
  EXPECT_EQ(methodFlagsToString(ACC_PUBLIC | ACC_STATIC),
            "ACC_PUBLIC, ACC_STATIC");
  EXPECT_EQ(methodFlagsToString(ACC_PUBLIC | ACC_ABSTRACT),
            "ACC_PUBLIC, ACC_ABSTRACT");
  // ACC_SYNCHRONIZED shares the bit with ACC_SUPER but renders with the
  // method meaning.
  EXPECT_EQ(methodFlagsToString(ACC_SYNCHRONIZED), "ACC_SYNCHRONIZED");
}

TEST(AccessFlags, FieldFlagRendering) {
  EXPECT_EQ(fieldFlagsToString(ACC_PRIVATE | ACC_VOLATILE),
            "ACC_PRIVATE, ACC_VOLATILE");
  EXPECT_EQ(fieldFlagsToString(ACC_ENUM), "ACC_ENUM");
}
