//===- tests/classfile/opcodes_test.cpp ------------------------------------===//

#include "classfile/Opcodes.h"

#include <gtest/gtest.h>

using namespace classfuzz;

TEST(Opcodes, NamesAndLengths) {
  EXPECT_EQ(opcodeName(OP_nop), "nop");
  EXPECT_EQ(opcodeName(OP_invokevirtual), "invokevirtual");
  EXPECT_EQ(opcodeLength(OP_nop), 1);
  EXPECT_EQ(opcodeLength(OP_bipush), 2);
  EXPECT_EQ(opcodeLength(OP_sipush), 3);
  EXPECT_EQ(opcodeLength(OP_invokeinterface), 5);
  EXPECT_EQ(opcodeLength(OP_tableswitch), -1);
  EXPECT_EQ(opcodeLength(OP_wide), -1);
}

TEST(Opcodes, UndefinedOpcodesAreFlagged) {
  EXPECT_FALSE(isDefinedOpcode(0xCA));
  EXPECT_FALSE(isDefinedOpcode(0xFF));
  EXPECT_TRUE(isDefinedOpcode(OP_jsr_w));
  EXPECT_EQ(opcodeLength(0xF0), 0);
  EXPECT_EQ(opcodeName(0xF0), "illegal_0xf0");
}

TEST(InsnDecoder, DecodesStraightLineCode) {
  // iconst_1; istore_1; iload_1; ireturn
  Bytes Code = {OP_iconst_1, OP_istore_1, OP_iload_1, OP_ireturn};
  InsnDecoder D(Code);
  Insn I;
  ASSERT_TRUE(D.decodeNext(I));
  EXPECT_EQ(I.Op, OP_iconst_1);
  EXPECT_EQ(I.Offset, 0u);
  ASSERT_TRUE(D.decodeNext(I));
  EXPECT_EQ(I.Op, OP_istore_1);
  ASSERT_TRUE(D.decodeNext(I));
  ASSERT_TRUE(D.decodeNext(I));
  EXPECT_EQ(I.Op, OP_ireturn);
  EXPECT_FALSE(D.decodeNext(I));
  EXPECT_TRUE(D.valid());
}

TEST(InsnDecoder, BranchTargetsAreAbsolute) {
  // 0: goto +5 (-> 5); 3: nop; 4: nop; 5: return
  Bytes Code = {OP_goto, 0x00, 0x05, OP_nop, OP_nop, OP_return};
  InsnDecoder D(Code);
  Insn I;
  ASSERT_TRUE(D.decodeNext(I));
  EXPECT_EQ(I.Op, OP_goto);
  EXPECT_EQ(I.Operand1, 5);
}

TEST(InsnDecoder, NegativeBranchDisplacement) {
  // 0: nop; 1: goto -1 (-> 0)
  Bytes Code = {OP_nop, OP_goto, 0xFF, 0xFF};
  InsnDecoder D(Code);
  Insn I;
  ASSERT_TRUE(D.decodeNext(I));
  ASSERT_TRUE(D.decodeNext(I));
  EXPECT_EQ(I.Operand1, 0);
}

TEST(InsnDecoder, BipushSignExtends) {
  Bytes Code = {OP_bipush, 0xFF};
  InsnDecoder D(Code);
  Insn I;
  ASSERT_TRUE(D.decodeNext(I));
  EXPECT_EQ(I.Operand1, -1);
}

TEST(InsnDecoder, TruncatedOperandIsMalformed) {
  Bytes Code = {OP_sipush, 0x01}; // Needs 2 operand bytes.
  InsnDecoder D(Code);
  Insn I;
  EXPECT_FALSE(D.decodeNext(I));
  EXPECT_FALSE(D.valid());
}

TEST(InsnDecoder, UndefinedOpcodeIsMalformed) {
  Bytes Code = {0xFD};
  InsnDecoder D(Code);
  Insn I;
  EXPECT_FALSE(D.decodeNext(I));
  EXPECT_FALSE(D.valid());
}

TEST(InsnDecoder, IincOperands) {
  Bytes Code = {OP_iinc, 2, static_cast<uint8_t>(-3)};
  InsnDecoder D(Code);
  Insn I;
  ASSERT_TRUE(D.decodeNext(I));
  EXPECT_EQ(I.Operand1, 2);
  EXPECT_EQ(I.Operand2, -3);
}

TEST(InsnDecoder, TableswitchPaddingAndLength) {
  // Offset 0: tableswitch. Padding to offset 4; default(4B) lo(4B)
  // hi(4B) then (hi-lo+1) targets.
  Bytes Code;
  Code.push_back(OP_tableswitch);
  Code.insert(Code.end(), 3, 0);          // padding to align 4
  auto push4 = [&](int32_t V) {
    Code.push_back(static_cast<uint8_t>(V >> 24));
    Code.push_back(static_cast<uint8_t>(V >> 16));
    Code.push_back(static_cast<uint8_t>(V >> 8));
    Code.push_back(static_cast<uint8_t>(V));
  };
  push4(28); // default
  push4(0);  // low
  push4(1);  // high
  push4(28); // target for 0
  push4(28); // target for 1
  Code.push_back(OP_return); // offset 24? (depends) -- just check decode.
  InsnDecoder D(Code);
  Insn I;
  ASSERT_TRUE(D.decodeNext(I));
  EXPECT_EQ(I.Op, OP_tableswitch);
  EXPECT_EQ(I.Length, 24u);
  EXPECT_EQ(I.Operand1, 28);
}

TEST(InsnDecoder, WideIincLength) {
  Bytes Code = {OP_wide, OP_iinc, 0, 5, 0, 10};
  InsnDecoder D(Code);
  Insn I;
  ASSERT_TRUE(D.decodeNext(I));
  EXPECT_EQ(I.Length, 6u);
  EXPECT_EQ(I.Operand1, 5);
  EXPECT_EQ(I.Operand2, 10);
}

TEST(InsnDecoder, WideLoadLength) {
  Bytes Code = {OP_wide, OP_iload, 0x01, 0x00};
  InsnDecoder D(Code);
  Insn I;
  ASSERT_TRUE(D.decodeNext(I));
  EXPECT_EQ(I.Length, 4u);
  EXPECT_EQ(I.Operand1, 256);
}
